#!/usr/bin/env python3
"""CI gate for the objective-engine throughput benchmark.

Compares the current ``BENCH_objective.json`` (written by
``cargo bench -p coverme-bench --bench objective_engine -- --json ...``)
against the committed baseline ``ci/bench_baseline.json`` and fails when
evaluation throughput regressed by more than the tolerance.

What is gated
-------------
CI runners differ wildly in absolute speed, so raw evals/sec cannot be
compared against a baseline recorded on another machine. What *is* stable
is throughput **normalized to the same-machine legacy path**: the speedup
ratios ``engine_speedup_vs_legacy``, ``lane_speedup_vs_engine`` and
``star_speedup_vs_engine`` divide out the machine, and a >15% drop in any
of them means the corresponding evaluation path really got slower relative
to the work it wraps — the regression the gate exists to catch. Absolute
evals/sec are printed for context but never gated.

The lane/star ratios are gated only for branch-dense functions (at least
``--min-gated-sites`` conditional sites, default 20): that is where the
lane backend's deferred-penalty savings dominate and the ratio is robust
across microarchitectures. On 4–5-site functions the lane advantage hovers
near 1x and swings with auto-vectorization luck, so those rows are
reported without being enforced.

The schema-2 artifact adds an ``fpir`` table measured across the
execution-backend axis (interpreter vs compiled tape, scalar vs lane).
Its two ratios are gated with the same relative tolerance, and the
tape-lane-vs-interp-lane ratio additionally carries an **absolute floor**
(default 1.5x, ``--tape-lane-floor``): the tape backend's acceptance bar
is 1.5x the interpreted lane path on the corpus, independent of what the
baseline happens to record.

The artifact also carries a ``simd`` table: per-ISA throughput of the
lane-finalize kernels on one harvested pending-event stream, normalized
to the portable scalar kernel (``simd_speedup_vs_scalar_lane``). Each ISA
present in **both** artifacts is gated with the relative tolerance; the
``avx2`` row additionally carries an absolute floor (default 1.3x,
``--simd-floor``) — the vectorized finalize's acceptance bar. ISAs the
current machine cannot run simply have no row and are not compared;
``--require-simd ISA`` (repeatable) turns a missing row into a failure,
for CI steps that forced a specific dispatch and must not silently skip
the gate.

Campaign search-efficiency gate
-------------------------------
With ``--campaign-baseline`` and ``--campaign-current`` the gate also
compares a pair of campaign-report artifacts (the
``coverme-campaign-report/N`` JSON the fdlibm_campaign example and the
coverme CLI write) on ``coverage_per_megaeval`` — covered branches per
million evaluations, the eval-budget economics headline. The metric is a
pure function of ``(seed, config)``, not of machine speed, so a >15% drop
means the search genuinely pays more evaluations per branch. The campaign
pair may be gated alone (without the objective-engine positionals) or
alongside them.

Exit status: 0 when every gated metric is within tolerance, 1 otherwise
(and 2 for usage/schema errors, so a malformed artifact cannot pass as
"no regression").
"""

import argparse
import json
import sys

# (metric, gated only for branch-dense functions?)
GATED_METRICS = (
    ("engine_speedup_vs_legacy", False),
    ("lane_speedup_vs_engine", True),
    ("star_speedup_vs_engine", True),
)
REPORTED_METRICS = (
    "legacy_evals_per_sec",
    "engine_evals_per_sec",
    "lane_evals_per_sec",
    "star_evals_per_sec",
    "hot_evals_per_sec",
)

# Backend-axis ratios gated on the fpir table (relative tolerance; the
# lane ratio additionally has the absolute --tape-lane-floor).
FPIR_GATED_METRICS = (
    "tape_speedup_vs_interp",
    "tape_lane_speedup_vs_interp_lane",
)
FPIR_REPORTED_METRICS = (
    "interp_evals_per_sec",
    "interp_lane_evals_per_sec",
    "tape_evals_per_sec",
    "tape_lane_evals_per_sec",
)

# Per-ISA finalize-kernel ratio gated on the simd table (relative
# tolerance when the baseline has the ISA; the avx2 row additionally has
# the absolute --simd-floor).
SIMD_GATED_METRIC = "simd_speedup_vs_scalar_lane"

UPDATE_INSTRUCTIONS = """\
If this regression is intended (e.g. the engine traded single-path speed
for a feature) or the baseline is stale, refresh it on a quiet machine and
commit the result:

    cargo bench -p coverme-bench --bench objective_engine -- \\
        --json ci/bench_baseline.json
    git add ci/bench_baseline.json

Then explain the throughput change in the PR description. Do NOT refresh
the baseline just to silence the gate on an unexplained slowdown."""


def load(path):
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as error:
        sys.exit(f"bench_gate: cannot read {path}: {error}")
    if data.get("schema") not in (1, 2) or data.get("bench") != "objective_engine":
        sys.exit(f"bench_gate: {path} is not an objective_engine artifact (schema 1 or 2)")
    return data


def load_campaign(path):
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as error:
        sys.exit(f"bench_gate: cannot read {path}: {error}")
    schema = data.get("schema", "")
    if not isinstance(schema, str) or not schema.startswith("coverme-campaign-report/"):
        sys.exit(f"bench_gate: {path} is not a coverme-campaign-report artifact")
    if "coverage_per_megaeval" not in data:
        sys.exit(
            f"bench_gate: {path} ({schema}) predates coverage_per_megaeval; "
            "refresh it with a current build"
        )
    return data


def gate_campaign(args, failures):
    """Gates coverage_per_megaeval on a campaign-artifact pair."""
    baseline = load_campaign(args.campaign_baseline)
    current = load_campaign(args.campaign_current)
    base_value = baseline["coverage_per_megaeval"]
    value = current["coverage_per_megaeval"]
    floor = base_value * (1.0 - args.tolerance)
    status = "ok" if value >= floor else "REGRESSED"
    print(
        f"bench_gate: campaign search efficiency — tolerance {args.tolerance:.0%} "
        "on coverage_per_megaeval"
    )
    print(
        f"  suite    coverage_per_megaeval      baseline {base_value:8.1f} "
        f"  current {value:8.1f}   floor {floor:8.1f}   {status}"
    )
    print(
        f"  suite    (context: coverage {current['suite_branch_coverage_percent']:.1f}% "
        f"over {current['total_evaluations']} evals, scheduler "
        f"{current.get('scheduler', 'fixed')}; baseline "
        f"{baseline['suite_branch_coverage_percent']:.1f}% over "
        f"{baseline['total_evaluations']} evals)"
    )
    if value < floor:
        drop = 1.0 - value / base_value if base_value else 1.0
        failures.append(
            f"campaign: coverage_per_megaeval dropped {drop:.0%} "
            f"({base_value:.1f} -> {value:.1f}, floor {floor:.1f})"
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "baseline", nargs="?", help="committed baseline (ci/bench_baseline.json)"
    )
    parser.add_argument(
        "current", nargs="?", help="freshly measured BENCH_objective.json"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed relative drop per gated metric (default 0.15 = 15%%)",
    )
    parser.add_argument(
        "--min-gated-sites",
        type=int,
        default=20,
        help="fewest conditional sites for the lane/star ratios to be "
        "enforced rather than just reported (default 20)",
    )
    parser.add_argument(
        "--tape-lane-floor",
        type=float,
        default=1.5,
        help="absolute floor on tape_lane_speedup_vs_interp_lane for every "
        "fpir row (default 1.5 = the tape backend's acceptance bar)",
    )
    parser.add_argument(
        "--simd-floor",
        type=float,
        default=1.3,
        help="absolute floor on simd_speedup_vs_scalar_lane for the avx2 "
        "row when present (default 1.3 = the vectorized finalize's "
        "acceptance bar)",
    )
    parser.add_argument(
        "--require-simd",
        action="append",
        default=[],
        metavar="ISA",
        help="fail unless the current artifact carries a simd row for this "
        "ISA (repeatable); use on CI steps that forced a dispatch",
    )
    parser.add_argument(
        "--campaign-baseline",
        help="committed campaign-report baseline (ci/campaign_baseline.json)",
    )
    parser.add_argument(
        "--campaign-current",
        help="freshly produced campaign-report JSON to gate on "
        "coverage_per_megaeval",
    )
    args = parser.parse_args()

    if (args.campaign_baseline is None) != (args.campaign_current is None):
        parser.error("--campaign-baseline and --campaign-current come as a pair")
    if args.baseline is None and args.campaign_baseline is None:
        parser.error(
            "nothing to gate: pass the objective-engine positionals, the "
            "campaign pair, or both"
        )
    if (args.baseline is None) != (args.current is None):
        parser.error("the objective-engine artifacts come as a pair")

    campaign_failures = []
    if args.campaign_baseline is not None:
        gate_campaign(args, campaign_failures)
    if args.baseline is None:
        if campaign_failures:
            print(
                "\nbench_gate: FAIL — campaign search efficiency regressed:",
                file=sys.stderr,
            )
            for failure in campaign_failures:
                print(f"  - {failure}", file=sys.stderr)
            sys.exit(1)
        print("bench_gate: ok — no gated metric regressed beyond tolerance")
        return

    baseline = load(args.baseline)
    current = load(args.current)
    if not current.get("measured"):
        sys.exit(
            "bench_gate: current artifact was produced by a smoke run "
            "(measured: false); run the bench with --bench before gating"
        )

    baseline_rows = {row["function"]: row for row in baseline["functions"]}
    current_rows = {row["function"]: row for row in current["functions"]}

    failures = campaign_failures
    metric_names = ", ".join(metric for metric, _ in GATED_METRICS)
    print(
        f"bench_gate: tolerance {args.tolerance:.0%} on {metric_names} "
        f"(lane/star enforced at >= {args.min_gated_sites} sites)"
    )
    for name, base_row in sorted(baseline_rows.items()):
        row = current_rows.get(name)
        if row is None:
            failures.append(f"{name}: missing from the current benchmark run")
            continue
        for metric, dense_only in GATED_METRICS:
            base_value = base_row[metric]
            value = row[metric]
            floor = base_value * (1.0 - args.tolerance)
            enforced = not dense_only or row.get("sites", 0) >= args.min_gated_sites
            if not enforced:
                status = "report-only"
            elif value >= floor:
                status = "ok"
            else:
                status = "REGRESSED"
            print(
                f"  {name:>8} {metric:<26} baseline {base_value:6.2f}x"
                f"  current {value:6.2f}x  floor {floor:6.2f}x  {status}"
            )
            if enforced and value < floor:
                drop = 1.0 - value / base_value if base_value else 1.0
                failures.append(
                    f"{name}: {metric} dropped {drop:.0%} "
                    f"({base_value:.2f}x -> {value:.2f}x, floor {floor:.2f}x)"
                )
        context = "  ".join(
            f"{metric.split('_evals')[0]} {row[metric] / 1e6:.1f}M/s"
            for metric in REPORTED_METRICS
        )
        print(f"  {name:>8} (absolute, not gated: {context})")

    extra = sorted(set(current_rows) - set(baseline_rows))
    if extra:
        print(f"bench_gate: note: functions not in the baseline (ignored): {', '.join(extra)}")

    # Backend axis (schema 2): relative tolerance against the baseline plus
    # the absolute tape-lane floor on every current row.
    baseline_fpir = {row["function"]: row for row in baseline.get("fpir", [])}
    current_fpir = {row["function"]: row for row in current.get("fpir", [])}
    if baseline_fpir and not current_fpir:
        failures.append("fpir table missing from the current benchmark run")
    if current_fpir:
        print(
            f"bench_gate: fpir backend axis — tolerance {args.tolerance:.0%}, "
            f"absolute tape-lane floor {args.tape_lane_floor:.2f}x"
        )
    for name, row in sorted(current_fpir.items()):
        base_row = baseline_fpir.get(name)
        for metric in FPIR_GATED_METRICS:
            value = row[metric]
            floor = 0.0
            if base_row is not None:
                floor = base_row[metric] * (1.0 - args.tolerance)
            if metric == "tape_lane_speedup_vs_interp_lane":
                floor = max(floor, args.tape_lane_floor)
            status = "ok" if value >= floor else "REGRESSED"
            print(
                f"  {name:>12} {metric:<34} current {value:6.2f}x"
                f"  floor {floor:6.2f}x  {status}"
            )
            if value < floor:
                failures.append(
                    f"{name}: {metric} {value:.2f}x is below the floor {floor:.2f}x"
                )
        context = "  ".join(
            f"{metric.split('_evals')[0]} {row[metric] / 1e6:.1f}M/s"
            for metric in FPIR_REPORTED_METRICS
        )
        print(f"  {name:>12} (absolute, not gated: {context})")

    # SIMD finalize axis: ISAs present in both artifacts are held to the
    # relative tolerance; the avx2 row also carries the absolute floor.
    # An ISA this machine lacks has no row — legitimate, unless the step
    # explicitly required it.
    baseline_simd = {row["isa"]: row for row in baseline.get("simd", [])}
    current_simd = {row["isa"]: row for row in current.get("simd", [])}
    for isa in args.require_simd:
        if isa not in current_simd:
            failures.append(
                f"simd: required ISA {isa} has no row in the current run "
                "(forced dispatch did not take, or the bench predates the "
                "simd table)"
            )
    if current_simd:
        print(
            f"bench_gate: simd finalize axis — tolerance {args.tolerance:.0%}, "
            f"absolute avx2 floor {args.simd_floor:.2f}x"
        )
    for isa, row in sorted(current_simd.items()):
        value = row[SIMD_GATED_METRIC]
        floor = 0.0
        base_row = baseline_simd.get(isa)
        if base_row is not None:
            floor = base_row[SIMD_GATED_METRIC] * (1.0 - args.tolerance)
        if isa == "avx2":
            floor = max(floor, args.simd_floor)
        status = "ok" if value >= floor else "REGRESSED"
        print(
            f"  {isa:>12} {SIMD_GATED_METRIC:<34} current {value:6.2f}x"
            f"  floor {floor:6.2f}x  {status}  "
            f"({row['lane_width']} lanes, "
            f"{row['finalize_events_per_sec'] / 1e6:.1f}M events/s)"
        )
        if value < floor:
            failures.append(
                f"simd {isa}: {SIMD_GATED_METRIC} {value:.2f}x is below "
                f"the floor {floor:.2f}x"
            )
    skipped_isas = sorted(set(baseline_simd) - set(current_simd))
    if skipped_isas:
        print(
            "bench_gate: note: baseline simd ISAs this machine did not "
            f"run (skipped): {', '.join(skipped_isas)}"
        )

    if failures:
        print("\nbench_gate: FAIL — evaluation throughput regressed:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        print(f"\n{UPDATE_INSTRUCTIONS}", file=sys.stderr)
        sys.exit(1)
    print("bench_gate: ok — no gated metric regressed beyond tolerance")


if __name__ == "__main__":
    main()
