//! Offline stand-in for the `criterion` bench harness.
//!
//! Implements the subset of the criterion 0.5 API used by the benches in
//! `crates/bench/benches/`. Two run modes, selected the same way real
//! criterion does:
//!
//! * invoked by `cargo bench` — cargo appends `--bench` to the argument
//!   list; each benchmark is warmed up and then measured `sample_size`
//!   times, and the mean wall-clock per iteration is printed;
//! * invoked by `cargo test` (no `--bench` argument) — each benchmark body
//!   runs exactly once as a smoke test, so `cargo test -q` stays fast while
//!   still catching bench-target rot.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Top-level benchmark manager, handed to each `criterion_group!` target.
pub struct Criterion {
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion { measure }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measure: self.measure,
            _criterion: self,
        }
    }

    /// Registers a standalone benchmark (group of one).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let measure = self.measure;
        let mut group = BenchmarkGroup {
            name: String::new(),
            sample_size: 10,
            measure,
            _criterion: self,
        };
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measure: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        let mut bencher = Bencher {
            samples: if self.measure { self.sample_size } else { 1 },
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        if self.measure && bencher.iterations > 0 {
            let mean = bencher.elapsed.as_secs_f64() / bencher.iterations as f64;
            println!("{label:<48} {:>12.3} us/iter", mean * 1e6);
        }
        self
    }

    /// Finishes the group.
    pub fn finish(&mut self) {}
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Measures `routine`, running it once per sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += self.samples as u64;
    }
}

/// Prevents the compiler from optimizing away a value (re-export shim).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Defines a function that runs the listed bench targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
