//! Offline stand-in for the `proptest` property-testing framework.
//!
//! Implements the subset of the proptest 1.x API used by
//! `crates/core/tests/properties.rs`: the [`Strategy`] trait with
//! [`Strategy::prop_map`], [`Just`], [`any`], `f64`/integer range
//! strategies, tuple strategies, [`collection::vec`], [`ProptestConfig`],
//! and the `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`
//! macros.
//!
//! Differences from real proptest: case generation is deterministic per
//! test (the RNG is seeded from the test-function name), and there is no
//! shrinking — a failing case panics immediately with the assertion
//! message. Both are acceptable for a CI gate; replace with the real crate
//! when network access is available.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic SplitMix64 generator driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seeds a generator deterministically from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(hash)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`; `lo` when the range is empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Types with a canonical generation strategy, selected by [`any`].
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values across a wide dynamic range.
        let mantissa = rng.next_f64() * 2.0 - 1.0;
        let exponent = rng.usize_in(0, 61) as i32 - 30;
        mantissa * (exponent as f64).exp2()
    }
}

/// Strategy yielding arbitrary values of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, e.g. `any::<bool>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                if self.end <= self.start {
                    return self.start;
                }
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

/// Uniform choice among same-typed strategies; output of `prop_oneof!`.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over the given options (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let index = rng.usize_in(0, self.options.len());
        self.options[index].new_value(rng)
    }
}

/// Boxes a strategy, erasing its concrete type (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Number of elements a collection strategy may generate.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<T>` with element strategy `S` and a size range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Per-block configuration, set via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Everything a property-test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        Just, ProptestConfig, Strategy,
    };
}

/// Namespace alias mirroring real proptest's `prop::` paths.
pub mod prop {
    pub use crate::collection;
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body for `config.cases` generated
/// argument tuples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Internal muncher behind [`proptest!`]. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::new_value(&($strategy), &mut __rng);)*
                let _ = __case;
                $body
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Uniform choice among the listed strategies (all must yield one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_name("rng_is_deterministic");
        let mut b = TestRng::from_name("rng_is_deterministic");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_strategy_stays_in_bounds() {
        let mut rng = TestRng::new(1);
        let strategy = -3.0..3.0f64;
        for _ in 0..256 {
            let x = strategy.new_value(&mut rng);
            assert!((-3.0..3.0).contains(&x));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::new(2);
        let strategy = collection::vec(any::<bool>(), 1..6);
        for _ in 0..64 {
            let v = strategy.new_value(&mut rng);
            assert!((1..6).contains(&v.len()));
        }
    }

    proptest! {
        #[test]
        fn macro_generates_cases(x in 0.0..1.0f64, flag in any::<bool>()) {
            prop_assert!((0.0..1.0).contains(&x));
            let _ = flag;
        }
    }
}
