//! Shared command-line plumbing for the workspace's front ends.
//!
//! The `coverme` binary and the `fdlibm_campaign` example grew the same
//! flag-parsing loop independently — same `--seed`/`--shards`/`--local`
//! spellings, same "a flag's value must not itself be a flag" rule, same
//! exit-2-with-usage convention. This module is the single copy both now
//! share: an [`ArgParser`] that owns the iterator mechanics and the error
//! convention, a [`CommonOptions`] struct holding every flag the front
//! ends have in common (including the `--backend auto|interp|tape`
//! execution-backend knob, plumbed through
//! [`CoverMeConfig::backend`](coverme::CoverMeConfig)), and the
//! [`write_json_atomic`] artifact writer.
//!
//! Front-end-specific flags stay in the front ends: the parser hands back
//! any argument [`accept_common`](ArgParser::accept_common) does not
//! recognize, and the caller decides whether it is a local flag, an
//! operand, or — for anything dash-prefixed it does not know — a usage
//! error (exit 2), so a flag typo can never be misread as an operand.

use std::time::Duration;

use coverme::{
    BackendMode, CoverMeConfig, InfeasiblePolicy, LocalMethod, SchedulerPolicy, SimdIsa,
    SIMD_ENV_VAR,
};

/// Every option the front ends share, with the front ends' historical
/// defaults (`n_start` 80, seed 42, unsharded, Powell, auto backend).
#[derive(Debug, Clone)]
pub struct CommonOptions {
    /// Starting points per function (`--n-start`).
    pub n_start: usize,
    /// Master seed (`--seed`).
    pub seed: u64,
    /// Shards per function (`--shards`; 1 = unsharded).
    pub shards: usize,
    /// Cross-shard saturation sync epochs (`--sync-epochs`; 0 = off).
    pub sync_epochs: usize,
    /// Local minimizer (`--local powell|nm|compass|none`).
    pub local_method: LocalMethod,
    /// Execution backend (`--backend auto|interp|tape`).
    pub backend: BackendMode,
    /// Forced SIMD dispatch (`--simd portable|sse2|avx2`; default: the
    /// process-wide choice, i.e. `COVERME_SIMD` or CPU autodetection).
    /// Every ISA produces bit-identical values, coverage, and chosen
    /// inputs — this knob trades speed, never results. (Cache-hit
    /// *telemetry* can shift with the ISA's lane width, since wider lane
    /// groups flush cache misses in larger batches.)
    pub simd: Option<SimdIsa>,
    /// Wall-clock budget (`--time-budget SECS`).
    pub time_budget: Option<Duration>,
    /// Global evaluation budget (`--budget N`).
    pub budget_evals: Option<usize>,
    /// Campaign scheduling policy (`--scheduler fixed|bandit`).
    pub scheduler: SchedulerPolicy,
    /// Delta-gated adaptive sync cadence (`--adaptive-sync`).
    pub adaptive_sync: bool,
    /// Infeasibility heuristic (`--infeasible last|all|off`).
    pub infeasible_policy: InfeasiblePolicy,
    /// Machine-readable report path (`--json PATH`, written atomically).
    pub json_path: Option<String>,
    /// Streaming progress (`--stream`).
    pub stream: bool,
    /// Campaign worker threads (`--workers`; 0 = auto).
    pub workers: usize,
    /// Persistent corpus store directory (`--corpus DIR`): warm-start
    /// repeat searches from prior winners and record completed results
    /// back (see `coverme::corpus`).
    pub corpus_dir: Option<String>,
}

impl Default for CommonOptions {
    fn default() -> Self {
        CommonOptions {
            n_start: 80,
            seed: 42,
            shards: 1,
            sync_epochs: 0,
            local_method: LocalMethod::Powell,
            backend: BackendMode::Auto,
            simd: None,
            time_budget: None,
            budget_evals: None,
            scheduler: SchedulerPolicy::Fixed,
            adaptive_sync: false,
            infeasible_policy: InfeasiblePolicy::LastConditional,
            json_path: None,
            stream: false,
            workers: 0,
            corpus_dir: None,
        }
    }
}

impl CommonOptions {
    /// The search configuration these options describe — everything except
    /// the campaign-level knobs (`workers`, `json_path`, `stream`), which
    /// the front ends apply themselves.
    pub fn search_config(&self) -> CoverMeConfig {
        let mut config = CoverMeConfig::default()
            .with_n_start(self.n_start)
            .with_seed(self.seed)
            .with_local_method(self.local_method)
            .with_backend(self.backend)
            .with_shards(self.shards)
            .with_sync_epochs(self.sync_epochs)
            .with_scheduler(self.scheduler)
            .with_adaptive_sync(self.adaptive_sync)
            .with_infeasible_policy(self.infeasible_policy);
        if let Some(isa) = self.simd {
            config = config.with_simd(isa);
        }
        if let Some(budget) = self.time_budget {
            config = config.with_time_budget(budget);
        }
        if let Some(evals) = self.budget_evals {
            config = config.with_budget(evals);
        }
        config
    }
}

/// The usage lines for the flags [`ArgParser::accept_common`] handles,
/// ready to splice into a front end's usage text.
pub const COMMON_USAGE: &str = "\
  --n-start N          starting points per function (default 80)
  --seed S             master seed (default 42)
  --shards N           shards per function (default 1 = unsharded)
  --sync-epochs E      cross-shard saturation sync epochs (default 0 = off)
  --adaptive-sync      skip sync barriers whose deltas cannot have changed
  --local METHOD       local minimizer: powell (default), nm, compass, none
  --backend MODE       execution backend: auto (default), interp, tape
  --simd ISA           SIMD kernels: portable, sse2, avx2 (default: autodetect;
                       env COVERME_SIMD); values/coverage ISA-independent
  --infeasible POLICY  infeasibility blame: last (default), all, off
  --time-budget SECS   wall-clock budget
  --budget N           global evaluation budget (drives --scheduler bandit)
  --scheduler POLICY   campaign eval allocation: fixed (default), bandit
  --json PATH          write a machine-readable report to PATH (atomic)
  --stream             print progress as it happens
  --workers N          campaign worker threads (default: auto)
  --corpus DIR         persistent corpus store: warm-start repeats, record results
  --help               print this message";

/// Flag-parsing mechanics shared by the front ends: iterator handling,
/// value extraction, typed parsing, and the exit-2 usage-error convention.
pub struct ArgParser<I: Iterator<Item = String>> {
    tool: &'static str,
    usage: &'static str,
    iter: I,
}

impl<I: Iterator<Item = String>> ArgParser<I> {
    /// Wraps an argument iterator. `tool` prefixes error messages; `usage`
    /// is printed after them (and by `--help`).
    pub fn new(tool: &'static str, usage: &'static str, iter: I) -> Self {
        ArgParser { tool, usage, iter }
    }

    /// The next raw argument, if any.
    pub fn next_arg(&mut self) -> Option<String> {
        self.iter.next()
    }

    /// Bad invocation: usage text on stderr, exit 2 (the conventional
    /// status, distinct from a source/I-O failure's exit 1) — so CI steps
    /// cannot misread a flag typo as a tool result.
    pub fn usage_error(&self, message: &str) -> ! {
        eprintln!("{}: {message}\n{}", self.tool, self.usage);
        std::process::exit(2);
    }

    /// A flag's value must be a real operand: the next argument, and not
    /// another flag — `--json --shards` is a missing path, not a path.
    pub fn value_for(&mut self, flag: &str) -> String {
        match self.iter.next() {
            Some(value) if !value.starts_with("--") => value,
            Some(value) => self.usage_error(&format!("{flag} needs a value, found flag {value}")),
            None => self.usage_error(&format!("{flag} needs a value")),
        }
    }

    /// Extracts and parses a flag's value, aborting with a usage message
    /// on junk.
    pub fn parsed<T: std::str::FromStr>(&mut self, flag: &str) -> T {
        let value = self.value_for(flag);
        value
            .parse()
            .unwrap_or_else(|_| self.usage_error(&format!("{flag} got invalid value {value}")))
    }

    /// Tries to consume `arg` as one of the shared flags, updating
    /// `options`; returns `true` when it did. `--help`/`-h` print the
    /// usage text and exit 0. Anything unrecognized — front-end-specific
    /// flags and operands alike — is left to the caller.
    pub fn accept_common(&mut self, arg: &str, options: &mut CommonOptions) -> bool {
        match arg {
            "--n-start" => options.n_start = self.parsed("--n-start"),
            "--seed" => options.seed = self.parsed("--seed"),
            "--shards" => options.shards = self.parsed("--shards"),
            "--sync-epochs" => options.sync_epochs = self.parsed("--sync-epochs"),
            "--local" => {
                options.local_method = match self.value_for("--local").as_str() {
                    "powell" => LocalMethod::Powell,
                    "nm" | "nelder-mead" => LocalMethod::NelderMead,
                    "compass" => LocalMethod::Compass,
                    "none" => LocalMethod::None,
                    other => self.usage_error(&format!("--local got unknown method {other}")),
                };
            }
            "--backend" => {
                let value = self.value_for("--backend");
                options.backend = BackendMode::parse(&value).unwrap_or_else(|| {
                    self.usage_error(&format!(
                        "--backend got unknown mode {value} (auto, interp, tape)"
                    ))
                });
            }
            "--simd" => {
                let value = self.value_for("--simd");
                let isa = SimdIsa::parse(&value).unwrap_or_else(|| {
                    self.usage_error(&format!(
                        "--simd got unknown ISA {value} (portable, sse2, avx2)"
                    ))
                });
                if !isa.is_supported() {
                    self.usage_error(&format!(
                        "--simd {value}: ISA not supported on this machine"
                    ));
                }
                options.simd = Some(isa);
            }
            "--time-budget" => {
                let secs: f64 = self.parsed("--time-budget");
                options.time_budget = Some(Duration::from_secs_f64(secs));
            }
            "--budget" => options.budget_evals = Some(self.parsed("--budget")),
            "--scheduler" => {
                options.scheduler = match self.value_for("--scheduler").as_str() {
                    "fixed" => SchedulerPolicy::Fixed,
                    "bandit" => SchedulerPolicy::Bandit,
                    other => self.usage_error(&format!("--scheduler got unknown policy {other}")),
                };
            }
            "--adaptive-sync" => options.adaptive_sync = true,
            "--infeasible" => {
                options.infeasible_policy = match self.value_for("--infeasible").as_str() {
                    "last" => InfeasiblePolicy::LastConditional,
                    "all" => InfeasiblePolicy::Generalized,
                    "off" => InfeasiblePolicy::Disabled,
                    other => self.usage_error(&format!("--infeasible got unknown policy {other}")),
                };
            }
            "--json" => options.json_path = Some(self.value_for("--json")),
            "--stream" => options.stream = true,
            "--workers" => options.workers = self.parsed("--workers"),
            "--corpus" => options.corpus_dir = Some(self.value_for("--corpus")),
            "--help" | "-h" => {
                println!("{}", self.usage);
                std::process::exit(0);
            }
            _ => return false,
        }
        true
    }

    /// Settles the process-wide SIMD dispatch once the flags are parsed: a
    /// malformed or unsupported `COVERME_SIMD` aborts with a usage error
    /// (exit 2) instead of silently falling back to autodetection, and an
    /// explicit `--simd` is forced process-wide so components that consult
    /// [`SimdIsa::active`] directly — the serve daemon's `hello`/`stats`
    /// payloads, default-constructed backends — agree with the flag.
    pub fn settle_simd(&self, options: &CommonOptions) {
        match SimdIsa::from_env() {
            Err(message) => self.usage_error(&message),
            Ok(Some(isa)) if !isa.is_supported() => self.usage_error(&format!(
                "{SIMD_ENV_VAR}={}: ISA not supported on this machine",
                isa.label()
            )),
            Ok(_) => {}
        }
        if let Some(isa) = options.simd {
            if let Err(message) = SimdIsa::force(isa) {
                self.usage_error(&message);
            }
        }
    }
}

/// Declarative subcommand table for a front end with several modes: the
/// registered names, their one-line summaries (spliced into usage text via
/// [`summaries`](Self::summaries)), and the resolution conventions —
/// missing command exits 2, `help` variants exit 0, unknown commands exit
/// 2 listing what exists. Nested subcommands (`coverme corpus ls`) just
/// use a second `SubcommandSet` on the first operand.
pub struct SubcommandSet {
    tool: &'static str,
    usage: &'static str,
    commands: &'static [(&'static str, &'static str)],
}

impl SubcommandSet {
    /// Builds a table. `commands` pairs each name with a one-line summary.
    pub fn new(
        tool: &'static str,
        usage: &'static str,
        commands: &'static [(&'static str, &'static str)],
    ) -> Self {
        SubcommandSet {
            tool,
            usage,
            commands,
        }
    }

    /// Looks a name up, exact match only.
    pub fn find(&self, name: &str) -> Option<&'static str> {
        self.commands
            .iter()
            .find(|(command, _)| *command == name)
            .map(|(command, _)| *command)
    }

    /// The usage lines for the registered subcommands, one `  name  summary`
    /// row per command.
    pub fn summaries(&self) -> String {
        let width = self
            .commands
            .iter()
            .map(|(name, _)| name.len())
            .max()
            .unwrap_or(0);
        self.commands
            .iter()
            .map(|(name, summary)| format!("  {name:width$}   {summary}"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Resolves the leading argument to a registered subcommand, applying
    /// the exit conventions: `None` is a missing command (exit 2),
    /// `help`/`--help`/`-h` print the usage text (exit 0), anything
    /// unregistered is a usage error naming the alternatives (exit 2).
    pub fn resolve(&self, first: Option<String>) -> &'static str {
        let Some(name) = first else {
            eprintln!("{}: missing command\n{}", self.tool, self.usage);
            std::process::exit(2);
        };
        if matches!(name.as_str(), "help" | "--help" | "-h") {
            println!("{}", self.usage);
            std::process::exit(0);
        }
        self.find(&name).unwrap_or_else(|| {
            let known: Vec<&str> = self.commands.iter().map(|(n, _)| *n).collect();
            eprintln!(
                "{}: unknown command {name} (expected one of: {})\n{}",
                self.tool,
                known.join(", "),
                self.usage
            );
            std::process::exit(2);
        })
    }
}

/// Atomic JSON write (tmp + rename), so an interrupted run never leaves a
/// truncated artifact: the document lands in a sibling temp file first and
/// is renamed into place — the rename either happens or it doesn't.
/// Exits 1 on an I/O failure.
pub fn write_json_atomic(path: &str, json: &str) {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, json).unwrap_or_else(|error| {
        eprintln!("cannot write {tmp}: {error}");
        std::process::exit(1);
    });
    std::fs::rename(&tmp, path).unwrap_or_else(|error| {
        eprintln!("cannot rename {tmp} to {path}: {error}");
        std::process::exit(1);
    });
    println!("wrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parser(args: &[&str]) -> ArgParser<std::vec::IntoIter<String>> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        ArgParser::new("test", "usage", args.into_iter())
    }

    #[test]
    fn common_flags_update_the_options() {
        let mut p = parser(&[
            "--n-start",
            "17",
            "--seed",
            "7",
            "--shards",
            "3",
            "--sync-epochs",
            "2",
            "--local",
            "nm",
            "--backend",
            "tape",
            "--simd",
            "portable",
            "--time-budget",
            "1.5",
            "--budget",
            "50000",
            "--scheduler",
            "bandit",
            "--adaptive-sync",
            "--infeasible",
            "all",
            "--json",
            "out.json",
            "--stream",
            "--workers",
            "4",
        ]);
        let mut options = CommonOptions::default();
        while let Some(arg) = p.next_arg() {
            assert!(p.accept_common(&arg, &mut options), "unhandled {arg}");
        }
        assert_eq!(options.n_start, 17);
        assert_eq!(options.seed, 7);
        assert_eq!(options.shards, 3);
        assert_eq!(options.sync_epochs, 2);
        assert_eq!(options.local_method, LocalMethod::NelderMead);
        assert_eq!(options.backend, BackendMode::Tape);
        assert_eq!(options.simd, Some(SimdIsa::Portable));
        assert_eq!(options.time_budget, Some(Duration::from_secs_f64(1.5)));
        assert_eq!(options.budget_evals, Some(50_000));
        assert_eq!(options.scheduler, SchedulerPolicy::Bandit);
        assert!(options.adaptive_sync);
        assert_eq!(options.infeasible_policy, InfeasiblePolicy::Generalized);
        assert_eq!(options.json_path.as_deref(), Some("out.json"));
        assert!(options.stream);
        assert_eq!(options.workers, 4);
    }

    #[test]
    fn budget_knobs_reach_the_search_config() {
        let mut p = parser(&[
            "--budget",
            "50000",
            "--scheduler",
            "bandit",
            "--adaptive-sync",
        ]);
        let mut options = CommonOptions::default();
        while let Some(arg) = p.next_arg() {
            assert!(p.accept_common(&arg, &mut options), "unhandled {arg}");
        }
        let config = options.search_config();
        assert_eq!(config.budget, Some(50_000));
        assert_eq!(config.scheduler, SchedulerPolicy::Bandit);
        assert!(config.adaptive_sync);
        // Defaults keep every new knob off, reproducing earlier releases.
        let defaults = CommonOptions::default().search_config();
        assert_eq!(defaults.budget, None);
        assert_eq!(defaults.scheduler, SchedulerPolicy::Fixed);
        assert!(!defaults.adaptive_sync);
        assert_eq!(
            defaults.infeasible_policy,
            InfeasiblePolicy::LastConditional
        );
    }

    #[test]
    fn unrecognized_arguments_are_left_to_the_caller() {
        let mut p = parser(&["--entry", "main", "file.fpir"]);
        let mut options = CommonOptions::default();
        let arg = p.next_arg().unwrap();
        assert!(!p.accept_common(&arg, &mut options));
        // The caller consumes its own flag's value through the parser.
        assert_eq!(p.value_for("--entry"), "main");
        let operand = p.next_arg().unwrap();
        assert!(!p.accept_common(&operand, &mut options));
        assert_eq!(operand, "file.fpir");
    }

    #[test]
    fn subcommand_lookup_resolution_and_summaries() {
        let set = SubcommandSet::new(
            "test",
            "usage",
            &[("run", "test one program"), ("corpus", "inspect the store")],
        );
        assert_eq!(set.find("run"), Some("run"));
        assert_eq!(set.find("serve"), None);
        assert_eq!(set.resolve(Some("corpus".to_string())), "corpus");
        let rows = set.summaries();
        assert!(rows.contains("run") && rows.contains("inspect the store"));
    }

    #[test]
    fn corpus_flag_reaches_the_options() {
        let mut p = parser(&["--corpus", ".corpus"]);
        let mut options = CommonOptions::default();
        while let Some(arg) = p.next_arg() {
            assert!(p.accept_common(&arg, &mut options), "unhandled {arg}");
        }
        assert_eq!(options.corpus_dir.as_deref(), Some(".corpus"));
    }

    #[test]
    fn search_config_carries_the_backend_knob() {
        let options = CommonOptions {
            backend: BackendMode::Interp,
            shards: 2,
            ..CommonOptions::default()
        };
        let config = options.search_config();
        assert_eq!(config.backend, BackendMode::Interp);
        assert_eq!(config.shards, 2);
        assert_eq!(config.n_start, 80);
    }

    #[test]
    fn simd_knob_reaches_the_search_config_without_perturbing_its_key() {
        let options = CommonOptions {
            simd: Some(SimdIsa::Portable),
            ..CommonOptions::default()
        };
        let config = options.search_config();
        assert_eq!(config.simd, Some(SimdIsa::Portable));
        // The ISA trades speed, never results, so it must not fragment the
        // corpus: forcing a lane width leaves the search key alone.
        let default_key = CommonOptions::default().search_config().search_key();
        assert_eq!(config.search_key(), default_key);
    }
}
