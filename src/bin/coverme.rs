//! The `coverme` command-line front end: run CoverMe on FPIR source files.
//!
//! The paper's tool is invoked on C source; this reproduction's equivalent
//! front door takes FPIR mini-language files (see `coverme-fpir` and the
//! checked-in corpus in `examples/fpir/`) and drives the same search
//! machinery the library exposes — sharding, cross-shard sync, the
//! streaming campaign scheduler.
//!
//! ```text
//! coverme run <file.fpir> [options]      test one program
//! coverme campaign <dir> [options]       test every .fpir file in a directory
//!
//! common options:
//!   --entry NAME       entry function (run mode; default: a function named
//!                      like the file, else the file's only function)
//!   --fuel N           interpreter step budget per execution (default 100000);
//!                      exhausting it classifies the run `timeout`
//!   --n-start N        starting points per function (default 80)
//!   --seed S           master seed (default 42)
//!   --shards N         shards per function (default 1 = unsharded)
//!   --sync-epochs E    cross-shard saturation sync epochs (default 0 = off)
//!   --local METHOD     local minimizer: powell (default), nm, compass, none
//!   --budget SECS      wall-clock budget
//!   --json PATH        write a machine-readable report to PATH (atomic)
//!   --stream           print progress as it happens (per round for `run`,
//!                      per function for `campaign`)
//!   --workers N        campaign worker threads (default: auto)
//! ```
//!
//! `run` exits 0 and prints the usual coverage report; its JSON carries an
//! `outcome` field — `done` when every evaluation ran to completion,
//! `timeout`/`trap` when executions aborted (the dominant classification) —
//! which is what the CI smoke test greps to pin that a non-terminating
//! program degrades instead of hanging. Bad invocations exit 2; source or
//! I/O errors exit 1 with a positioned message.

use std::time::Duration;

use coverme::{
    Campaign, CampaignConfig, CampaignEvent, CampaignReport, CoverMe, CoverMeConfig, LocalMethod,
    Program, SearchState, TestReport,
};
use coverme_fpir::{check, instrument, parse, IrProgram, Module};

const USAGE: &str = "\
usage: coverme <run|campaign> <path> [options]
  run <file.fpir>      test one FPIR program
  campaign <dir>       test every .fpir file in a directory (sorted by name)
options:
  --entry NAME         entry function (run mode only)
  --fuel N             interpreter step budget per execution (default 100000)
  --n-start N          starting points per function (default 80)
  --seed S             master seed (default 42)
  --shards N           shards per function (default 1 = unsharded)
  --sync-epochs E      cross-shard saturation sync epochs (default 0 = off)
  --local METHOD       local minimizer: powell (default), nm, compass, none
  --budget SECS        wall-clock budget
  --json PATH          write a machine-readable report to PATH (atomic)
  --stream             per-round (run) / per-function (campaign) progress
  --workers N          campaign worker threads (default: auto)
  --help               print this message";

/// Bad invocation: usage text on stderr, exit 2 (the conventional status,
/// distinct from a source/I-O failure's exit 1).
fn usage_error(message: &str) -> ! {
    eprintln!("coverme: {message}\n{USAGE}");
    std::process::exit(2);
}

/// Source or I/O failure: positioned message on stderr, exit 1.
fn run_error(message: &str) -> ! {
    eprintln!("coverme: {message}");
    std::process::exit(1);
}

fn parsed_for<T: std::str::FromStr>(flag: &str, value: String) -> T {
    value
        .parse()
        .unwrap_or_else(|_| usage_error(&format!("{flag} got invalid value {value}")))
}

/// Everything both subcommands share.
struct Options {
    entry: Option<String>,
    fuel: Option<usize>,
    n_start: usize,
    seed: u64,
    shards: usize,
    sync_epochs: usize,
    local_method: LocalMethod,
    budget: Option<Duration>,
    json_path: Option<String>,
    stream: bool,
    workers: usize,
}

fn parse_options(args: impl Iterator<Item = String>) -> (Vec<String>, Options) {
    let mut options = Options {
        entry: None,
        fuel: None,
        n_start: 80,
        seed: 42,
        shards: 1,
        sync_epochs: 0,
        local_method: LocalMethod::Powell,
        budget: None,
        json_path: None,
        stream: false,
        workers: 0,
    };
    let mut operands = Vec::new();
    let mut iter = args;
    while let Some(arg) = iter.next() {
        let mut value_for = |flag: &str| -> String {
            match iter.next() {
                Some(value) if !value.starts_with("--") => value,
                Some(value) => usage_error(&format!("{flag} needs a value, found flag {value}")),
                None => usage_error(&format!("{flag} needs a value")),
            }
        };
        match arg.as_str() {
            "--entry" => options.entry = Some(value_for("--entry")),
            "--fuel" => {
                let fuel: usize = parsed_for("--fuel", value_for("--fuel"));
                if fuel == 0 {
                    usage_error("--fuel must be positive");
                }
                options.fuel = Some(fuel);
            }
            "--n-start" => options.n_start = parsed_for("--n-start", value_for("--n-start")),
            "--seed" => options.seed = parsed_for("--seed", value_for("--seed")),
            "--shards" => options.shards = parsed_for("--shards", value_for("--shards")),
            "--sync-epochs" => {
                options.sync_epochs = parsed_for("--sync-epochs", value_for("--sync-epochs"));
            }
            "--local" => {
                options.local_method = match value_for("--local").as_str() {
                    "powell" => LocalMethod::Powell,
                    "nm" | "nelder-mead" => LocalMethod::NelderMead,
                    "compass" => LocalMethod::Compass,
                    "none" => LocalMethod::None,
                    other => usage_error(&format!("--local got unknown method {other}")),
                };
            }
            "--budget" => {
                let secs: f64 = parsed_for("--budget", value_for("--budget"));
                options.budget = Some(Duration::from_secs_f64(secs));
            }
            "--json" => options.json_path = Some(value_for("--json")),
            "--stream" => options.stream = true,
            "--workers" => options.workers = parsed_for("--workers", value_for("--workers")),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => usage_error(&format!("unknown flag {flag}")),
            operand => operands.push(operand.to_string()),
        }
    }
    (operands, options)
}

fn search_config(options: &Options) -> CoverMeConfig {
    let mut config = CoverMeConfig::default()
        .n_start(options.n_start)
        .seed(options.seed)
        .local_method(options.local_method)
        .shards(options.shards)
        .sync_epochs(options.sync_epochs);
    if let Some(budget) = options.budget {
        config = config.time_budget(budget);
    }
    config
}

/// Picks the entry function: `--entry` wins, else a function named like the
/// file, else the file's only function; anything else is an error listing
/// what the module defines.
fn infer_entry(module: &Module, path: &str, requested: Option<&str>) -> String {
    if let Some(name) = requested {
        if module.function(name).is_none() {
            let defined: Vec<&str> = module.functions.iter().map(|f| f.name.as_str()).collect();
            run_error(&format!(
                "{path}: no function named {name} (defines: {})",
                defined.join(", ")
            ));
        }
        return name.to_string();
    }
    let stem = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("");
    if module.function(stem).is_some() {
        return stem.to_string();
    }
    if let [only] = module.functions.as_slice() {
        return only.name.clone();
    }
    let defined: Vec<&str> = module.functions.iter().map(|f| f.name.as_str()).collect();
    run_error(&format!(
        "{path}: cannot infer the entry function (defines: {}); pass --entry",
        defined.join(", ")
    ));
}

/// Loads, checks and instruments one FPIR file into an executable program.
fn load_program(path: &str, entry: Option<&str>, fuel: Option<usize>) -> IrProgram {
    let source = std::fs::read_to_string(path)
        .unwrap_or_else(|error| run_error(&format!("cannot read {path}: {error}")));
    let module = parse(&source).unwrap_or_else(|error| run_error(&format!("{path}: {error}")));
    let entry = infer_entry(&module, path, entry);
    let module = check(module).unwrap_or_else(|error| run_error(&format!("{path}: {error}")));
    let instrumented =
        instrument(module, &entry).unwrap_or_else(|error| run_error(&format!("{path}: {error}")));
    let program =
        IrProgram::new(instrumented).unwrap_or_else(|error| run_error(&format!("{path}: {error}")));
    match fuel {
        Some(fuel) => program.with_fuel(fuel),
        None => program,
    }
}

/// The run's headline classification: `done` when every evaluation ran to
/// completion, otherwise the dominant abort kind. A looping program whose
/// every execution exhausts its fuel reports `timeout` here — the value the
/// CI smoke test pins.
fn outcome_label(report: &TestReport) -> &'static str {
    if report.aborted_evaluations() == 0 {
        "done"
    } else if report.timeouts >= report.traps {
        "timeout"
    } else {
        "trap"
    }
}

/// Hand-rolled JSON for one `coverme run` (the build image has no serde).
fn run_report_json(report: &TestReport, entry: &str, path: &str) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("{\n");
    out.push_str("  \"schema\": \"coverme-run-report/1\",\n");
    out.push_str(&format!("  \"file\": \"{}\",\n", path.replace('\\', "/")));
    out.push_str(&format!("  \"entry\": \"{entry}\",\n"));
    out.push_str(&format!("  \"outcome\": \"{}\",\n", outcome_label(report)));
    out.push_str(&format!(
        "  \"branches\": {},\n",
        report.coverage.total_branches()
    ));
    out.push_str(&format!(
        "  \"covered_branches\": {},\n",
        report.coverage.covered_count()
    ));
    out.push_str(&format!(
        "  \"branch_coverage_percent\": {},\n",
        report.branch_coverage_percent()
    ));
    out.push_str(&format!("  \"inputs\": {},\n", report.inputs.len()));
    out.push_str(&format!("  \"rounds\": {},\n", report.rounds.len()));
    out.push_str(&format!("  \"evals\": {},\n", report.evaluations));
    out.push_str(&format!("  \"cache_hits\": {},\n", report.cache_hits));
    out.push_str(&format!("  \"timeouts\": {},\n", report.timeouts));
    out.push_str(&format!("  \"traps\": {},\n", report.traps));
    out.push_str(&format!(
        "  \"wall_time_s\": {}\n",
        report.wall_time.as_secs_f64()
    ));
    out.push_str("}\n");
    out
}

/// Atomic JSON write (tmp + rename), so an interrupted run never leaves a
/// truncated artifact.
fn write_json_atomic(path: &str, json: &str) {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, json)
        .unwrap_or_else(|error| run_error(&format!("cannot write {tmp}: {error}")));
    std::fs::rename(&tmp, path)
        .unwrap_or_else(|error| run_error(&format!("cannot rename {tmp} to {path}: {error}")));
    println!("wrote {path}");
}

fn cmd_run(path: &str, options: &Options) {
    let program = load_program(path, options.entry.as_deref(), options.fuel);
    let entry = program.name().to_string();
    let config = search_config(options);
    let report = if options.stream {
        if config.effective_shards() > 1 {
            usage_error("--stream run mode is unsharded; drop --shards");
        }
        // Drive the epoch-resumable state round by round so each record
        // prints the moment it lands.
        let mut state = SearchState::new(&config, &program, 0);
        let mut printed = 0usize;
        loop {
            let outcome = state.run_rounds(1);
            for record in &state.rounds()[printed..] {
                println!(
                    "round {:>4}: value {:<12} {:?}",
                    record.round, record.value, record.outcome
                );
            }
            printed = state.rounds().len();
            if outcome.is_finished() {
                println!("search finished: {outcome:?}");
                break;
            }
        }
        state.finish().into_report(&entry)
    } else {
        CoverMe::new(config).run(&program)
    };
    print!("{report}");
    println!("outcome: {}", outcome_label(&report));
    if let Some(json_path) = &options.json_path {
        write_json_atomic(json_path, &run_report_json(&report, &entry, path));
    }
}

fn cmd_campaign(dir: &str, options: &Options) {
    if options.entry.is_some() {
        usage_error("--entry applies to run mode only");
    }
    let mut paths: Vec<String> = std::fs::read_dir(dir)
        .unwrap_or_else(|error| run_error(&format!("cannot read {dir}: {error}")))
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "fpir"))
        .filter_map(|path| path.to_str().map(str::to_string))
        .collect();
    paths.sort();
    if paths.is_empty() {
        run_error(&format!("{dir}: no .fpir files"));
    }
    let inventory: Vec<IrProgram> = paths
        .iter()
        .map(|path| load_program(path, None, options.fuel))
        .collect();

    let mut config = CampaignConfig::new()
        .base(search_config(options))
        .workers(options.workers);
    if let Some(budget) = options.budget {
        config = config.time_budget(budget);
    }
    let campaign = Campaign::new(config);
    let report = if options.stream {
        println!("{}", CampaignReport::table_header());
        let report = campaign.run_with(&inventory, |event| {
            let CampaignEvent::FunctionFinished { result, .. } = event;
            println!("{}", result.table_row());
        });
        println!("{}", report.summary());
        report
    } else {
        let report = campaign.run(&inventory);
        print!("{report}");
        report
    };
    if let Some(json_path) = &options.json_path {
        write_json_atomic(json_path, &report.to_json());
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        usage_error("missing command");
    };
    let (operands, options) = parse_options(args);
    match command.as_str() {
        "run" => {
            let [path] = operands.as_slice() else {
                usage_error("run takes exactly one .fpir file");
            };
            cmd_run(path, &options);
        }
        "campaign" => {
            let [dir] = operands.as_slice() else {
                usage_error("campaign takes exactly one directory");
            };
            cmd_campaign(dir, &options);
        }
        "--help" | "-h" | "help" => println!("{USAGE}"),
        other => usage_error(&format!("unknown command {other}")),
    }
}
