//! The `coverme` command-line front end: run CoverMe on FPIR source files.
//!
//! The paper's tool is invoked on C source; this reproduction's equivalent
//! front door takes FPIR mini-language files (see `coverme-fpir` and the
//! checked-in corpus in `examples/fpir/`) and drives the same search
//! machinery the library exposes — sharding, cross-shard sync, the
//! streaming campaign scheduler, and the execution-backend layer
//! (`--backend auto|interp|tape`).
//!
//! ```text
//! coverme run <file.fpir> [options]      test one program
//! coverme campaign <dir> [options]       test every .fpir file in a directory
//! ```
//!
//! The common options (`--seed`, `--shards`, `--local`, `--backend`, …)
//! are shared with the `fdlibm_campaign` example through
//! [`coverme_repro::args`]; `run` additionally takes `--entry` and
//! `--fuel`.
//!
//! `run` exits 0 and prints the usual coverage report; its JSON carries an
//! `outcome` field — `done` when every evaluation ran to completion,
//! `timeout`/`trap` when executions aborted (the dominant classification) —
//! which is what the CI smoke test greps to pin that a non-terminating
//! program degrades instead of hanging. Bad invocations exit 2; source or
//! I/O errors exit 1 with a positioned message.

use coverme::{
    Campaign, CampaignConfig, CampaignEvent, CampaignReport, CoverMe, CoverMeConfig, Program,
    SearchState, TestReport,
};
use coverme_fpir::{check, instrument, parse, IrProgram, Module};
use coverme_repro::args::{write_json_atomic, ArgParser, CommonOptions};

const USAGE: &str = "\
usage: coverme <run|campaign> <path> [options]
  run <file.fpir>      test one FPIR program
  campaign <dir>       test every .fpir file in a directory (sorted by name)
options:
  --entry NAME         entry function (run mode only)
  --fuel N             interpreter step budget per execution (default 100000)
  --n-start N          starting points per function (default 80)
  --seed S             master seed (default 42)
  --shards N           shards per function (default 1 = unsharded)
  --sync-epochs E      cross-shard saturation sync epochs (default 0 = off)
  --adaptive-sync      skip sync barriers whose deltas cannot have changed
  --local METHOD       local minimizer: powell (default), nm, compass, none
  --backend MODE       execution backend: auto (default), interp, tape
  --infeasible POLICY  infeasibility blame: last (default), all, off
  --time-budget SECS   wall-clock budget
  --budget N           global evaluation budget (drives --scheduler bandit)
  --scheduler POLICY   campaign eval allocation: fixed (default), bandit
  --json PATH          write a machine-readable report to PATH (atomic)
  --stream             per-round (run) / per-function (campaign) progress
  --workers N          campaign worker threads (default: auto)
  --help               print this message";

/// Source or I/O failure: positioned message on stderr, exit 1.
fn run_error(message: &str) -> ! {
    eprintln!("coverme: {message}");
    std::process::exit(1);
}

/// The `run`/`campaign`-specific flags on top of the shared set.
struct Options {
    common: CommonOptions,
    entry: Option<String>,
    fuel: Option<usize>,
}

fn parse_options(args: impl Iterator<Item = String>) -> (Vec<String>, Options) {
    let mut parser = ArgParser::new("coverme", USAGE, args);
    let mut options = Options {
        common: CommonOptions::default(),
        entry: None,
        fuel: None,
    };
    let mut operands = Vec::new();
    while let Some(arg) = parser.next_arg() {
        if parser.accept_common(&arg, &mut options.common) {
            continue;
        }
        match arg.as_str() {
            "--entry" => options.entry = Some(parser.value_for("--entry")),
            "--fuel" => {
                let fuel: usize = parser.parsed("--fuel");
                if fuel == 0 {
                    parser.usage_error("--fuel must be positive");
                }
                options.fuel = Some(fuel);
            }
            flag if flag.starts_with('-') => {
                parser.usage_error(&format!("unknown flag {flag}"));
            }
            operand => operands.push(operand.to_string()),
        }
    }
    (operands, options)
}

fn search_config(options: &Options) -> CoverMeConfig {
    options.common.search_config()
}

/// Picks the entry function: `--entry` wins, else a function named like the
/// file, else the file's only function; anything else is an error listing
/// what the module defines.
fn infer_entry(module: &Module, path: &str, requested: Option<&str>) -> String {
    if let Some(name) = requested {
        if module.function(name).is_none() {
            let defined: Vec<&str> = module.functions.iter().map(|f| f.name.as_str()).collect();
            run_error(&format!(
                "{path}: no function named {name} (defines: {})",
                defined.join(", ")
            ));
        }
        return name.to_string();
    }
    let stem = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("");
    if module.function(stem).is_some() {
        return stem.to_string();
    }
    if let [only] = module.functions.as_slice() {
        return only.name.clone();
    }
    let defined: Vec<&str> = module.functions.iter().map(|f| f.name.as_str()).collect();
    run_error(&format!(
        "{path}: cannot infer the entry function (defines: {}); pass --entry",
        defined.join(", ")
    ));
}

/// Loads, checks and instruments one FPIR file into an executable program.
fn load_program(path: &str, entry: Option<&str>, fuel: Option<usize>) -> IrProgram {
    let source = std::fs::read_to_string(path)
        .unwrap_or_else(|error| run_error(&format!("cannot read {path}: {error}")));
    let module = parse(&source).unwrap_or_else(|error| run_error(&format!("{path}: {error}")));
    let entry = infer_entry(&module, path, entry);
    let module = check(module).unwrap_or_else(|error| run_error(&format!("{path}: {error}")));
    let instrumented =
        instrument(module, &entry).unwrap_or_else(|error| run_error(&format!("{path}: {error}")));
    let program =
        IrProgram::new(instrumented).unwrap_or_else(|error| run_error(&format!("{path}: {error}")));
    match fuel {
        Some(fuel) => program.with_fuel(fuel),
        None => program,
    }
}

/// The run's headline classification: `done` when every evaluation ran to
/// completion, otherwise the dominant abort kind. A looping program whose
/// every execution exhausts its fuel reports `timeout` here — the value the
/// CI smoke test pins.
fn outcome_label(report: &TestReport) -> &'static str {
    if report.aborted_evaluations() == 0 {
        "done"
    } else if report.timeouts >= report.traps {
        "timeout"
    } else {
        "trap"
    }
}

/// Hand-rolled JSON for one `coverme run` (the build image has no serde).
fn run_report_json(report: &TestReport, entry: &str, path: &str) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("{\n");
    out.push_str("  \"schema\": \"coverme-run-report/2\",\n");
    out.push_str(&format!("  \"file\": \"{}\",\n", path.replace('\\', "/")));
    out.push_str(&format!("  \"entry\": \"{entry}\",\n"));
    out.push_str(&format!("  \"outcome\": \"{}\",\n", outcome_label(report)));
    out.push_str(&format!("  \"backend\": \"{}\",\n", report.backend));
    out.push_str(&format!("  \"lane_width\": {},\n", report.lane_width));
    out.push_str(&format!(
        "  \"branches\": {},\n",
        report.coverage.total_branches()
    ));
    out.push_str(&format!(
        "  \"covered_branches\": {},\n",
        report.coverage.covered_count()
    ));
    out.push_str(&format!(
        "  \"branch_coverage_percent\": {},\n",
        report.branch_coverage_percent()
    ));
    out.push_str(&format!("  \"inputs\": {},\n", report.inputs.len()));
    out.push_str(&format!("  \"rounds\": {},\n", report.rounds.len()));
    out.push_str(&format!("  \"evals\": {},\n", report.evaluations));
    out.push_str(&format!("  \"cache_hits\": {},\n", report.cache_hits));
    out.push_str(&format!("  \"timeouts\": {},\n", report.timeouts));
    out.push_str(&format!("  \"traps\": {},\n", report.traps));
    out.push_str(&format!(
        "  \"wall_time_s\": {}\n",
        report.wall_time.as_secs_f64()
    ));
    out.push_str("}\n");
    out
}

fn cmd_run(path: &str, options: &Options) {
    let program = load_program(path, options.entry.as_deref(), options.fuel);
    let entry = program.name().to_string();
    let config = search_config(options);
    let report = if options.common.stream {
        if config.effective_shards() > 1 {
            usage_error("--stream run mode is unsharded; drop --shards");
        }
        // Drive the epoch-resumable state round by round so each record
        // prints the moment it lands.
        let mut state = SearchState::new(&config, &program, 0);
        let mut printed = 0usize;
        loop {
            let outcome = state.run_rounds(1);
            for record in &state.rounds()[printed..] {
                println!(
                    "round {:>4}: value {:<12} {:?}",
                    record.round, record.value, record.outcome
                );
            }
            printed = state.rounds().len();
            if outcome.is_finished() {
                println!("search finished: {outcome:?}");
                break;
            }
        }
        state.finish().into_report(&entry)
    } else {
        CoverMe::new(config).run(&program)
    };
    print!("{report}");
    println!("outcome: {}", outcome_label(&report));
    if let Some(json_path) = &options.common.json_path {
        write_json_atomic(json_path, &run_report_json(&report, &entry, path));
    }
}

/// Bad invocation detected after parsing: usage text on stderr, exit 2.
fn usage_error(message: &str) -> ! {
    eprintln!("coverme: {message}\n{USAGE}");
    std::process::exit(2);
}

fn cmd_campaign(dir: &str, options: &Options) {
    if options.entry.is_some() {
        usage_error("--entry applies to run mode only");
    }
    let mut paths: Vec<String> = std::fs::read_dir(dir)
        .unwrap_or_else(|error| run_error(&format!("cannot read {dir}: {error}")))
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "fpir"))
        .filter_map(|path| path.to_str().map(str::to_string))
        .collect();
    paths.sort();
    if paths.is_empty() {
        run_error(&format!("{dir}: no .fpir files"));
    }
    let inventory: Vec<IrProgram> = paths
        .iter()
        .map(|path| load_program(path, None, options.fuel))
        .collect();

    let mut config = CampaignConfig::new()
        .base(search_config(options))
        .workers(options.common.workers);
    if let Some(budget) = options.common.time_budget {
        config = config.time_budget(budget);
    }
    let campaign = Campaign::new(config);
    let report = if options.common.stream {
        println!("{}", CampaignReport::table_header());
        let report = campaign.run_with(&inventory, |event| {
            let CampaignEvent::FunctionFinished { result, .. } = event;
            println!("{}", result.table_row());
        });
        println!("{}", report.summary());
        report
    } else {
        let report = campaign.run(&inventory);
        print!("{report}");
        report
    };
    if let Some(json_path) = &options.common.json_path {
        write_json_atomic(json_path, &report.to_json());
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        usage_error("missing command");
    };
    let (operands, options) = parse_options(args);
    if options.common.scheduler == coverme::SchedulerPolicy::Bandit
        && options.common.budget_evals.is_none()
    {
        usage_error("--scheduler bandit needs --budget N (the pool it allocates)");
    }
    match command.as_str() {
        "run" => {
            let [path] = operands.as_slice() else {
                usage_error("run takes exactly one .fpir file");
            };
            cmd_run(path, &options);
        }
        "campaign" => {
            let [dir] = operands.as_slice() else {
                usage_error("campaign takes exactly one directory");
            };
            cmd_campaign(dir, &options);
        }
        "--help" | "-h" | "help" => println!("{USAGE}"),
        other => usage_error(&format!("unknown command {other}")),
    }
}
