//! The `coverme` command-line front end: run CoverMe on FPIR source files,
//! locally or against a long-running campaign daemon.
//!
//! The paper's tool is invoked on C source; this reproduction's equivalent
//! front door takes FPIR mini-language files (see `coverme-fpir` and the
//! checked-in corpus in `examples/fpir/`) and drives the same search
//! machinery the library exposes — sharding, cross-shard sync, the
//! streaming campaign scheduler, the execution-backend layer
//! (`--backend auto|interp|tape`), and the persistent corpus store
//! (`--corpus DIR`, see `coverme::corpus`).
//!
//! ```text
//! coverme run <file.fpir> [options]       test one program
//! coverme campaign <dir> [options]        test every .fpir file in a directory
//! coverme serve [options]                 start the campaign daemon
//! coverme submit <file.fpir...> [options] submit a job to a running daemon
//! coverme corpus <ls|stats|gc> [options]  inspect or prune a corpus store
//! ```
//!
//! The common options (`--seed`, `--shards`, `--local`, `--backend`, …)
//! are shared with the `fdlibm_campaign` example through
//! [`coverme_repro::args`]; subcommand-specific flags are listed in the
//! usage text below.
//!
//! `run` exits 0 and prints the usual coverage report; its JSON carries an
//! `outcome` field — `done` when every evaluation ran to completion,
//! `timeout`/`trap` when executions aborted (the dominant classification) —
//! which is what the CI smoke test greps to pin that a non-terminating
//! program degrades instead of hanging. Bad invocations exit 2; source or
//! I/O errors exit 1 with a positioned message.

use std::sync::Arc;

use coverme::report::schema::JsonValue;
use coverme::{
    Campaign, CampaignConfig, CampaignEvent, CampaignReport, CorpusStore, CoverMe, CoverMeConfig,
    Program, SearchState,
};
use coverme_fpir::{check, instrument, parse, IrProgram, Module};
use coverme_repro::args::{write_json_atomic, ArgParser, CommonOptions, SubcommandSet};
use coverme_repro::serve::{serve, submit_job, ServeOptions};

const USAGE: &str = "\
usage: coverme <command> [options]
commands:
  run <file.fpir>        test one FPIR program
  campaign <dir>         test every .fpir file in a directory (sorted by name)
  serve                  start the campaign daemon (JSON-lines TCP protocol)
  submit <file.fpir...>  submit a campaign job to a running daemon
  corpus <ls|stats|gc>   inspect or prune a corpus store
options:
  --entry NAME         entry function (run mode only)
  --fuel N             interpreter step budget per execution (default 100000)
  --n-start N          starting points per function (default 80)
  --seed S             master seed (default 42)
  --shards N           shards per function (default 1 = unsharded)
  --sync-epochs E      cross-shard saturation sync epochs (default 0 = off)
  --adaptive-sync      skip sync barriers whose deltas cannot have changed
  --local METHOD       local minimizer: powell (default), nm, compass, none
  --backend MODE       execution backend: auto (default), interp, tape
  --simd ISA           SIMD kernels: portable, sse2, avx2 (default: autodetect;
                       env COVERME_SIMD); values/coverage ISA-independent
  --infeasible POLICY  infeasibility blame: last (default), all, off
  --time-budget SECS   wall-clock budget
  --budget N           global evaluation budget (drives --scheduler bandit)
  --scheduler POLICY   campaign eval allocation: fixed (default), bandit
  --json PATH          write a machine-readable report to PATH (atomic)
  --stream             per-round (run) / per-function (campaign) progress
  --workers N          worker threads (default: auto); serve: shared pool size
  --corpus DIR         persistent corpus store: warm-start repeats, record results
serve options:
  --port N             listen port (default 0 = ephemeral, printed on start)
  --max-jobs N         concurrently running campaigns (default 4)
  --tier NAME=EVALS    per-tenant evaluation pool (repeatable)
submit options:
  --connect HOST:PORT  daemon address (required)
  --tenant NAME        tenant to submit as (default: default)
  --suite fdlibm       submit fdlibm benchmarks (operands name functions)
  --op OP              raw daemon op instead of a campaign: ping|stats|gc|shutdown
corpus options:
  --keep N             entries `corpus gc` keeps, newest first (default 64)
  --help               print this message";

const COMMANDS: &[(&str, &str)] = &[
    ("run", "test one FPIR program"),
    ("campaign", "test every .fpir file in a directory"),
    ("serve", "start the campaign daemon"),
    ("submit", "submit a campaign job to a running daemon"),
    ("corpus", "inspect or prune a corpus store"),
];

const CORPUS_COMMANDS: &[(&str, &str)] = &[
    ("ls", "list corpus entries"),
    ("stats", "aggregate corpus numbers"),
    ("gc", "prune to the newest entries"),
];

/// Source or I/O failure: positioned message on stderr, exit 1.
fn run_error(message: &str) -> ! {
    eprintln!("coverme: {message}");
    std::process::exit(1);
}

/// The subcommand-specific flags on top of the shared set.
struct Options {
    common: CommonOptions,
    entry: Option<String>,
    fuel: Option<usize>,
    port: u16,
    max_jobs: usize,
    tiers: Vec<(String, usize)>,
    connect: Option<String>,
    tenant: Option<String>,
    suite: Option<String>,
    op: Option<String>,
    keep: usize,
}

fn parse_options(args: impl Iterator<Item = String>) -> (Vec<String>, Options) {
    let mut parser = ArgParser::new("coverme", USAGE, args);
    let mut options = Options {
        common: CommonOptions::default(),
        entry: None,
        fuel: None,
        port: 0,
        max_jobs: 4,
        tiers: Vec::new(),
        connect: None,
        tenant: None,
        suite: None,
        op: None,
        keep: 64,
    };
    let mut operands = Vec::new();
    while let Some(arg) = parser.next_arg() {
        if parser.accept_common(&arg, &mut options.common) {
            continue;
        }
        match arg.as_str() {
            "--entry" => options.entry = Some(parser.value_for("--entry")),
            "--fuel" => {
                let fuel: usize = parser.parsed("--fuel");
                if fuel == 0 {
                    parser.usage_error("--fuel must be positive");
                }
                options.fuel = Some(fuel);
            }
            "--port" => options.port = parser.parsed("--port"),
            "--max-jobs" => {
                let max_jobs: usize = parser.parsed("--max-jobs");
                if max_jobs == 0 {
                    parser.usage_error("--max-jobs must be positive");
                }
                options.max_jobs = max_jobs;
            }
            "--tier" => {
                let spec = parser.value_for("--tier");
                let Some((name, evals)) = spec.split_once('=') else {
                    parser.usage_error(&format!("--tier wants NAME=EVALS, found {spec}"));
                };
                let Ok(evals) = evals.parse::<usize>() else {
                    parser.usage_error(&format!("--tier got invalid eval count {evals}"));
                };
                options.tiers.push((name.to_string(), evals));
            }
            "--connect" => options.connect = Some(parser.value_for("--connect")),
            "--tenant" => options.tenant = Some(parser.value_for("--tenant")),
            "--suite" => options.suite = Some(parser.value_for("--suite")),
            "--op" => options.op = Some(parser.value_for("--op")),
            "--keep" => options.keep = parser.parsed("--keep"),
            flag if flag.starts_with('-') => {
                parser.usage_error(&format!("unknown flag {flag}"));
            }
            operand => operands.push(operand.to_string()),
        }
    }
    parser.settle_simd(&options.common);
    (operands, options)
}

fn search_config(options: &Options) -> CoverMeConfig {
    options.common.search_config()
}

/// Opens the corpus store named by `--corpus`, if any. Exit 1 on I/O
/// failure — a requested store that cannot be opened must not silently
/// degrade to a cold run.
fn open_corpus(options: &Options) -> Option<Arc<CorpusStore>> {
    options.common.corpus_dir.as_ref().map(|dir| {
        Arc::new(
            CorpusStore::open(dir)
                .unwrap_or_else(|error| run_error(&format!("cannot open corpus {dir}: {error}"))),
        )
    })
}

/// Picks the entry function: `--entry` wins, else a function named like the
/// file, else the file's only function; anything else is an error listing
/// what the module defines.
fn infer_entry(module: &Module, path: &str, requested: Option<&str>) -> String {
    if let Some(name) = requested {
        if module.function(name).is_none() {
            let defined: Vec<&str> = module.functions.iter().map(|f| f.name.as_str()).collect();
            run_error(&format!(
                "{path}: no function named {name} (defines: {})",
                defined.join(", ")
            ));
        }
        return name.to_string();
    }
    let stem = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("");
    if module.function(stem).is_some() {
        return stem.to_string();
    }
    if let [only] = module.functions.as_slice() {
        return only.name.clone();
    }
    let defined: Vec<&str> = module.functions.iter().map(|f| f.name.as_str()).collect();
    run_error(&format!(
        "{path}: cannot infer the entry function (defines: {}); pass --entry",
        defined.join(", ")
    ));
}

/// Loads, checks and instruments one FPIR file into an executable program.
fn load_program(path: &str, entry: Option<&str>, fuel: Option<usize>) -> IrProgram {
    let source = std::fs::read_to_string(path)
        .unwrap_or_else(|error| run_error(&format!("cannot read {path}: {error}")));
    let module = parse(&source).unwrap_or_else(|error| run_error(&format!("{path}: {error}")));
    let entry = infer_entry(&module, path, entry);
    let module = check(module).unwrap_or_else(|error| run_error(&format!("{path}: {error}")));
    let instrumented =
        instrument(module, &entry).unwrap_or_else(|error| run_error(&format!("{path}: {error}")));
    let program =
        IrProgram::new(instrumented).unwrap_or_else(|error| run_error(&format!("{path}: {error}")));
    match fuel {
        Some(fuel) => program.with_fuel(fuel),
        None => program,
    }
}

fn cmd_run(path: &str, options: &Options) {
    let program = load_program(path, options.entry.as_deref(), options.fuel);
    let entry = program.name().to_string();
    let mut config = search_config(options);
    let corpus = open_corpus(options);
    let fingerprint = corpus.as_ref().map(|store| {
        let fingerprint = program.fingerprint();
        if let Some(warm) = store.warm_start_for(
            fingerprint,
            program.arity(),
            program.num_sites(),
            config.search_key(),
        ) {
            config = config.clone().with_warm_start(warm);
        }
        fingerprint
    });
    let record_config = config.clone();
    let report = if options.common.stream {
        if config.effective_shards() > 1 {
            usage_error("--stream run mode is unsharded; drop --shards");
        }
        // Drive the epoch-resumable state round by round so each record
        // prints the moment it lands.
        let mut state = SearchState::new(&config, &program, 0);
        let mut printed = 0usize;
        loop {
            let outcome = state.run_rounds(1);
            for record in &state.rounds()[printed..] {
                println!(
                    "round {:>4}: value {:<12} {:?}",
                    record.round, record.value, record.outcome
                );
            }
            printed = state.rounds().len();
            if outcome.is_finished() {
                println!("search finished: {outcome:?}");
                break;
            }
        }
        state.finish().into_report(&entry)
    } else {
        CoverMe::new(config).run(&program)
    };
    if let (Some(store), Some(fingerprint)) = (&corpus, fingerprint) {
        if let Err(error) = store.record_report(fingerprint, &record_config, &report) {
            eprintln!("coverme: corpus record failed: {error}");
        }
    }
    print!("{report}");
    if report.warm_replayed > 0 {
        println!(
            "warm start: {} corpus inputs replayed",
            report.warm_replayed
        );
    }
    println!("outcome: {}", report.outcome_label());
    if let Some(json_path) = &options.common.json_path {
        write_json_atomic(json_path, &report.to_run_json(&entry, path));
    }
}

/// Bad invocation detected after parsing: usage text on stderr, exit 2.
fn usage_error(message: &str) -> ! {
    eprintln!("coverme: {message}\n{USAGE}");
    std::process::exit(2);
}

fn cmd_campaign(dir: &str, options: &Options) {
    if options.entry.is_some() {
        usage_error("--entry applies to run mode only");
    }
    let mut paths: Vec<String> = std::fs::read_dir(dir)
        .unwrap_or_else(|error| run_error(&format!("cannot read {dir}: {error}")))
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "fpir"))
        .filter_map(|path| path.to_str().map(str::to_string))
        .collect();
    paths.sort();
    if paths.is_empty() {
        run_error(&format!("{dir}: no .fpir files"));
    }
    let inventory: Vec<IrProgram> = paths
        .iter()
        .map(|path| load_program(path, None, options.fuel))
        .collect();

    let mut config = CampaignConfig::new()
        .with_base(search_config(options))
        .with_workers(options.common.workers);
    if let Some(budget) = options.common.time_budget {
        config = config.with_time_budget(budget);
    }
    if let Some(store) = open_corpus(options) {
        config = config.with_corpus(store);
    }
    let campaign = Campaign::new(config);
    let report = if options.common.stream {
        println!("{}", CampaignReport::table_header());
        let report = campaign.run_with(&inventory, |event| {
            let CampaignEvent::FunctionFinished { result, .. } = event;
            println!("{}", result.table_row());
        });
        println!("{}", report.summary());
        report
    } else {
        let report = campaign.run(&inventory);
        print!("{report}");
        report
    };
    if report.corpus_warm_start() {
        println!(
            "warm start: {} corpus inputs replayed across the suite",
            report.total_warm_replayed()
        );
    }
    if let Some(json_path) = &options.common.json_path {
        write_json_atomic(json_path, &report.to_json());
    }
}

fn cmd_serve(options: &Options) {
    let serve_options = ServeOptions {
        max_jobs: options.max_jobs,
        workers: options.common.workers,
        corpus: open_corpus(options),
        tiers: options.tiers.clone(),
        base: search_config(options),
    };
    let listener = std::net::TcpListener::bind(("127.0.0.1", options.port))
        .unwrap_or_else(|error| run_error(&format!("cannot bind port {}: {error}", options.port)));
    if let Err(error) = serve(listener, serve_options) {
        run_error(&format!("serve failed: {error}"));
    }
}

fn cmd_submit(operands: &[String], options: &Options) {
    let Some(addr) = &options.connect else {
        usage_error("submit needs --connect HOST:PORT");
    };
    let request = match options.op.as_deref() {
        Some("ping") | Some("stats") | Some("shutdown") => {
            format!("{{\"op\": \"{}\"}}", options.op.as_deref().unwrap())
        }
        Some("gc") => format!("{{\"op\": \"gc\", \"keep\": {}}}", options.keep),
        Some(other) => usage_error(&format!(
            "--op got unknown op {other} (ping, stats, gc, shutdown)"
        )),
        None => {
            let mut members = vec![
                ("op".to_string(), JsonValue::String("campaign".to_string())),
                (
                    "tenant".to_string(),
                    JsonValue::String(options.tenant.clone().unwrap_or_else(|| "default".into())),
                ),
                (
                    "seed".to_string(),
                    JsonValue::Number(options.common.seed as f64),
                ),
                (
                    "n_start".to_string(),
                    JsonValue::Number(options.common.n_start as f64),
                ),
            ];
            if let Some(fuel) = options.fuel {
                members.push(("fuel".to_string(), JsonValue::Number(fuel as f64)));
            }
            match options.suite.as_deref() {
                Some(suite) => {
                    members.push(("suite".to_string(), JsonValue::String(suite.to_string())));
                    if !operands.is_empty() {
                        members.push((
                            "functions".to_string(),
                            JsonValue::Array(
                                operands
                                    .iter()
                                    .map(|name| JsonValue::String(name.clone()))
                                    .collect(),
                            ),
                        ));
                    }
                }
                None => {
                    if operands.is_empty() {
                        usage_error("submit takes .fpir files (or --suite fdlibm)");
                    }
                    let sources: Vec<JsonValue> = operands
                        .iter()
                        .map(|path| {
                            let text = std::fs::read_to_string(path).unwrap_or_else(|error| {
                                run_error(&format!("cannot read {path}: {error}"))
                            });
                            JsonValue::Object(vec![
                                ("path".to_string(), JsonValue::String(path.clone())),
                                ("text".to_string(), JsonValue::String(text)),
                            ])
                        })
                        .collect();
                    members.push(("sources".to_string(), JsonValue::Array(sources)));
                }
            }
            JsonValue::Object(members).to_compact()
        }
    };
    let outcome = submit_job(addr, &request, |event| {
        println!("{}", event.to_compact());
    })
    .unwrap_or_else(|error| run_error(&format!("cannot reach {addr}: {error}")));
    match outcome {
        Ok(report) => {
            if let (Some(json_path), Some(report)) = (&options.common.json_path, report) {
                write_json_atomic(json_path, &format!("{report}\n"));
            }
        }
        Err(reason) => run_error(&format!("daemon refused the request: {reason}")),
    }
}

fn cmd_corpus(operands: &[String], options: &Options) {
    let corpus_usage = "usage: coverme corpus <ls|stats|gc> --corpus DIR [--keep N]";
    let set = SubcommandSet::new("coverme corpus", corpus_usage, CORPUS_COMMANDS);
    let sub = set.resolve(operands.first().cloned());
    let Some(store) = open_corpus(options) else {
        usage_error("corpus commands need --corpus DIR");
    };
    match sub {
        "ls" => {
            for entry in store.entries() {
                println!(
                    "{:016x}  {:<24} {:>3}/{:<3} branches {:>4} inputs {:>3} verdicts  gen {}",
                    entry.fingerprint,
                    entry.name,
                    entry.covered_branches,
                    entry.total_branches,
                    entry.inputs.len(),
                    entry.infeasible.len(),
                    entry.generation
                );
            }
        }
        "stats" => {
            let stats = store.stats();
            println!(
                "{} entries, {} inputs, {} infeasibility verdicts, {} recorded evals",
                stats.entries, stats.inputs, stats.infeasible, stats.evaluations
            );
        }
        "gc" => {
            let removed = store
                .gc(options.keep)
                .unwrap_or_else(|error| run_error(&format!("corpus gc failed: {error}")));
            println!(
                "removed {removed} entries, kept the newest {}",
                store.stats().entries
            );
        }
        _ => unreachable!("resolve returns registered commands only"),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let set = SubcommandSet::new("coverme", USAGE, COMMANDS);
    let command = set.resolve(args.next());
    let (operands, options) = parse_options(args);
    if options.common.scheduler == coverme::SchedulerPolicy::Bandit
        && options.common.budget_evals.is_none()
    {
        usage_error("--scheduler bandit needs --budget N (the pool it allocates)");
    }
    match command {
        "run" => {
            let [path] = operands.as_slice() else {
                usage_error("run takes exactly one .fpir file");
            };
            cmd_run(path, &options);
        }
        "campaign" => {
            let [dir] = operands.as_slice() else {
                usage_error("campaign takes exactly one directory");
            };
            cmd_campaign(dir, &options);
        }
        "serve" => {
            if !operands.is_empty() {
                usage_error("serve takes no operands");
            }
            cmd_serve(&options);
        }
        "submit" => cmd_submit(&operands, &options),
        "corpus" => cmd_corpus(&operands, &options),
        _ => unreachable!("resolve returns registered commands only"),
    }
}
