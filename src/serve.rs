//! Campaign-as-a-service: the `coverme serve` daemon.
//!
//! A long-running process that accepts **campaign jobs** over a JSON-lines
//! TCP protocol (schema `coverme-serve/1`, one object per line in both
//! directions), multiplexes concurrent campaigns through one shared worker
//! pool with admission control, meters tenants against configured
//! eval-budget tiers, and streams each campaign's
//! [`CampaignEvent`](coverme::CampaignEvent) rows back to its client as
//! they land. With a corpus store attached (`--corpus DIR`, see
//! [`coverme::corpus`]), every job warm-starts from the store's entries
//! and records its completed results back — a repeat submission of an
//! unchanged campaign spends evaluations only on what changed.
//!
//! # Protocol
//!
//! Requests:
//!
//! ```text
//! {"op": "ping"}
//! {"op": "stats"}
//! {"op": "gc", "keep": 64}
//! {"op": "shutdown"}
//! {"op": "campaign", "tenant": "team-a", "seed": 7, "n_start": 40,
//!  "sources": [{"path": "a.fpir", "text": "..."}]}
//! {"op": "campaign", "suite": "fdlibm", "functions": ["ieee754_exp"]}
//! ```
//!
//! Responses all carry `"schema": "coverme-serve/1"` and an `"event"`
//! discriminator: `hello` on connect, `pong`, `stats`, `gc`,
//! `shutting-down`, `error` (with `line`/`column` for malformed frames),
//! `rejected` (admission control), and for an admitted job the stream
//! `accepted` → `function`* → `report` → `done`, where `report` embeds the
//! same `coverme-campaign-report/5` document `coverme campaign --json`
//! writes, compacted onto one line.
//!
//! Hostile input never takes the daemon down: malformed frames get a
//! positioned `error` event and the connection lives on; an oversized
//! frame (> [`MAX_FRAME`]) or a truncated final frame gets an `error` and
//! a clean close; a client that disconnects mid-campaign cancels its job's
//! searches ([`CancelToken`]), whose workers finalize partial progress and
//! return their pool slots.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};

use coverme::report::schema::{self, JsonValue};
use coverme::{
    BudgetLedger, Campaign, CampaignConfig, CampaignEvent, CancelToken, CorpusStore, CoverMeConfig,
    Program, SchedulerPolicy,
};
use coverme_fpir::{check, instrument, parse as parse_fpir, IrProgram};

/// Hard cap on one request frame, in bytes. A line longer than this is
/// answered with an `error` event and the connection is closed — a frame
/// that large is a protocol violation, not a campaign.
pub const MAX_FRAME: usize = 1 << 20;

/// Daemon configuration, assembled by the CLI from `coverme serve` flags.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Maximum concurrently *running* campaigns; further jobs are rejected
    /// at admission (never queued — the client can retry).
    pub max_jobs: usize,
    /// Total worker threads shared by all campaigns (`0` = the machine's
    /// available parallelism). Each admitted job borrows a slice and
    /// returns it on completion.
    pub workers: usize,
    /// The persistent corpus store, if one is attached.
    pub corpus: Option<Arc<CorpusStore>>,
    /// Per-tenant evaluation pools: a tenant listed here may spend at most
    /// this many evaluations across all its jobs (metered through the same
    /// [`BudgetLedger`] rows the bandit scheduler accounts grants with);
    /// unlisted tenants are unmetered.
    pub tiers: Vec<(String, usize)>,
    /// Template search configuration applied to every job (jobs may
    /// override `seed` and `n_start` per submission).
    pub base: CoverMeConfig,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_jobs: 4,
            workers: 0,
            corpus: None,
            tiers: Vec::new(),
            base: CoverMeConfig::default(),
        }
    }
}

/// The shared worker pool: a counting semaphore over `total` slots. Each
/// admitted campaign acquires a slice (at least one slot, blocking until
/// one frees) and returns it when its searches finish — so the daemon
/// never runs more search threads than configured no matter how many jobs
/// are in flight.
struct WorkerPool {
    total: usize,
    free: Mutex<usize>,
    freed: Condvar,
}

impl WorkerPool {
    fn new(total: usize) -> WorkerPool {
        WorkerPool {
            total,
            free: Mutex::new(total),
            freed: Condvar::new(),
        }
    }

    /// Takes up to `want` slots (at least one), blocking while the pool is
    /// empty. Returns the number actually granted.
    fn acquire(&self, want: usize) -> usize {
        let want = want.max(1);
        let mut free = self.free.lock().expect("worker pool lock poisoned");
        while *free == 0 {
            free = self.freed.wait(free).expect("worker pool lock poisoned");
        }
        let granted = want.min(*free);
        *free -= granted;
        granted
    }

    fn release(&self, slots: usize) {
        let mut free = self.free.lock().expect("worker pool lock poisoned");
        *free = (*free + slots).min(self.total);
        self.freed.notify_all();
    }
}

/// Mutable daemon state, one mutex for all of it (admission decisions and
/// ledger updates are tiny critical sections).
struct Shared {
    active_jobs: usize,
    next_job: u64,
    shutting_down: bool,
    /// Per-tenant spend accounting: `granted` accumulates the evaluations
    /// the tenant's finished jobs actually spent, `grants` counts jobs.
    tenants: HashMap<String, BudgetLedger>,
    /// Cancel tokens of in-flight jobs, so shutdown can interrupt them.
    active_cancels: Vec<CancelToken>,
}

struct Server {
    options: ServeOptions,
    pool: WorkerPool,
    shared: Mutex<Shared>,
    addr: SocketAddr,
}

/// One framing read: a complete line, or one of the violation outcomes the
/// protocol tests pin.
enum Frame {
    /// A complete newline-terminated frame (newline stripped).
    Line(String),
    /// The connection closed cleanly at a frame boundary.
    Eof,
    /// The connection closed mid-frame (bytes without a final newline).
    Truncated,
    /// The frame exceeded [`MAX_FRAME`] before its newline arrived.
    Oversized,
}

fn read_frame(reader: &mut impl BufRead) -> io::Result<Frame> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(error) if error.kind() == ErrorKind::Interrupted => continue,
            Err(error) => return Err(error),
        };
        if buf.is_empty() {
            return Ok(if line.is_empty() {
                Frame::Eof
            } else {
                Frame::Truncated
            });
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(newline) => {
                line.extend_from_slice(&buf[..newline]);
                reader.consume(newline + 1);
                if line.len() > MAX_FRAME {
                    return Ok(Frame::Oversized);
                }
                return Ok(Frame::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            None => {
                let taken = buf.len();
                line.extend_from_slice(buf);
                reader.consume(taken);
                if line.len() > MAX_FRAME {
                    return Ok(Frame::Oversized);
                }
            }
        }
    }
}

/// Builds one response line: the serve envelope plus `event` plus the
/// given members, compact, newline-terminated.
fn event_line(event: &str, members: Vec<(String, JsonValue)>) -> String {
    let mut object = vec![
        (
            "schema".to_string(),
            JsonValue::String(schema::SERVE_PROTOCOL.label()),
        ),
        ("event".to_string(), JsonValue::String(event.to_string())),
    ];
    object.extend(members);
    let mut line = JsonValue::Object(object).to_compact();
    line.push('\n');
    line
}

fn send(writer: &mut impl Write, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// Runs the daemon on an already-bound listener until a client sends
/// `{"op": "shutdown"}`. Prints one parseable `listening on HOST:PORT`
/// line to stdout before accepting — the line scripts and the CI smoke
/// wait for. Every connection gets its own handler thread; all of them are
/// joined (and all in-flight campaigns cancelled and drained) before this
/// returns.
pub fn serve(listener: TcpListener, options: ServeOptions) -> io::Result<()> {
    let addr = listener.local_addr()?;
    let workers = if options.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .max(2)
    } else {
        options.workers
    };
    let server = Server {
        pool: WorkerPool::new(workers),
        options,
        shared: Mutex::new(Shared {
            active_jobs: 0,
            next_job: 1,
            shutting_down: false,
            tenants: HashMap::new(),
            active_cancels: Vec::new(),
        }),
        addr,
    };
    println!("coverme: listening on {addr}");
    io::stdout().flush()?;

    std::thread::scope(|scope| {
        loop {
            let (stream, _) = match listener.accept() {
                Ok(accepted) => accepted,
                Err(error) if error.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            };
            if server
                .shared
                .lock()
                .expect("server lock poisoned")
                .shutting_down
            {
                // The wake-up connection (or a late client): close it and
                // stop accepting. Handler threads drain as the scope ends.
                break;
            }
            let server = &server;
            scope.spawn(move || handle_connection(server, stream));
        }
    });
    println!("coverme: shutdown complete");
    Ok(())
}

fn handle_connection(server: &Server, stream: TcpStream) {
    // Split the stream: buffered frames in, buffered events out. Errors
    // just end the connection — the client is gone; its jobs were already
    // torn down by the write failures inside the job loop.
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    let isa = coverme_runtime::SimdIsa::active();
    let hello = event_line(
        "hello",
        vec![
            (
                "corpus".to_string(),
                JsonValue::Bool(server.options.corpus.is_some()),
            ),
            (
                "max_jobs".to_string(),
                JsonValue::Number(server.options.max_jobs as f64),
            ),
            (
                "simd_isa".to_string(),
                JsonValue::String(isa.label().to_string()),
            ),
            (
                "lane_width".to_string(),
                JsonValue::Number(isa.lane_width() as f64),
            ),
        ],
    );
    if send(&mut writer, &hello).is_err() {
        return;
    }
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(frame) => frame,
            Err(_) => return,
        };
        let text = match frame {
            Frame::Line(text) => text,
            Frame::Eof => return,
            Frame::Truncated => {
                let _ = send(
                    &mut writer,
                    &error_event(1, 1, "truncated frame: connection closed mid-line"),
                );
                return;
            }
            Frame::Oversized => {
                let _ = send(
                    &mut writer,
                    &error_event(
                        1,
                        1,
                        &format!("oversized frame: the limit is {MAX_FRAME} bytes"),
                    ),
                );
                return;
            }
        };
        if text.trim().is_empty() {
            continue;
        }
        let request = match schema::parse(&text) {
            Ok(value) => value,
            Err(error) => {
                // A hostile or malformed frame: positioned error, keep the
                // connection — one bad line must not kill a session.
                if send(
                    &mut writer,
                    &error_event(error.line, error.column, &error.message),
                )
                .is_err()
                {
                    return;
                }
                continue;
            }
        };
        let done = dispatch(server, &request, &mut writer);
        if done {
            return;
        }
    }
}

fn error_event(line: u32, column: u32, message: &str) -> String {
    event_line(
        "error",
        vec![
            ("line".to_string(), JsonValue::Number(line as f64)),
            ("column".to_string(), JsonValue::Number(column as f64)),
            (
                "message".to_string(),
                JsonValue::String(message.to_string()),
            ),
        ],
    )
}

/// Handles one parsed request; returns `true` when the connection should
/// close (shutdown, or the client vanished).
fn dispatch(server: &Server, request: &JsonValue, writer: &mut impl Write) -> bool {
    let Some(op) = request.get("op").and_then(JsonValue::as_str) else {
        return send(
            writer,
            &error_event(1, 1, "request has no string `op` member"),
        )
        .is_err();
    };
    match op {
        "ping" => send(writer, &event_line("pong", Vec::new())).is_err(),
        "stats" => send(writer, &stats_event(server)).is_err(),
        "gc" => {
            let keep = request
                .get("keep")
                .and_then(JsonValue::as_usize)
                .unwrap_or(64);
            let line = match &server.options.corpus {
                Some(store) => match store.gc(keep) {
                    Ok(removed) => event_line(
                        "gc",
                        vec![
                            ("removed".to_string(), JsonValue::Number(removed as f64)),
                            ("kept".to_string(), JsonValue::Number(keep as f64)),
                        ],
                    ),
                    Err(error) => error_event(1, 1, &format!("corpus gc failed: {error}")),
                },
                None => error_event(1, 1, "no corpus store attached (start with --corpus DIR)"),
            };
            send(writer, &line).is_err()
        }
        "shutdown" => {
            {
                let mut shared = server.shared.lock().expect("server lock poisoned");
                shared.shutting_down = true;
                for cancel in &shared.active_cancels {
                    cancel.cancel();
                }
            }
            let _ = send(writer, &event_line("shutting-down", Vec::new()));
            // Wake the acceptor so the scope can start joining handlers.
            let _ = TcpStream::connect(server.addr);
            true
        }
        "campaign" => handle_campaign(server, request, writer),
        other => send(writer, &error_event(1, 1, &format!("unknown op `{other}`"))).is_err(),
    }
}

fn stats_event(server: &Server) -> String {
    let shared = server.shared.lock().expect("server lock poisoned");
    let isa = coverme_runtime::SimdIsa::active();
    let mut members = vec![
        (
            "active_jobs".to_string(),
            JsonValue::Number(shared.active_jobs as f64),
        ),
        (
            "workers".to_string(),
            JsonValue::Number(server.pool.total as f64),
        ),
        (
            "simd_isa".to_string(),
            JsonValue::String(isa.label().to_string()),
        ),
        (
            "lane_width".to_string(),
            JsonValue::Number(isa.lane_width() as f64),
        ),
    ];
    if let Some(store) = &server.options.corpus {
        let stats = store.stats();
        members.push((
            "corpus".to_string(),
            JsonValue::Object(vec![
                (
                    "entries".to_string(),
                    JsonValue::Number(stats.entries as f64),
                ),
                ("inputs".to_string(), JsonValue::Number(stats.inputs as f64)),
                (
                    "infeasible".to_string(),
                    JsonValue::Number(stats.infeasible as f64),
                ),
                (
                    "evaluations".to_string(),
                    JsonValue::Number(stats.evaluations as f64),
                ),
            ]),
        ));
    }
    let mut tenants: Vec<(String, JsonValue)> = shared
        .tenants
        .iter()
        .map(|(name, ledger)| {
            (
                name.clone(),
                JsonValue::Object(vec![
                    (
                        "spent".to_string(),
                        JsonValue::Number(ledger.granted as f64),
                    ),
                    ("jobs".to_string(), JsonValue::Number(ledger.grants as f64)),
                ]),
            )
        })
        .collect();
    tenants.sort_by(|a, b| a.0.cmp(&b.0));
    members.push(("tenants".to_string(), JsonValue::Object(tenants)));
    event_line("stats", members)
}

/// The admission ticket of a running job; its `Drop` guarantees the slot
/// and worker accounting are unwound on every exit path (including a
/// handler panic — no leaked workers).
struct JobTicket<'a> {
    server: &'a Server,
    cancel: CancelToken,
    workers: usize,
}

impl Drop for JobTicket<'_> {
    fn drop(&mut self) {
        let mut shared = self.server.shared.lock().expect("server lock poisoned");
        shared.active_jobs -= 1;
        shared.active_cancels.retain(|token| token != &self.cancel);
        drop(shared);
        self.server.pool.release(self.workers);
    }
}

/// An inventory a job resolved to: either compiled FPIR programs or
/// fdlibm suite benchmarks (both are driven through the same generic
/// campaign path).
enum JobInventory {
    Fpir(Vec<IrProgram>),
    Fdlibm(Vec<coverme_fdlibm::suite::Benchmark>),
}

fn resolve_inventory(request: &JsonValue) -> Result<JobInventory, String> {
    if let Some(suite) = request.get("suite").and_then(JsonValue::as_str) {
        if suite != "fdlibm" {
            return Err(format!("unknown suite `{suite}` (only `fdlibm`)"));
        }
        let benchmarks = match request.get("functions").and_then(JsonValue::as_array) {
            None => coverme_fdlibm::suite::all(),
            Some(names) => {
                let mut picked = Vec::new();
                for name in names {
                    let name = name.as_str().ok_or("`functions` must be strings")?;
                    picked.push(
                        coverme_fdlibm::suite::by_name(name)
                            .ok_or_else(|| format!("unknown fdlibm function `{name}`"))?,
                    );
                }
                picked
            }
        };
        if benchmarks.is_empty() {
            return Err("empty inventory".to_string());
        }
        return Ok(JobInventory::Fdlibm(benchmarks));
    }
    let sources = request
        .get("sources")
        .and_then(JsonValue::as_array)
        .ok_or("campaign needs `sources` (or `suite`)")?;
    if sources.is_empty() {
        return Err("empty inventory".to_string());
    }
    let fuel = request.get("fuel").and_then(JsonValue::as_usize);
    let mut programs = Vec::new();
    for source in sources {
        let path = source
            .get("path")
            .and_then(JsonValue::as_str)
            .unwrap_or("<submitted>");
        let text = source
            .get("text")
            .and_then(JsonValue::as_str)
            .ok_or("each source needs a string `text` member")?;
        let program = compile_source(path, text).map_err(|error| format!("{path}: {error}"))?;
        programs.push(match fuel {
            Some(fuel) if fuel > 0 => program.with_fuel(fuel),
            _ => program,
        });
    }
    Ok(JobInventory::Fpir(programs))
}

/// FPIR text → instrumented program, with the entry inferred like the CLI
/// does (a function named like the file stem, else the only function).
fn compile_source(path: &str, text: &str) -> Result<IrProgram, String> {
    let module = parse_fpir(text).map_err(|error| error.to_string())?;
    let stem = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("");
    let entry = if module.function(stem).is_some() {
        stem.to_string()
    } else if let [only] = module.functions.as_slice() {
        only.name.clone()
    } else {
        return Err("cannot infer the entry function; name one function like the file".to_string());
    };
    let module = check(module).map_err(|error| error.to_string())?;
    let instrumented = instrument(module, &entry).map_err(|error| error.to_string())?;
    IrProgram::new(instrumented).map_err(|error| error.to_string())
}

/// Admission → campaign → streamed teardown for one `campaign` request.
/// Returns `true` when the connection is gone.
fn handle_campaign(server: &Server, request: &JsonValue, writer: &mut impl Write) -> bool {
    let tenant = request
        .get("tenant")
        .and_then(JsonValue::as_str)
        .unwrap_or("default")
        .to_string();
    let inventory = match resolve_inventory(request) {
        Ok(inventory) => inventory,
        Err(message) => return send(writer, &error_event(1, 1, &message)).is_err(),
    };

    // Admission control: capacity, shutdown state, and the tenant's tier.
    let tier = server
        .options
        .tiers
        .iter()
        .find(|(name, _)| *name == tenant)
        .map(|(_, pool)| *pool);
    let (job, ticket, budget) = {
        let mut shared = server.shared.lock().expect("server lock poisoned");
        if shared.shutting_down {
            drop(shared);
            let line = rejected_event("shutting down");
            return send(writer, &line).is_err();
        }
        if shared.active_jobs >= server.options.max_jobs {
            let line = rejected_event(&format!("at capacity ({} active jobs)", shared.active_jobs));
            drop(shared);
            return send(writer, &line).is_err();
        }
        let spent = shared.tenants.get(&tenant).map_or(0, |l| l.granted);
        let budget = match tier {
            Some(pool) if spent >= pool => {
                let line = rejected_event(&format!(
                    "tenant `{tenant}` exhausted its {pool}-eval tier (spent {spent})"
                ));
                drop(shared);
                return send(writer, &line).is_err();
            }
            Some(pool) => Some(pool - spent),
            None => None,
        };
        let job = shared.next_job;
        shared.next_job += 1;
        shared.active_jobs += 1;
        let cancel = CancelToken::new();
        shared.active_cancels.push(cancel.clone());
        drop(shared);
        // Slot accounting is live from here; the ticket unwinds it.
        let workers = server
            .pool
            .acquire(server.pool.total.div_ceil(server.options.max_jobs));
        (
            job,
            JobTicket {
                server,
                cancel,
                workers,
            },
            budget,
        )
    };

    // Per-job search template: the daemon's base knobs, the job's
    // overrides, the tenant's remaining pool as a bandit budget, the
    // job's cancel token, and the shared corpus.
    let mut base = server.options.base.clone();
    if let Some(seed) = request.get("seed").and_then(JsonValue::as_usize) {
        base = base.with_seed(seed as u64);
    }
    if let Some(n_start) = request.get("n_start").and_then(JsonValue::as_usize) {
        base = base.with_n_start(n_start);
    }
    if let Some(pool) = budget {
        base = base
            .with_budget(pool)
            .with_scheduler(SchedulerPolicy::Bandit);
    }
    let mut config = CampaignConfig::new()
        .with_base(base)
        .with_workers(ticket.workers)
        .with_cancel(ticket.cancel.clone());
    if let Some(store) = &server.options.corpus {
        config = config.with_corpus(Arc::clone(store));
    }

    let mut accepted = vec![
        ("job".to_string(), JsonValue::Number(job as f64)),
        ("tenant".to_string(), JsonValue::String(tenant.clone())),
        (
            "workers".to_string(),
            JsonValue::Number(ticket.workers as f64),
        ),
    ];
    if let Some(pool) = budget {
        accepted.push(("budget".to_string(), JsonValue::Number(pool as f64)));
    }
    if send(writer, &event_line("accepted", accepted)).is_err() {
        return true;
    }

    let report = match inventory {
        JobInventory::Fpir(programs) => run_job(&config, &ticket, job, &programs, writer),
        JobInventory::Fdlibm(benchmarks) => run_job(&config, &ticket, job, &benchmarks, writer),
    };

    // Meter the tenant's actual spend (admission reads this next time).
    {
        let mut shared = server.shared.lock().expect("server lock poisoned");
        let ledger = shared.tenants.entry(tenant).or_default();
        ledger.granted += report.as_ref().map_or(0, |(evals, _)| *evals);
        ledger.grants += 1;
    }
    let Some((_, report_json)) = report else {
        return true; // client vanished mid-stream; job already unwound
    };
    let report_value = match schema::parse(&report_json) {
        Ok(value) => value,
        Err(_) => JsonValue::Null,
    };
    let line = event_line(
        "report",
        vec![
            ("job".to_string(), JsonValue::Number(job as f64)),
            ("report".to_string(), report_value),
        ],
    );
    if send(writer, &line).is_err() {
        return true;
    }
    send(
        writer,
        &event_line(
            "done",
            vec![("job".to_string(), JsonValue::Number(job as f64))],
        ),
    )
    .is_err()
}

fn rejected_event(reason: &str) -> String {
    event_line(
        "rejected",
        vec![("reason".to_string(), JsonValue::String(reason.to_string()))],
    )
}

/// Runs one admitted campaign, streaming a `function` event per finished
/// function. Returns `(total_evaluations, report_json)`, or `None` when
/// the client disconnected mid-stream (the job is cancelled and drained
/// before returning — no worker outlives its connection).
fn run_job<P: Program + Sync>(
    config: &CampaignConfig,
    ticket: &JobTicket<'_>,
    job: u64,
    inventory: &[P],
    writer: &mut impl Write,
) -> Option<(usize, String)> {
    let campaign = Campaign::new(config.clone());
    let mut client_gone = false;
    let report = campaign.run_with(inventory, |event| {
        if client_gone {
            return;
        }
        let CampaignEvent::FunctionFinished { result, .. } = event;
        let mut members = vec![
            ("job".to_string(), JsonValue::Number(job as f64)),
            ("name".to_string(), JsonValue::String(result.name.clone())),
            (
                "status".to_string(),
                JsonValue::String(result.status.label().to_string()),
            ),
        ];
        if let Some(report) = &result.report {
            members.push((
                "covered".to_string(),
                JsonValue::Number(report.coverage.covered_count() as f64),
            ));
            members.push((
                "branches".to_string(),
                JsonValue::Number(report.coverage.total_branches() as f64),
            ));
            members.push((
                "evals".to_string(),
                JsonValue::Number(report.evaluations as f64),
            ));
            members.push((
                "warm_replayed".to_string(),
                JsonValue::Number(report.warm_replayed as f64),
            ));
        }
        if send(writer, &event_line("function", members)).is_err() {
            // The client hung up: cancel the job so its remaining searches
            // finalize instead of running out their schedules.
            client_gone = true;
            ticket.cancel.cancel();
        }
    });
    let evals = report.total_evaluations();
    if client_gone {
        return None;
    }
    Some((evals, report.to_json()))
}

/// Client side of one job submission: connects, sends `request` (one
/// line), hands every response event to `on_event`, and returns the
/// embedded campaign report (compact JSON) once `done` arrives. A
/// `rejected` or `error` event is returned as `Err`.
pub fn submit_job(
    addr: &str,
    request: &str,
    mut on_event: impl FnMut(&JsonValue),
) -> io::Result<Result<Option<String>, String>> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    writer.write_all(request.as_bytes())?;
    if !request.ends_with('\n') {
        writer.write_all(b"\n")?;
    }
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut report = None;
    loop {
        let line = match read_frame(&mut reader)? {
            Frame::Line(line) => line,
            Frame::Eof | Frame::Truncated => {
                return Ok(Err("connection closed before `done`".to_string()))
            }
            Frame::Oversized => return Ok(Err("oversized response frame".to_string())),
        };
        let Ok(event) = schema::parse(&line) else {
            return Ok(Err(format!("unparseable response: {line}")));
        };
        on_event(&event);
        match event.get("event").and_then(JsonValue::as_str) {
            Some("done") => return Ok(Ok(report)),
            Some("shutting-down") | Some("pong") | Some("stats") | Some("gc") => {
                return Ok(Ok(report))
            }
            Some("rejected") => {
                let reason = event
                    .get("reason")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("rejected");
                return Ok(Err(reason.to_string()));
            }
            Some("error") => {
                let message = event
                    .get("message")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("error");
                return Ok(Err(message.to_string()));
            }
            Some("report") => {
                if let Some(body) = event.get("report") {
                    report = Some(body.to_compact());
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_split_on_newlines_and_flag_violations() {
        let mut reader = BufReader::new(&b"{\"op\":\"ping\"}\npartial"[..]);
        match read_frame(&mut reader).unwrap() {
            Frame::Line(line) => assert_eq!(line, "{\"op\":\"ping\"}"),
            _ => panic!("expected a complete frame"),
        }
        assert!(matches!(read_frame(&mut reader).unwrap(), Frame::Truncated));
        let mut empty = BufReader::new(&b""[..]);
        assert!(matches!(read_frame(&mut empty).unwrap(), Frame::Eof));
        let big = vec![b'x'; MAX_FRAME + 2];
        let mut oversized = BufReader::new(&big[..]);
        assert!(matches!(
            read_frame(&mut oversized).unwrap(),
            Frame::Oversized
        ));
    }

    #[test]
    fn worker_pool_never_overcommits() {
        let pool = WorkerPool::new(4);
        let first = pool.acquire(3);
        assert_eq!(first, 3);
        let second = pool.acquire(3);
        assert_eq!(second, 1, "only one slot left");
        pool.release(first);
        assert_eq!(pool.acquire(10), 3);
        pool.release(second);
        pool.release(3);
    }

    #[test]
    fn event_lines_are_enveloped_compact_json() {
        let line = event_line("pong", Vec::new());
        assert!(line.ends_with('\n'));
        let value = schema::parse(&line).unwrap();
        assert_eq!(
            value.get("schema").and_then(JsonValue::as_str),
            Some("coverme-serve/1")
        );
        assert_eq!(value.get("event").and_then(JsonValue::as_str), Some("pong"));
    }
}
