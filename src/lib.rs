//! Umbrella crate for the CoverMe reproduction workspace.
//!
//! This crate exists to host the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); it re-exports the member crates
//! so examples can use a single dependency.

#![forbid(unsafe_code)]

pub mod args;
pub mod serve;

pub use coverme;
pub use coverme_baselines as baselines;
pub use coverme_fdlibm as fdlibm;
pub use coverme_fpir as fpir;
pub use coverme_optim as optim;
pub use coverme_runtime as runtime;
