//! Run a parallel CoverMe campaign over the Fdlibm benchmark suite — the
//! workload the paper's introduction motivates (s_tanh.c is its running
//! example) — and print a per-function coverage table plus the suite
//! aggregate (a mini version of Table 2).
//!
//! One CoverMe search runs per function, fanned across worker threads with
//! deterministic per-function seeds: the same seed produces the same table
//! regardless of the worker count.
//!
//! ```text
//! cargo run --release --example fdlibm_campaign [options] [names...]
//!   --workers N      worker threads (default: auto, at least 2)
//!   --budget SECS    wall-clock budget; unstarted functions are skipped
//!   --n-start N      starting points per function (default 80)
//!   --seed S         campaign master seed (default 42)
//!   names...         benchmark names (default: the full 40-function suite)
//! ```

use std::time::Duration;

use coverme::{Campaign, CampaignConfig, CoverMeConfig};
use coverme_fdlibm::{all, by_name};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workers = 0usize; // 0 = auto (>= 2)
    let mut budget: Option<Duration> = None;
    let mut n_start = 80usize;
    let mut seed = 42u64;
    let mut names: Vec<String> = Vec::new();

    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut value_for = |flag: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--workers" => workers = value_for("--workers").parse().expect("--workers N"),
            "--budget" => {
                let secs: f64 = value_for("--budget").parse().expect("--budget SECS");
                budget = Some(Duration::from_secs_f64(secs));
            }
            "--n-start" => n_start = value_for("--n-start").parse().expect("--n-start N"),
            "--seed" => seed = value_for("--seed").parse().expect("--seed S"),
            "--all" => {}
            other => names.push(other.to_string()),
        }
    }

    let inventory = if names.is_empty() {
        all()
    } else {
        names
            .iter()
            .map(|name| by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}")))
            .collect()
    };

    let mut config = CampaignConfig::new()
        .base(CoverMeConfig::default().n_start(n_start).seed(seed))
        .workers(workers);
    if let Some(budget) = budget {
        config = config.time_budget(budget);
    }
    let effective = config.effective_workers(inventory.len());
    println!(
        "campaign: {} functions, {} workers, n_start = {n_start}, seed = {seed}",
        inventory.len(),
        effective
    );

    let report = Campaign::new(config).run(&inventory);
    print!("{report}");
}
