//! Run CoverMe against a selection of Fdlibm benchmark functions — the
//! workload the paper's introduction motivates (s_tanh.c is its running
//! example) — and print a mini version of Table 2.
//!
//! Run with `cargo run --release --example fdlibm_campaign [names...]`.

use coverme::{CoverMe, CoverMeConfig};
use coverme_fdlibm::{all, by_name};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let benchmarks = if args.is_empty() {
        ["tanh", "sin", "erf", "log10", "asinh", "atan"]
            .iter()
            .filter_map(|n| by_name(n))
            .collect::<Vec<_>>()
    } else if args[0] == "--all" {
        all()
    } else {
        args.iter().filter_map(|n| by_name(n)).collect()
    };

    println!("{:<20} {:>10} {:>12} {:>10}", "function", "#branches", "coverage(%)", "time(s)");
    for b in benchmarks {
        let report = CoverMe::new(CoverMeConfig::default().n_start(80).seed(42)).run(&b);
        println!(
            "{:<20} {:>10} {:>12.1} {:>10.3}",
            b.name,
            2 * b.sites,
            report.branch_coverage_percent(),
            report.wall_time.as_secs_f64()
        );
    }
}
