//! Run a parallel CoverMe campaign over the Fdlibm benchmark suite — the
//! workload the paper's introduction motivates (s_tanh.c is its running
//! example) — and print a per-function coverage table plus the suite
//! aggregate (a mini version of Table 2).
//!
//! The campaign schedules epoch tasks over (function, shard) pairs: with
//! `--shards 1` (the default) that is one CoverMe search per function; with
//! `--shards N` each function's `n_start` budget additionally splits across
//! N shard units whose saturation snapshots are merged, so a heavy trailing
//! function (`pow`, 114 branches) fans out over idle workers instead of
//! serializing on one thread. `--sync-epochs E` makes the shards of each
//! function rendezvous at E deterministic barriers and exchange saturation
//! deltas, so later rounds stop chasing branches a sibling already covered.
//! Searches are deterministic per `(seed, shards, sync_epochs)`: the same
//! seed produces the same table regardless of the worker count. `--stream`
//! prints each function's row the moment it finishes instead of after the
//! whole suite.
//!
//! ```text
//! cargo run --release --example fdlibm_campaign [options] [names...]
//!   --workers N          worker threads (default: auto, at least 2)
//!   --shards N           shards per function (default 1 = unsharded)
//!   --sync-epochs E      cross-shard saturation sync epochs (default 0 = off)
//!   --stream             print rows as functions finish (streaming)
//!   --compare-shards N   run unsharded then with N shards and print the
//!                        per-function wall-clock speedup (asserted only
//!                        under COVERME_ASSERT_SPEEDUP=1)
//!   --compare-sync E     run sync-off then sync-on with E epochs at the
//!                        same shard count and print the per-function
//!                        evaluation savings
//!   --compare-budget N   run the fixed scheduler then the bandit at a
//!                        global budget of N evaluations and print coverage
//!                        and evals side by side
//!   --time-budget SECS   wall-clock budget; unstarted functions are skipped
//!   --budget N           global evaluation budget for --scheduler bandit
//!   --scheduler POLICY   campaign eval allocation: fixed (default), bandit
//!   --adaptive-sync      skip sync barriers whose deltas cannot have changed
//!   --n-start N          starting points per function (default 80)
//!   --seed S             campaign master seed (default 42)
//!   --local METHOD       local minimizer: powell (default), nm, compass, none
//!   --backend MODE       execution backend: auto (default), interp, tape
//!                        (native fdlibm ports have no tape, so tape falls
//!                        back to interp here — the knob exists for parity
//!                        with the coverme CLI, whose flags this example
//!                        shares via coverme_repro::args)
//!   --simd ISA           SIMD kernels: portable, sse2, avx2 (default:
//!                        autodetect; env COVERME_SIMD) — bit-identical
//!                        results at different lane widths
//!   --json PATH          also write the CampaignReport as JSON to PATH
//!                        (per-function coverage, evals, cache hits and
//!                        evals/sec — the artifact the nightly CI job and
//!                        the BENCH_campaign.json perf snapshot store);
//!                        written atomically (tmp file + rename) so an
//!                        interrupted run cannot leave truncated JSON.
//!                        With --compare-shards the sharded run is written;
//!                        with --compare-sync the sync-on report is written
//!                        with sync-off eval columns alongside
//!   names...             benchmark names (default: the full 40-function suite)
//! ```
//!
//! Unknown flags and flags missing their value abort with a usage message
//! (exit 2) rather than being misread as benchmark names.

use coverme::{Campaign, CampaignConfig, CampaignEvent, CampaignReport, SchedulerPolicy};
use coverme_fdlibm::{all, by_name};
use coverme_repro::args::{write_json_atomic, ArgParser, CommonOptions};

const USAGE: &str = "\
usage: cargo run --release --example fdlibm_campaign -- [options] [names...]
  --workers N          worker threads (default: auto, at least 2)
  --shards N           shards per function (default 1 = unsharded)
  --sync-epochs E      cross-shard saturation sync epochs (default 0 = off)
  --stream             print rows as functions finish (streaming)
  --compare-shards N   run unsharded then with N shards and print the
                       per-function wall-clock speedup (asserted only
                       under COVERME_ASSERT_SPEEDUP=1)
  --compare-sync E     run sync-off then sync-on with E epochs and print
                       the per-function evaluation savings
  --compare-budget N   run the fixed scheduler then the bandit at a global
                       budget of N evaluations, side by side
  --time-budget SECS   wall-clock budget; unstarted functions are skipped
  --budget N           global evaluation budget for --scheduler bandit
  --scheduler POLICY   campaign eval allocation: fixed (default), bandit
  --adaptive-sync      skip sync barriers whose deltas cannot have changed
  --infeasible POLICY  infeasibility blame: last (default), all, off
  --n-start N          starting points per function (default 80)
  --seed S             campaign master seed (default 42)
  --local METHOD       local minimizer: powell (default), nm, compass, none
  --backend MODE       execution backend: auto (default), interp, tape
  --simd ISA           SIMD kernels: portable, sse2, avx2 (default: autodetect;
                       env COVERME_SIMD); values/coverage ISA-independent
  --json PATH          also write the CampaignReport as JSON to PATH
                       (atomic: tmp file + rename)
  --help               print this message
  names...             benchmark names (default: the full 40-function suite)";

fn main() {
    let mut parser = ArgParser::new("fdlibm_campaign", USAGE, std::env::args().skip(1));
    let mut options = CommonOptions::default();
    let mut compare_shards: Option<usize> = None;
    let mut compare_sync: Option<usize> = None;
    let mut compare_budget: Option<usize> = None;
    let mut names: Vec<String> = Vec::new();

    while let Some(arg) = parser.next_arg() {
        if parser.accept_common(&arg, &mut options) {
            continue;
        }
        match arg.as_str() {
            "--compare-shards" => compare_shards = Some(parser.parsed("--compare-shards")),
            "--compare-sync" => compare_sync = Some(parser.parsed("--compare-sync")),
            "--compare-budget" => compare_budget = Some(parser.parsed("--compare-budget")),
            "--all" => {}
            // Anything else dash-prefixed is a flag typo, not a function
            // name; reject it (exit 2) instead of running a surprise
            // campaign.
            flag if flag.starts_with('-') => parser.usage_error(&format!("unknown flag {flag}")),
            name => names.push(name.to_string()),
        }
    }
    parser.settle_simd(&options);
    let compares = [
        compare_shards.is_some(),
        compare_sync.is_some(),
        compare_budget.is_some(),
    ];
    if compares.iter().filter(|&&set| set).count() > 1 {
        parser.usage_error(
            "--compare-shards, --compare-sync and --compare-budget are mutually exclusive",
        );
    }
    if options.stream && compares.contains(&true) {
        parser.usage_error("--stream applies to single-run mode only");
    }
    if options.scheduler == SchedulerPolicy::Bandit
        && options.budget_evals.is_none()
        && compare_budget.is_none()
    {
        parser.usage_error("--scheduler bandit needs --budget N (the pool it allocates)");
    }

    let inventory = if names.is_empty() {
        all()
    } else {
        names
            .iter()
            .map(|name| {
                by_name(name)
                    .unwrap_or_else(|| parser.usage_error(&format!("unknown benchmark {name}")))
            })
            .collect()
    };

    let run = |base: CommonOptions, stream: bool| -> CampaignReport {
        let mut config = CampaignConfig::new()
            .with_base(base.search_config())
            .with_workers(options.workers);
        if let Some(budget) = options.time_budget {
            config = config.with_time_budget(budget);
        }
        let effective = config.effective_workers(inventory.len());
        let effective_sync = config.base.effective_sync_epochs();
        println!(
            "campaign: {} functions, {} workers, {} shard(s)/function, \
             {} sync epoch(s), n_start = {}, seed = {}, scheduler = {}{}",
            inventory.len(),
            effective,
            base.shards.max(1),
            effective_sync,
            options.n_start,
            options.seed,
            base.scheduler.label(),
            match base.budget_evals {
                Some(pool) => format!(", budget = {pool}"),
                None => String::new(),
            },
        );
        let campaign = Campaign::new(config);
        if stream {
            println!("{}", CampaignReport::table_header());
            let report = campaign.run_with(&inventory, |event| {
                let CampaignEvent::FunctionFinished { result, .. } = event;
                println!("{}", result.table_row());
            });
            println!("{}", report.summary());
            report
        } else {
            campaign.run(&inventory)
        }
    };

    match (compare_shards, compare_sync, compare_budget) {
        (None, None, None) => {
            let report = run(options.clone(), options.stream);
            if !options.stream {
                print!("{report}");
            }
            if let Some(path) = &options.json_path {
                write_json_atomic(path, &report.to_json());
            }
        }
        (None, Some(epochs), None) => {
            // Feedback-recovery measurement: sync-off vs sync-on at the
            // same shard count and budget. The JSON artifact carries the
            // sync-on report with sync-off eval columns alongside, so the
            // nightly run tracks the evaluation savings over time.
            let blind = run(
                CommonOptions {
                    sync_epochs: 0,
                    ..options.clone()
                },
                false,
            );
            print!("{blind}");
            let synced = run(
                CommonOptions {
                    sync_epochs: epochs,
                    ..options.clone()
                },
                false,
            );
            print!("{synced}");
            println!(
                "sync savings (0 -> {epochs} epochs, {} shards):",
                options.shards
            );
            println!(
                "{:<22} {:>12} {:>12} {:>9} {:>10}",
                "function", "evals off", "evals on", "saved", "coverage"
            );
            for (off, on) in blind.results.iter().zip(&synced.results) {
                let (Some(off), Some(on)) = (off.report.as_ref(), on.report.as_ref()) else {
                    continue;
                };
                let saved = if off.evaluations > 0 {
                    100.0 * (off.evaluations as f64 - on.evaluations as f64)
                        / off.evaluations as f64
                } else {
                    0.0
                };
                let coverage = if on.coverage.covered_count() == off.coverage.covered_count() {
                    format!("{:>9.1}%", on.branch_coverage_percent())
                } else {
                    format!(
                        "{:>4} vs {:<4}",
                        on.coverage.covered_count(),
                        off.coverage.covered_count()
                    )
                };
                println!(
                    "{:<22} {:>12} {:>12} {:>8.1}% {:>10}",
                    on.program, off.evaluations, on.evaluations, saved, coverage
                );
            }
            println!(
                "{:<22} {:>12} {:>12} {:>8.1}%",
                "suite",
                blind.total_evaluations(),
                synced.total_evaluations(),
                100.0 * (blind.total_evaluations() as f64 - synced.total_evaluations() as f64)
                    / blind.total_evaluations().max(1) as f64
            );
            if let Some(path) = &options.json_path {
                write_json_atomic(path, &synced.to_json_with_sync_baseline(&blind));
            }
        }
        (Some(sharded), None, None) => {
            let baseline = run(
                CommonOptions {
                    shards: 1,
                    sync_epochs: 0,
                    ..options.clone()
                },
                false,
            );
            print!("{baseline}");
            let report = run(
                CommonOptions {
                    shards: sharded,
                    ..options.clone()
                },
                false,
            );
            print!("{report}");
            if let Some(path) = &options.json_path {
                write_json_atomic(path, &report.to_json());
            }
            println!("shard speedup (1 -> {sharded} shards):");
            println!(
                "{:<22} {:>9} {:>9} {:>9} {:>10}",
                "function", "t1(s)", "tN(s)", "speedup", "coverage"
            );
            for (a, b) in baseline.results.iter().zip(&report.results) {
                let (Some(a), Some(b)) = (a.report.as_ref(), b.report.as_ref()) else {
                    continue;
                };
                let t1 = a.wall_time.as_secs_f64();
                let tn = b.wall_time.as_secs_f64();
                println!(
                    "{:<22} {:>9.3} {:>9.3} {:>8.2}x {:>9.1}%",
                    b.program,
                    t1,
                    tn,
                    if tn > 0.0 { t1 / tn } else { f64::INFINITY },
                    b.branch_coverage_percent(),
                );
                // Monotonicity only holds for full-budget, sync-off runs: a
                // deadline can cut the two runs at different points, and a
                // synced shard minimizes against a larger snapshot than the
                // blind run's, so its trajectory is not comparable.
                if options.time_budget.is_none() && options.sync_epochs == 0 {
                    assert!(
                        b.coverage.covered_count() >= a.coverage.covered_count(),
                        "{}: sharding lost coverage ({} < {})",
                        b.program,
                        b.coverage.covered_count(),
                        a.coverage.covered_count()
                    );
                }
            }
            let t1 = baseline.wall_time.as_secs_f64();
            let tn = report.wall_time.as_secs_f64();
            let speedup = if tn > 0.0 { t1 / tn } else { f64::INFINITY };
            println!(
                "{:<22} {:>9.3} {:>9.3} {:>8.2}x",
                "campaign", t1, tn, speedup
            );
            // The wall-clock speedup depends on how loaded the machine is,
            // so it is printed always but asserted only when the caller
            // opts in (CI sets COVERME_ASSERT_SPEEDUP=1 on a step that has
            // the runner to itself).
            if std::env::var_os("COVERME_ASSERT_SPEEDUP").is_some_and(|v| v == "1") {
                assert!(
                    speedup > 1.0,
                    "sharding {sharded} ways did not speed the campaign up \
                     ({t1:.3}s -> {tn:.3}s)"
                );
            }
        }
        (None, None, Some(pool)) => {
            // Budget-economics measurement: the fixed scheduler's full
            // n_start schedule vs the bandit allocating a global pool of
            // `pool` evaluations, same seed and options otherwise. The JSON
            // artifact carries the bandit report with fixed-scheduler
            // columns alongside (`evals_fixed`, `covered_branches_fixed`),
            // so the nightly run tracks the budget savings over time.
            let fixed = run(
                CommonOptions {
                    scheduler: SchedulerPolicy::Fixed,
                    budget_evals: None,
                    ..options.clone()
                },
                false,
            );
            print!("{fixed}");
            let bandit = run(
                CommonOptions {
                    scheduler: SchedulerPolicy::Bandit,
                    budget_evals: Some(pool),
                    ..options.clone()
                },
                false,
            );
            print!("{bandit}");
            println!("budget economics (fixed -> bandit at {pool} evals):");
            println!(
                "{:<22} {:>12} {:>12} {:>9} {:>12}",
                "function", "evals fixed", "evals bandit", "saved", "coverage"
            );
            for (f, b) in fixed.results.iter().zip(&bandit.results) {
                let (Some(f), Some(b)) = (f.report.as_ref(), b.report.as_ref()) else {
                    continue;
                };
                let saved = if f.evaluations > 0 {
                    100.0 * (f.evaluations as f64 - b.evaluations as f64) / f.evaluations as f64
                } else {
                    0.0
                };
                let coverage = if b.coverage.covered_count() == f.coverage.covered_count() {
                    format!("{:>11.1}%", b.branch_coverage_percent())
                } else {
                    format!(
                        "{:>5} vs {:<5}",
                        b.coverage.covered_count(),
                        f.coverage.covered_count()
                    )
                };
                println!(
                    "{:<22} {:>12} {:>12} {:>8.1}% {:>12}",
                    b.program, f.evaluations, b.evaluations, saved, coverage
                );
            }
            println!(
                "{:<22} {:>12} {:>12} {:>8.1}%  ({:.1}% vs {:.1}% coverage)",
                "suite",
                fixed.total_evaluations(),
                bandit.total_evaluations(),
                100.0 * (fixed.total_evaluations() as f64 - bandit.total_evaluations() as f64)
                    / fixed.total_evaluations().max(1) as f64,
                bandit.suite_branch_coverage_percent(),
                fixed.suite_branch_coverage_percent(),
            );
            if let Some(path) = &options.json_path {
                write_json_atomic(path, &bandit.to_json_with_budget_baseline(&fixed));
            }
        }
        _ => unreachable!("rejected above"),
    }
}
