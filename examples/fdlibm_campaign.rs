//! Run a parallel CoverMe campaign over the Fdlibm benchmark suite — the
//! workload the paper's introduction motivates (s_tanh.c is its running
//! example) — and print a per-function coverage table plus the suite
//! aggregate (a mini version of Table 2).
//!
//! The campaign schedules epoch tasks over (function, shard) pairs: with
//! `--shards 1` (the default) that is one CoverMe search per function; with
//! `--shards N` each function's `n_start` budget additionally splits across
//! N shard units whose saturation snapshots are merged, so a heavy trailing
//! function (`pow`, 114 branches) fans out over idle workers instead of
//! serializing on one thread. `--sync-epochs E` makes the shards of each
//! function rendezvous at E deterministic barriers and exchange saturation
//! deltas, so later rounds stop chasing branches a sibling already covered.
//! Searches are deterministic per `(seed, shards, sync_epochs)`: the same
//! seed produces the same table regardless of the worker count. `--stream`
//! prints each function's row the moment it finishes instead of after the
//! whole suite.
//!
//! ```text
//! cargo run --release --example fdlibm_campaign [options] [names...]
//!   --workers N          worker threads (default: auto, at least 2)
//!   --shards N           shards per function (default 1 = unsharded)
//!   --sync-epochs E      cross-shard saturation sync epochs (default 0 = off)
//!   --stream             print rows as functions finish (streaming)
//!   --compare-shards N   run unsharded then with N shards and print the
//!                        per-function wall-clock speedup (asserted only
//!                        under COVERME_ASSERT_SPEEDUP=1)
//!   --compare-sync E     run sync-off then sync-on with E epochs at the
//!                        same shard count and print the per-function
//!                        evaluation savings
//!   --budget SECS        wall-clock budget; unstarted functions are skipped
//!   --n-start N          starting points per function (default 80)
//!   --seed S             campaign master seed (default 42)
//!   --local METHOD       local minimizer: powell (default), nm, compass, none
//!   --json PATH          also write the CampaignReport as JSON to PATH
//!                        (per-function coverage, evals, cache hits and
//!                        evals/sec — the artifact the nightly CI job and
//!                        the BENCH_campaign.json perf snapshot store);
//!                        written atomically (tmp file + rename) so an
//!                        interrupted run cannot leave truncated JSON.
//!                        With --compare-shards the sharded run is written;
//!                        with --compare-sync the sync-on report is written
//!                        with sync-off eval columns alongside
//!   names...             benchmark names (default: the full 40-function suite)
//! ```
//!
//! Unknown flags and flags missing their value abort with a usage message
//! (exit 2) rather than being misread as benchmark names.

use std::time::Duration;

use coverme::{
    Campaign, CampaignConfig, CampaignEvent, CampaignReport, CoverMeConfig, LocalMethod,
};
use coverme_fdlibm::{all, by_name};

const USAGE: &str = "\
usage: cargo run --release --example fdlibm_campaign -- [options] [names...]
  --workers N          worker threads (default: auto, at least 2)
  --shards N           shards per function (default 1 = unsharded)
  --sync-epochs E      cross-shard saturation sync epochs (default 0 = off)
  --stream             print rows as functions finish (streaming)
  --compare-shards N   run unsharded then with N shards and print the
                       per-function wall-clock speedup (asserted only
                       under COVERME_ASSERT_SPEEDUP=1)
  --compare-sync E     run sync-off then sync-on with E epochs and print
                       the per-function evaluation savings
  --budget SECS        wall-clock budget; unstarted functions are skipped
  --n-start N          starting points per function (default 80)
  --seed S             campaign master seed (default 42)
  --local METHOD       local minimizer: powell (default), nm, compass, none
  --json PATH          also write the CampaignReport as JSON to PATH
                       (atomic: tmp file + rename)
  --help               print this message
  names...             benchmark names (default: the full 40-function suite)";

/// Aborts with the usage text on stderr; exit code 2, the conventional
/// "bad invocation" status, so CI steps cannot misread a flag typo as a
/// campaign result.
fn usage_error(message: &str) -> ! {
    eprintln!("fdlibm_campaign: {message}\n{USAGE}");
    std::process::exit(2);
}

/// Parses a flag's value, aborting with a usage message on junk.
fn parsed_for<T: std::str::FromStr>(flag: &str, value: String) -> T {
    value
        .parse()
        .unwrap_or_else(|_| usage_error(&format!("{flag} got invalid value {value}")))
}

/// Writes the JSON artifact atomically: the document lands in a sibling
/// temp file first and is renamed into place, so an interrupted run (or a
/// crash mid-write) can never leave a truncated `BENCH_campaign.json` for
/// the nightly artifact collector — the rename either happens or it
/// doesn't.
fn write_json_atomic(path: &str, json: &str) {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, json).unwrap_or_else(|error| panic!("cannot write {tmp}: {error}"));
    std::fs::rename(&tmp, path)
        .unwrap_or_else(|error| panic!("cannot rename {tmp} to {path}: {error}"));
    println!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workers = 0usize; // 0 = auto (>= 2)
    let mut shards = 1usize;
    let mut sync_epochs = 0usize;
    let mut stream = false;
    let mut compare_shards: Option<usize> = None;
    let mut compare_sync: Option<usize> = None;
    let mut budget: Option<Duration> = None;
    let mut n_start = 80usize;
    let mut seed = 42u64;
    let mut local_method = LocalMethod::Powell;
    let mut json_path: Option<String> = None;
    let mut names: Vec<String> = Vec::new();

    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        // A flag's value must be a real operand: the next argument, and not
        // another flag — `--json --shards` is a missing path, not a path.
        let mut value_for = |flag: &str| -> String {
            match iter.next() {
                Some(value) if !value.starts_with("--") => value,
                Some(value) => usage_error(&format!("{flag} needs a value, found flag {value}")),
                None => usage_error(&format!("{flag} needs a value")),
            }
        };
        match arg.as_str() {
            "--workers" => workers = parsed_for("--workers", value_for("--workers")),
            "--shards" => shards = parsed_for("--shards", value_for("--shards")),
            "--sync-epochs" => {
                sync_epochs = parsed_for("--sync-epochs", value_for("--sync-epochs"));
            }
            "--stream" => stream = true,
            "--compare-shards" => {
                compare_shards = Some(parsed_for(
                    "--compare-shards",
                    value_for("--compare-shards"),
                ));
            }
            "--compare-sync" => {
                compare_sync = Some(parsed_for("--compare-sync", value_for("--compare-sync")));
            }
            "--budget" => {
                let secs: f64 = parsed_for("--budget", value_for("--budget"));
                budget = Some(Duration::from_secs_f64(secs));
            }
            "--n-start" => n_start = parsed_for("--n-start", value_for("--n-start")),
            "--seed" => seed = parsed_for("--seed", value_for("--seed")),
            "--local" => {
                local_method = match value_for("--local").as_str() {
                    "powell" => LocalMethod::Powell,
                    "nm" | "nelder-mead" => LocalMethod::NelderMead,
                    "compass" => LocalMethod::Compass,
                    "none" => LocalMethod::None,
                    other => usage_error(&format!("--local got unknown method {other}")),
                };
            }
            "--json" => json_path = Some(value_for("--json")),
            "--all" => {}
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            // Anything else dash-prefixed is a flag typo, not a function
            // name; reject it instead of running a surprise campaign.
            flag if flag.starts_with('-') => usage_error(&format!("unknown flag {flag}")),
            name => names.push(name.to_string()),
        }
    }
    if compare_shards.is_some() && compare_sync.is_some() {
        usage_error("--compare-shards and --compare-sync are mutually exclusive");
    }
    if stream && (compare_shards.is_some() || compare_sync.is_some()) {
        usage_error("--stream applies to single-run mode only");
    }

    let inventory = if names.is_empty() {
        all()
    } else {
        names
            .iter()
            .map(|name| {
                by_name(name).unwrap_or_else(|| usage_error(&format!("unknown benchmark {name}")))
            })
            .collect()
    };

    let run = |shards: usize, sync_epochs: usize, stream: bool| -> CampaignReport {
        let mut config = CampaignConfig::new()
            .base(
                CoverMeConfig::default()
                    .n_start(n_start)
                    .seed(seed)
                    .local_method(local_method)
                    .shards(shards)
                    .sync_epochs(sync_epochs),
            )
            .workers(workers);
        if let Some(budget) = budget {
            config = config.time_budget(budget);
        }
        let effective = config.effective_workers(inventory.len());
        let effective_sync = config.base.effective_sync_epochs();
        println!(
            "campaign: {} functions, {} workers, {} shard(s)/function, \
             {} sync epoch(s), n_start = {n_start}, seed = {seed}",
            inventory.len(),
            effective,
            shards.max(1),
            effective_sync,
        );
        let campaign = Campaign::new(config);
        if stream {
            println!("{}", CampaignReport::table_header());
            let report = campaign.run_with(&inventory, |event| {
                let CampaignEvent::FunctionFinished { result, .. } = event;
                println!("{}", result.table_row());
            });
            println!("{}", report.summary());
            report
        } else {
            campaign.run(&inventory)
        }
    };

    match (compare_shards, compare_sync) {
        (None, None) => {
            let report = run(shards, sync_epochs, stream);
            if !stream {
                print!("{report}");
            }
            if let Some(path) = &json_path {
                write_json_atomic(path, &report.to_json());
            }
        }
        (None, Some(epochs)) => {
            // Feedback-recovery measurement: sync-off vs sync-on at the
            // same shard count and budget. The JSON artifact carries the
            // sync-on report with sync-off eval columns alongside, so the
            // nightly run tracks the evaluation savings over time.
            let blind = run(shards, 0, false);
            print!("{blind}");
            let synced = run(shards, epochs, false);
            print!("{synced}");
            println!("sync savings (0 -> {epochs} epochs, {shards} shards):");
            println!(
                "{:<22} {:>12} {:>12} {:>9} {:>10}",
                "function", "evals off", "evals on", "saved", "coverage"
            );
            for (off, on) in blind.results.iter().zip(&synced.results) {
                let (Some(off), Some(on)) = (off.report.as_ref(), on.report.as_ref()) else {
                    continue;
                };
                let saved = if off.evaluations > 0 {
                    100.0 * (off.evaluations as f64 - on.evaluations as f64)
                        / off.evaluations as f64
                } else {
                    0.0
                };
                let coverage = if on.coverage.covered_count() == off.coverage.covered_count() {
                    format!("{:>9.1}%", on.branch_coverage_percent())
                } else {
                    format!(
                        "{:>4} vs {:<4}",
                        on.coverage.covered_count(),
                        off.coverage.covered_count()
                    )
                };
                println!(
                    "{:<22} {:>12} {:>12} {:>8.1}% {:>10}",
                    on.program, off.evaluations, on.evaluations, saved, coverage
                );
            }
            println!(
                "{:<22} {:>12} {:>12} {:>8.1}%",
                "suite",
                blind.total_evaluations(),
                synced.total_evaluations(),
                100.0 * (blind.total_evaluations() as f64 - synced.total_evaluations() as f64)
                    / blind.total_evaluations().max(1) as f64
            );
            if let Some(path) = &json_path {
                write_json_atomic(path, &synced.to_json_with_sync_baseline(&blind));
            }
        }
        (Some(sharded), None) => {
            let baseline = run(1, 0, false);
            print!("{baseline}");
            let report = run(sharded, sync_epochs, false);
            print!("{report}");
            if let Some(path) = &json_path {
                write_json_atomic(path, &report.to_json());
            }
            println!("shard speedup (1 -> {sharded} shards):");
            println!(
                "{:<22} {:>9} {:>9} {:>9} {:>10}",
                "function", "t1(s)", "tN(s)", "speedup", "coverage"
            );
            for (a, b) in baseline.results.iter().zip(&report.results) {
                let (Some(a), Some(b)) = (a.report.as_ref(), b.report.as_ref()) else {
                    continue;
                };
                let t1 = a.wall_time.as_secs_f64();
                let tn = b.wall_time.as_secs_f64();
                println!(
                    "{:<22} {:>9.3} {:>9.3} {:>8.2}x {:>9.1}%",
                    b.program,
                    t1,
                    tn,
                    if tn > 0.0 { t1 / tn } else { f64::INFINITY },
                    b.branch_coverage_percent(),
                );
                // Monotonicity only holds for full-budget, sync-off runs: a
                // deadline can cut the two runs at different points, and a
                // synced shard minimizes against a larger snapshot than the
                // blind run's, so its trajectory is not comparable.
                if budget.is_none() && sync_epochs == 0 {
                    assert!(
                        b.coverage.covered_count() >= a.coverage.covered_count(),
                        "{}: sharding lost coverage ({} < {})",
                        b.program,
                        b.coverage.covered_count(),
                        a.coverage.covered_count()
                    );
                }
            }
            let t1 = baseline.wall_time.as_secs_f64();
            let tn = report.wall_time.as_secs_f64();
            let speedup = if tn > 0.0 { t1 / tn } else { f64::INFINITY };
            println!(
                "{:<22} {:>9.3} {:>9.3} {:>8.2}x",
                "campaign", t1, tn, speedup
            );
            // The wall-clock speedup depends on how loaded the machine is,
            // so it is printed always but asserted only when the caller
            // opts in (CI sets COVERME_ASSERT_SPEEDUP=1 on a step that has
            // the runner to itself).
            if std::env::var_os("COVERME_ASSERT_SPEEDUP").is_some_and(|v| v == "1") {
                assert!(
                    speedup > 1.0,
                    "sharding {sharded} ways did not speed the campaign up \
                     ({t1:.3}s -> {tn:.3}s)"
                );
            }
        }
        (Some(_), Some(_)) => unreachable!("rejected above"),
    }
}
