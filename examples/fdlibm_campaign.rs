//! Run a parallel CoverMe campaign over the Fdlibm benchmark suite — the
//! workload the paper's introduction motivates (s_tanh.c is its running
//! example) — and print a per-function coverage table plus the suite
//! aggregate (a mini version of Table 2).
//!
//! The campaign schedules one work unit per (function, shard) pair: with
//! `--shards 1` (the default) that is one CoverMe search per function; with
//! `--shards N` each function's `n_start` budget additionally splits across
//! N shard units whose saturation snapshots are merged, so a heavy trailing
//! function (`pow`, 114 branches) fans out over idle workers instead of
//! serializing on one thread. Searches are deterministic per `(seed,
//! shards)`: the same seed produces the same table regardless of the worker
//! count.
//!
//! ```text
//! cargo run --release --example fdlibm_campaign [options] [names...]
//!   --workers N          worker threads (default: auto, at least 2)
//!   --shards N           shards per function (default 1 = unsharded)
//!   --compare-shards N   run unsharded then with N shards and print the
//!                        per-function wall-clock speedup
//!   --budget SECS        wall-clock budget; unstarted functions are skipped
//!   --n-start N          starting points per function (default 80)
//!   --seed S             campaign master seed (default 42)
//!   --json PATH          also write the CampaignReport as JSON to PATH
//!                        (per-function coverage, evals, cache hits and
//!                        evals/sec — the artifact the nightly CI job and
//!                        the BENCH_campaign.json perf snapshot store);
//!                        with --compare-shards the sharded run is written
//!   names...             benchmark names (default: the full 40-function suite)
//! ```

use std::time::Duration;

use coverme::{Campaign, CampaignConfig, CampaignReport, CoverMeConfig};
use coverme_fdlibm::{all, by_name};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workers = 0usize; // 0 = auto (>= 2)
    let mut shards = 1usize;
    let mut compare_shards: Option<usize> = None;
    let mut budget: Option<Duration> = None;
    let mut n_start = 80usize;
    let mut seed = 42u64;
    let mut json_path: Option<String> = None;
    let mut names: Vec<String> = Vec::new();

    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut value_for = |flag: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--workers" => workers = value_for("--workers").parse().expect("--workers N"),
            "--shards" => shards = value_for("--shards").parse().expect("--shards N"),
            "--compare-shards" => {
                compare_shards =
                    Some(value_for("--compare-shards").parse().expect("--compare-shards N"));
            }
            "--budget" => {
                let secs: f64 = value_for("--budget").parse().expect("--budget SECS");
                budget = Some(Duration::from_secs_f64(secs));
            }
            "--n-start" => n_start = value_for("--n-start").parse().expect("--n-start N"),
            "--seed" => seed = value_for("--seed").parse().expect("--seed S"),
            "--json" => json_path = Some(value_for("--json")),
            "--all" => {}
            other => names.push(other.to_string()),
        }
    }

    let inventory = if names.is_empty() {
        all()
    } else {
        names
            .iter()
            .map(|name| by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}")))
            .collect()
    };

    let run = |shards: usize| -> CampaignReport {
        let mut config = CampaignConfig::new()
            .base(CoverMeConfig::default().n_start(n_start).seed(seed).shards(shards))
            .workers(workers);
        if let Some(budget) = budget {
            config = config.time_budget(budget);
        }
        let effective = config.effective_workers(inventory.len());
        println!(
            "campaign: {} functions, {} workers, {} shard(s)/function, \
             n_start = {n_start}, seed = {seed}",
            inventory.len(),
            effective,
            shards.max(1),
        );
        Campaign::new(config).run(&inventory)
    };

    let write_json = |report: &CampaignReport| {
        if let Some(path) = &json_path {
            std::fs::write(path, report.to_json())
                .unwrap_or_else(|error| panic!("cannot write {path}: {error}"));
            println!("wrote {path}");
        }
    };

    match compare_shards {
        None => {
            let report = run(shards);
            print!("{report}");
            write_json(&report);
        }
        Some(sharded) => {
            let baseline = run(1);
            print!("{baseline}");
            let report = run(sharded);
            print!("{report}");
            write_json(&report);
            println!("shard speedup (1 -> {sharded} shards):");
            println!(
                "{:<22} {:>9} {:>9} {:>9} {:>10}",
                "function", "t1(s)", "tN(s)", "speedup", "coverage"
            );
            for (a, b) in baseline.results.iter().zip(&report.results) {
                let (Some(a), Some(b)) = (a.report.as_ref(), b.report.as_ref()) else {
                    continue;
                };
                let t1 = a.wall_time.as_secs_f64();
                let tn = b.wall_time.as_secs_f64();
                println!(
                    "{:<22} {:>9.3} {:>9.3} {:>8.2}x {:>9.1}%",
                    b.program,
                    t1,
                    tn,
                    if tn > 0.0 { t1 / tn } else { f64::INFINITY },
                    b.branch_coverage_percent(),
                );
                // Monotonicity only holds for full-budget runs; a deadline
                // can cut the two runs at different points.
                if budget.is_none() {
                    assert!(
                        b.coverage.covered_count() >= a.coverage.covered_count(),
                        "{}: sharding lost coverage ({} < {})",
                        b.program,
                        b.coverage.covered_count(),
                        a.coverage.covered_count()
                    );
                }
            }
            let t1 = baseline.wall_time.as_secs_f64();
            let tn = report.wall_time.as_secs_f64();
            println!(
                "{:<22} {:>9.3} {:>9.3} {:>8.2}x",
                "campaign",
                t1,
                tn,
                if tn > 0.0 { t1 / tn } else { f64::INFINITY }
            );
        }
    }
}
