//! Run a parallel CoverMe campaign over the Fdlibm benchmark suite — the
//! workload the paper's introduction motivates (s_tanh.c is its running
//! example) — and print a per-function coverage table plus the suite
//! aggregate (a mini version of Table 2).
//!
//! The campaign schedules one work unit per (function, shard) pair: with
//! `--shards 1` (the default) that is one CoverMe search per function; with
//! `--shards N` each function's `n_start` budget additionally splits across
//! N shard units whose saturation snapshots are merged, so a heavy trailing
//! function (`pow`, 114 branches) fans out over idle workers instead of
//! serializing on one thread. Searches are deterministic per `(seed,
//! shards)`: the same seed produces the same table regardless of the worker
//! count.
//!
//! ```text
//! cargo run --release --example fdlibm_campaign [options] [names...]
//!   --workers N          worker threads (default: auto, at least 2)
//!   --shards N           shards per function (default 1 = unsharded)
//!   --compare-shards N   run unsharded then with N shards and print the
//!                        per-function wall-clock speedup
//!   --budget SECS        wall-clock budget; unstarted functions are skipped
//!   --n-start N          starting points per function (default 80)
//!   --seed S             campaign master seed (default 42)
//!   --local METHOD       local minimizer: powell (default), nm, compass, none
//!   --json PATH          also write the CampaignReport as JSON to PATH
//!                        (per-function coverage, evals, cache hits and
//!                        evals/sec — the artifact the nightly CI job and
//!                        the BENCH_campaign.json perf snapshot store);
//!                        with --compare-shards the sharded run is written
//!   names...             benchmark names (default: the full 40-function suite)
//! ```
//!
//! Unknown flags and flags missing their value abort with a usage message
//! (exit 2) rather than being misread as benchmark names.

use std::time::Duration;

use coverme::{Campaign, CampaignConfig, CampaignReport, CoverMeConfig, LocalMethod};
use coverme_fdlibm::{all, by_name};

const USAGE: &str = "\
usage: cargo run --release --example fdlibm_campaign -- [options] [names...]
  --workers N          worker threads (default: auto, at least 2)
  --shards N           shards per function (default 1 = unsharded)
  --compare-shards N   run unsharded then with N shards and print the
                       per-function wall-clock speedup
  --budget SECS        wall-clock budget; unstarted functions are skipped
  --n-start N          starting points per function (default 80)
  --seed S             campaign master seed (default 42)
  --local METHOD       local minimizer: powell (default), nm, compass, none
  --json PATH          also write the CampaignReport as JSON to PATH
  --help               print this message
  names...             benchmark names (default: the full 40-function suite)";

/// Aborts with the usage text on stderr; exit code 2, the conventional
/// "bad invocation" status, so CI steps cannot misread a flag typo as a
/// campaign result.
fn usage_error(message: &str) -> ! {
    eprintln!("fdlibm_campaign: {message}\n{USAGE}");
    std::process::exit(2);
}

/// Parses a flag's value, aborting with a usage message on junk.
fn parsed_for<T: std::str::FromStr>(flag: &str, value: String) -> T {
    value
        .parse()
        .unwrap_or_else(|_| usage_error(&format!("{flag} got invalid value {value}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workers = 0usize; // 0 = auto (>= 2)
    let mut shards = 1usize;
    let mut compare_shards: Option<usize> = None;
    let mut budget: Option<Duration> = None;
    let mut n_start = 80usize;
    let mut seed = 42u64;
    let mut local_method = LocalMethod::Powell;
    let mut json_path: Option<String> = None;
    let mut names: Vec<String> = Vec::new();

    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        // A flag's value must be a real operand: the next argument, and not
        // another flag — `--json --shards` is a missing path, not a path.
        let mut value_for = |flag: &str| -> String {
            match iter.next() {
                Some(value) if !value.starts_with("--") => value,
                Some(value) => usage_error(&format!("{flag} needs a value, found flag {value}")),
                None => usage_error(&format!("{flag} needs a value")),
            }
        };
        match arg.as_str() {
            "--workers" => workers = parsed_for("--workers", value_for("--workers")),
            "--shards" => shards = parsed_for("--shards", value_for("--shards")),
            "--compare-shards" => {
                compare_shards = Some(parsed_for(
                    "--compare-shards",
                    value_for("--compare-shards"),
                ));
            }
            "--budget" => {
                let secs: f64 = parsed_for("--budget", value_for("--budget"));
                budget = Some(Duration::from_secs_f64(secs));
            }
            "--n-start" => n_start = parsed_for("--n-start", value_for("--n-start")),
            "--seed" => seed = parsed_for("--seed", value_for("--seed")),
            "--local" => {
                local_method = match value_for("--local").as_str() {
                    "powell" => LocalMethod::Powell,
                    "nm" | "nelder-mead" => LocalMethod::NelderMead,
                    "compass" => LocalMethod::Compass,
                    "none" => LocalMethod::None,
                    other => usage_error(&format!("--local got unknown method {other}")),
                };
            }
            "--json" => json_path = Some(value_for("--json")),
            "--all" => {}
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            // Anything else dash-prefixed is a flag typo, not a function
            // name; reject it instead of running a surprise campaign.
            flag if flag.starts_with('-') => usage_error(&format!("unknown flag {flag}")),
            name => names.push(name.to_string()),
        }
    }

    let inventory = if names.is_empty() {
        all()
    } else {
        names
            .iter()
            .map(|name| {
                by_name(name).unwrap_or_else(|| usage_error(&format!("unknown benchmark {name}")))
            })
            .collect()
    };

    let run = |shards: usize| -> CampaignReport {
        let mut config = CampaignConfig::new()
            .base(
                CoverMeConfig::default()
                    .n_start(n_start)
                    .seed(seed)
                    .local_method(local_method)
                    .shards(shards),
            )
            .workers(workers);
        if let Some(budget) = budget {
            config = config.time_budget(budget);
        }
        let effective = config.effective_workers(inventory.len());
        println!(
            "campaign: {} functions, {} workers, {} shard(s)/function, \
             n_start = {n_start}, seed = {seed}",
            inventory.len(),
            effective,
            shards.max(1),
        );
        Campaign::new(config).run(&inventory)
    };

    let write_json = |report: &CampaignReport| {
        if let Some(path) = &json_path {
            std::fs::write(path, report.to_json())
                .unwrap_or_else(|error| panic!("cannot write {path}: {error}"));
            println!("wrote {path}");
        }
    };

    match compare_shards {
        None => {
            let report = run(shards);
            print!("{report}");
            write_json(&report);
        }
        Some(sharded) => {
            let baseline = run(1);
            print!("{baseline}");
            let report = run(sharded);
            print!("{report}");
            write_json(&report);
            println!("shard speedup (1 -> {sharded} shards):");
            println!(
                "{:<22} {:>9} {:>9} {:>9} {:>10}",
                "function", "t1(s)", "tN(s)", "speedup", "coverage"
            );
            for (a, b) in baseline.results.iter().zip(&report.results) {
                let (Some(a), Some(b)) = (a.report.as_ref(), b.report.as_ref()) else {
                    continue;
                };
                let t1 = a.wall_time.as_secs_f64();
                let tn = b.wall_time.as_secs_f64();
                println!(
                    "{:<22} {:>9.3} {:>9.3} {:>8.2}x {:>9.1}%",
                    b.program,
                    t1,
                    tn,
                    if tn > 0.0 { t1 / tn } else { f64::INFINITY },
                    b.branch_coverage_percent(),
                );
                // Monotonicity only holds for full-budget runs; a deadline
                // can cut the two runs at different points.
                if budget.is_none() {
                    assert!(
                        b.coverage.covered_count() >= a.coverage.covered_count(),
                        "{}: sharding lost coverage ({} < {})",
                        b.program,
                        b.coverage.covered_count(),
                        a.coverage.covered_count()
                    );
                }
            }
            let t1 = baseline.wall_time.as_secs_f64();
            let tn = report.wall_time.as_secs_f64();
            println!(
                "{:<22} {:>9.3} {:>9.3} {:>8.2}x",
                "campaign",
                t1,
                tn,
                if tn > 0.0 { t1 / tn } else { f64::INFINITY }
            );
        }
    }
}
