//! The paper's Fig. 3 pipeline on the mini-language front end: parse the
//! example program, instrument it (injecting `r = pen(...)`), print the
//! instrumented source, and saturate all branches by repeated minimization.
//!
//! Run with `cargo run --release --example paper_pipeline`.

use coverme::{CoverMe, CoverMeConfig};
use coverme_fpir::{check, compile, instrument, parse, pretty};

const SOURCE: &str = r#"
double square(double x) { return x * x; }
double foo(double x) {
    if (x <= 1.0) { x = x + 2.5; }
    double y = square(x);
    if (y == 4.0) { return 1.0; }
    return 0.0;
}
"#;

fn main() {
    // Step 1: the front end — parse, type-check, instrument.
    let module = check(parse(SOURCE).expect("parses")).expect("type-checks");
    let instrumented = instrument(module, "foo").expect("instruments");
    println!("=== FOO_I (instrumented program, pen assignments made explicit) ===");
    println!("{}", pretty::to_instrumented_source(&instrumented));

    // Step 2 + 3: the representing function is built and minimized by the
    // CoverMe driver; the compiled program plugs straight into it.
    let program = compile(SOURCE, "foo").expect("compiles");
    let report = CoverMe::new(CoverMeConfig::default().n_start(60).seed(3)).run(&program);
    println!("=== CoverMe on foo ===");
    println!("{report}");
    for round in report.rounds.iter().take(6) {
        println!(
            "round {}: minimum {:>10.4} with FOO_R = {:.3e} ({:?})",
            round.round, round.minimum[0], round.value, round.outcome
        );
    }
    println!("inputs: {:?}", report.inputs);
}
