//! The paper's Fig. 3 pipeline on the mini-language front end: parse the
//! example program, instrument it (injecting `r = pen(...)`), print the
//! instrumented source, and saturate all branches by repeated minimization.
//! A second stage feeds the driver a non-terminating program to show the
//! run-outcome taxonomy: evaluations that exhaust their fuel are counted,
//! excluded from coverage, and the search degrades instead of hanging.
//!
//! Run with `cargo run --release --example paper_pipeline`.

use coverme::{CoverMe, CoverMeConfig};
use coverme_fpir::{check, compile, instrument, parse, pretty};

const SOURCE: &str = r#"
double square(double x) { return x * x; }
double foo(double x) {
    if (x <= 1.0) { x = x + 2.5; }
    double y = square(x);
    if (y == 4.0) { return 1.0; }
    return 0.0;
}
"#;

fn main() {
    // Step 1: the front end — parse, type-check, instrument.
    let module = check(parse(SOURCE).expect("parses")).expect("type-checks");
    let instrumented = instrument(module, "foo").expect("instruments");
    println!("=== FOO_I (instrumented program, pen assignments made explicit) ===");
    println!("{}", pretty::to_instrumented_source(&instrumented));

    // Step 2 + 3: the representing function is built and minimized by the
    // CoverMe driver; the compiled program plugs straight into it.
    let program = compile(SOURCE, "foo").expect("compiles");
    let report = CoverMe::new(CoverMeConfig::default().with_n_start(60).with_seed(3)).run(&program);
    println!("=== CoverMe on foo ===");
    println!("{report}");
    for round in report.rounds.iter().take(6) {
        println!(
            "round {}: minimum {:>10.4} with FOO_R = {:.3e} ({:?})",
            round.round, round.minimum[0], round.value, round.outcome
        );
    }
    println!("inputs: {:?}", report.inputs);
    println!(
        "aborted evaluations: {} ({} timeouts, {} traps)",
        report.aborted_evaluations(),
        report.timeouts,
        report.traps
    );

    // Step 4: what happens when FOO doesn't halt. Every execution of the
    // loop below burns its interpreter fuel; the run is classified
    // `Timeout`, its truncated coverage is discarded, and after a bounded
    // streak of aborted rounds the driver gives up on the function rather
    // than spinning forever.
    let spinner = compile(
        r#"
        double spinner(double x) {
            if (x > 100.0) { return x; }
            while (x < 1000.0) { x = x * 1.0; }
            return x;
        }
        "#,
        "spinner",
    )
    .expect("compiles")
    .with_fuel(50_000);
    let report = CoverMe::new(CoverMeConfig::default().with_n_start(40).with_seed(3)).run(&spinner);
    println!("=== CoverMe on a non-terminating program ===");
    println!("{report}");
    println!(
        "aborted evaluations: {} ({} timeouts, {} traps) — coverage above \
         comes only from completed runs",
        report.aborted_evaluations(),
        report.timeouts,
        report.traps
    );
}
