//! Quickstart: test a hand-written floating-point function with CoverMe.
//!
//! Run with `cargo run --release --example quickstart`.

use coverme::{CoverMe, CoverMeConfig};
use coverme_runtime::{Cmp, ExecCtx, FnProgram, Program};

fn main() {
    // A small function with an easy branch, a nested hard branch, and an
    // exact-equality branch that random testing essentially never hits.
    let program = FnProgram::new("quickstart", 2, 3, |input: &[f64], ctx: &mut ExecCtx| {
        let (x, y) = (input[0], input[1]);
        if ctx.branch(0, Cmp::Gt, x, 0.0) && ctx.branch(1, Cmp::Lt, x * x + y * y, 1.0) {
            // inside the upper half of the unit disc
        }
        if ctx.branch(2, Cmp::Eq, x + y, 42.0) {
            // requires an exact relation between the two inputs
        }
    });

    let report =
        CoverMe::new(CoverMeConfig::default().with_n_start(100).with_seed(7)).run(&program);

    println!("{report}");
    println!("branch coverage: {:.1}%", report.branch_coverage_percent());
    println!("generated test inputs:");
    for input in &report.inputs {
        println!("  {:?}", input);
    }

    // The generated inputs are ordinary test vectors: re-running the program
    // on them reproduces the coverage.
    let mut check = coverme_runtime::CoverageMap::new(program.num_sites());
    for input in &report.inputs {
        let mut ctx = ExecCtx::observe();
        program.execute(input, &mut ctx);
        check.record(&ctx);
    }
    println!(
        "re-executed the inputs: {:.1}% branch coverage confirmed",
        check.branch_coverage_percent()
    );
}
