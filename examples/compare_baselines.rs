//! Head-to-head comparison of CoverMe against the three baseline testers on
//! one benchmark function (default: s_tanh.c's tanh).
//!
//! Run with `cargo run --release --example compare_baselines [name]`.

use std::time::Duration;

use coverme::{CoverMe, CoverMeConfig};
use coverme_baselines::{
    AflConfig, AflFuzzer, AustinConfig, AustinTester, RandomConfig, RandomTester,
};
use coverme_fdlibm::by_name;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tanh".to_string());
    let b = by_name(&name).expect("unknown benchmark; try tanh, pow, erf, ...");

    let coverme = CoverMe::new(CoverMeConfig::default().with_n_start(80).with_seed(7)).run(&b);
    let budget = Some((coverme.wall_time * 10).max(Duration::from_millis(200)));

    let rand = RandomTester::new(RandomConfig {
        max_executions: 500_000,
        time_budget: budget,
        seed: 7,
        ..RandomConfig::default()
    })
    .run(&b);
    let afl = AflFuzzer::new(AflConfig {
        max_executions: 500_000,
        time_budget: budget,
        seed: 7,
        ..AflConfig::default()
    })
    .run(&b);
    let austin = AustinTester::new(AustinConfig {
        max_executions: 200_000,
        time_budget: Some(Duration::from_secs(2)),
        seed: 7,
        ..AustinConfig::default()
    })
    .run(&b);

    println!("benchmark: {} ({} branches)", b.name, 2 * b.sites);
    println!(
        "CoverMe : {:>6.1}%  in {:>8.3}s with {} inputs",
        coverme.branch_coverage_percent(),
        coverme.wall_time.as_secs_f64(),
        coverme.inputs.len()
    );
    for report in [&rand, &afl, &austin] {
        println!(
            "{:<8}: {:>6.1}%  in {:>8.3}s with {} executions",
            report.tester,
            report.branch_coverage_percent(),
            report.wall_time.as_secs_f64(),
            report.executions
        );
    }
}
