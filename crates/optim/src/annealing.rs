//! Simulated annealing.
//!
//! A classic Metropolis sampler with a geometric cooling schedule. CoverMe
//! itself uses Basinhopping, but the paper's Sect. 2 frames MCMC methods in
//! general as suitable backends; this implementation is used by the
//! ablation benchmarks to measure how much the local-minimization step inside
//! Basinhopping actually contributes.

use crate::derive_rng;
use crate::objective::{FnObjective, Objective};
use crate::result::{Minimum, OptimStats};
use crate::sampling::PerturbationKind;
use crate::sanitize_value;

/// Configuration and entry point for simulated annealing.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedAnnealing {
    /// Number of Metropolis steps.
    pub steps: usize,
    /// Initial temperature.
    pub initial_temperature: f64,
    /// Multiplicative cooling factor applied each step (in `(0, 1]`).
    pub cooling: f64,
    /// Proposal distribution.
    pub perturbation: PerturbationKind,
    /// Random seed.
    pub seed: u64,
    /// Optional early-stop threshold on the objective.
    pub target_value: Option<f64>,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            steps: 2000,
            initial_temperature: 1.0,
            cooling: 0.995,
            perturbation: PerturbationKind::Gaussian { stddev: 1.0 },
            seed: 0,
            target_value: None,
        }
    }
}

impl SimulatedAnnealing {
    /// Creates an annealer with default schedule parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of Metropolis steps.
    pub fn steps(mut self, steps: usize) -> Self {
        self.steps = steps;
        self
    }

    /// Sets the random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the proposal distribution.
    pub fn perturbation(mut self, perturbation: PerturbationKind) -> Self {
        self.perturbation = perturbation;
        self
    }

    /// Stops early once the objective value is `<= target`.
    pub fn target_value(mut self, target: f64) -> Self {
        self.target_value = Some(target);
        self
    }

    /// Minimizes `f` starting from `x0`.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty.
    pub fn minimize<F>(&self, f: &mut F, x0: &[f64]) -> Minimum
    where
        F: FnMut(&[f64]) -> f64,
    {
        self.minimize_objective(&mut FnObjective(f), x0)
    }

    /// Trait-based twin of [`minimize`](Self::minimize). A Metropolis chain
    /// is inherently sequential — each proposal is perturbed from the
    /// current state — so the scalar entry point is used throughout.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty.
    pub fn minimize_objective<O>(&self, f: &mut O, x0: &[f64]) -> Minimum
    where
        O: Objective + ?Sized,
    {
        assert!(
            !x0.is_empty(),
            "cannot minimize a zero-dimensional function"
        );
        let mut rng = derive_rng(self.seed, 0x00A2_2EA1);
        let dim = x0.len();
        let mut evals = 0usize;
        let eval = |f: &mut O, x: &[f64], evals: &mut usize| -> f64 {
            *evals += 1;
            sanitize_value(f.eval_scalar(x))
        };

        let mut current = x0.to_vec();
        let mut current_value = eval(f, &current, &mut evals);
        let mut best = current.clone();
        let mut best_value = current_value;
        let mut temperature = self.initial_temperature;
        let mut iterations = 0usize;

        for _ in 0..self.steps {
            iterations += 1;
            let delta = self.perturbation.sample(&mut rng, dim);
            let proposal: Vec<f64> = current.iter().zip(&delta).map(|(x, d)| x + d).collect();
            let proposal_value = eval(f, &proposal, &mut evals);

            let accept = if proposal_value < current_value {
                true
            } else {
                let m = rng.next_f64();
                m < ((current_value - proposal_value) / temperature.max(1e-300)).exp()
            };
            if accept {
                current = proposal;
                current_value = proposal_value;
                if current_value < best_value {
                    best_value = current_value;
                    best = current.clone();
                }
            }
            temperature *= self.cooling;
            if let Some(target) = self.target_value {
                if best_value <= target {
                    break;
                }
            }
        }

        Minimum {
            x: best,
            value: best_value,
            stats: OptimStats {
                evaluations: evals,
                iterations,
                converged: self.target_value.map(|t| best_value <= t).unwrap_or(false),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_sphere_objective() {
        let mut f = |p: &[f64]| p.iter().map(|x| x * x).sum::<f64>();
        let start = vec![8.0, -7.0];
        let f0 = f(&start);
        let m = SimulatedAnnealing::new().seed(1).minimize(&mut f, &start);
        assert!(m.value < f0 * 0.01, "no real progress: {}", m.value);
    }

    #[test]
    fn escapes_shallow_local_minimum_eventually() {
        let mut f = |p: &[f64]| {
            let x = p[0];
            ((x + 2.0).powi(2)) * ((x - 3.0).powi(2) + 0.5) / 10.0
        };
        let m = SimulatedAnnealing::new()
            .steps(20_000)
            .seed(3)
            .minimize(&mut f, &[3.0]);
        assert!(m.value < 0.05, "value {}", m.value);
    }

    #[test]
    fn early_stop_on_target() {
        let mut count = 0usize;
        let mut f = |p: &[f64]| {
            count += 1;
            if p[0] <= 1.0 {
                0.0
            } else {
                (p[0] - 1.0).powi(2)
            }
        };
        let m = SimulatedAnnealing::new()
            .steps(100_000)
            .target_value(0.0)
            .seed(5)
            .minimize(&mut f, &[0.5]);
        assert_eq!(m.value, 0.0);
        assert!(
            count < 10,
            "started at a zero point, should stop immediately"
        );
        assert!(m.stats.converged);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let run = || {
            let mut f = |p: &[f64]| (p[0] - 3.0).powi(2);
            SimulatedAnnealing::new().seed(9).minimize(&mut f, &[0.0])
        };
        assert_eq!(run().x, run().x);
    }

    #[test]
    #[should_panic(expected = "zero-dimensional")]
    fn rejects_empty_input() {
        let mut f = |_: &[f64]| 0.0;
        let _ = SimulatedAnnealing::new().minimize(&mut f, &[]);
    }
}
