//! Powell's direction-set method.
//!
//! This is the local minimizer the paper's CoverMe configuration uses
//! (`LM = "powell"`). It minimizes along a set of directions in turn,
//! replacing the direction of largest decrease with the overall displacement
//! after each sweep, which (for smooth functions) builds up a set of mutually
//! conjugate directions without any derivative information.

use crate::line_search::minimize_along_ray;
use crate::objective::{FnObjective, Objective};
use crate::result::{Minimum, OptimStats};
use crate::sanitize_value as sanitize;

/// Configuration and entry point for Powell's method.
#[derive(Debug, Clone, PartialEq)]
pub struct Powell {
    /// Initial step used when bracketing each line minimization.
    pub initial_step: f64,
    /// Relative tolerance on the decrease of the objective per sweep.
    pub f_tolerance: f64,
    /// Tolerance passed to the Brent line minimizer.
    pub line_tolerance: f64,
    /// Maximum number of direction-set sweeps.
    pub max_iterations: usize,
}

impl Default for Powell {
    fn default() -> Self {
        Powell {
            initial_step: 1.0,
            f_tolerance: 1e-10,
            line_tolerance: 1e-8,
            max_iterations: 60,
        }
    }
}

impl Powell {
    /// Creates a minimizer with default tolerances.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the initial bracketing step for line searches.
    pub fn initial_step(mut self, step: f64) -> Self {
        self.initial_step = step;
        self
    }

    /// Sets the sweep budget.
    pub fn max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Minimizes `f` starting from `x0`.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty.
    pub fn minimize<F>(&self, f: &mut F, x0: &[f64]) -> Minimum
    where
        F: FnMut(&[f64]) -> f64,
    {
        self.minimize_objective(&mut FnObjective(f), x0)
    }

    /// Trait-based twin of [`minimize`](Self::minimize): the sweep loop
    /// itself, written against the [`Objective`] protocol. Powell's method
    /// is inherently sequential — every line search depends on the previous
    /// one — so it uses the scalar entry point throughout; batch-capable
    /// engines still win here through their per-call fast path.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty.
    pub fn minimize_objective<O>(&self, f: &mut O, x0: &[f64]) -> Minimum
    where
        O: Objective + ?Sized,
    {
        assert!(
            !x0.is_empty(),
            "cannot minimize a zero-dimensional function"
        );
        let n = x0.len();
        let mut evals = 0usize;
        let mut point = x0.to_vec();
        let mut value = {
            evals += 1;
            sanitize(f.eval_scalar(&point))
        };

        // Direction set: initially the coordinate axes.
        let mut directions: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let mut d = vec![0.0; n];
                d[i] = 1.0;
                d
            })
            .collect();

        let mut iterations = 0usize;
        let mut converged = false;

        while iterations < self.max_iterations {
            iterations += 1;
            let start_point = point.clone();
            let start_value = value;
            let mut largest_decrease = 0.0_f64;
            let mut largest_decrease_index = 0usize;

            for (i, direction) in directions.iter().enumerate() {
                let before = value;
                let (new_point, new_value, line_evals) = self.line_minimize(f, &point, direction);
                evals += line_evals;
                if new_value < value {
                    point = new_point;
                    value = new_value;
                }
                let decrease = before - value;
                if decrease > largest_decrease {
                    largest_decrease = decrease;
                    largest_decrease_index = i;
                }
            }

            // Convergence: relative decrease over the whole sweep.
            let decrease = start_value - value;
            if 2.0 * decrease.abs() <= self.f_tolerance * (start_value.abs() + value.abs() + 1e-25)
            {
                converged = true;
                break;
            }

            // Direction update heuristic (Numerical Recipes §10.7): consider
            // replacing the direction of largest decrease with the total
            // displacement of this sweep.
            let displacement: Vec<f64> =
                point.iter().zip(&start_point).map(|(a, b)| a - b).collect();
            if norm(&displacement) < 1e-15 {
                converged = true;
                break;
            }
            let extrapolated: Vec<f64> = point
                .iter()
                .zip(&displacement)
                .map(|(p, d)| p + d)
                .collect();
            let f_extrapolated = {
                evals += 1;
                sanitize(f.eval_scalar(&extrapolated))
            };
            if f_extrapolated < start_value {
                let t = 2.0
                    * (start_value - 2.0 * value + f_extrapolated)
                    * (start_value - value - largest_decrease).powi(2)
                    - largest_decrease * (start_value - f_extrapolated).powi(2);
                if t < 0.0 {
                    let (new_point, new_value, line_evals) =
                        self.line_minimize(f, &point, &displacement);
                    evals += line_evals;
                    if new_value < value {
                        point = new_point;
                        value = new_value;
                    }
                    directions[largest_decrease_index] = directions.last().expect("n >= 1").clone();
                    let last = directions.len() - 1;
                    directions[last] = normalized(&displacement);
                }
            }
        }

        Minimum {
            x: point,
            value,
            stats: OptimStats {
                evaluations: evals,
                iterations,
                converged,
            },
        }
    }

    /// Minimizes `f` along the ray `t ↦ point + t·direction`.
    fn line_minimize<O>(
        &self,
        f: &mut O,
        point: &[f64],
        direction: &[f64],
    ) -> (Vec<f64>, f64, usize)
    where
        O: Objective + ?Sized,
    {
        minimize_along_ray(f, point, direction, self.initial_step, self.line_tolerance)
    }
}

fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

fn normalized(v: &[f64]) -> Vec<f64> {
    let n = norm(v);
    if n == 0.0 {
        v.to_vec()
    } else {
        v.iter().map(|x| x / n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_sphere() {
        let mut f = |p: &[f64]| p.iter().map(|x| x * x).sum::<f64>();
        let m = Powell::new().minimize(&mut f, &[3.0, -4.0, 5.0, 1.0]);
        assert!(m.value < 1e-10, "value {}", m.value);
    }

    #[test]
    fn minimizes_shifted_quadratic() {
        // The paper's Eq. (1) example: minimum at (3, 5).
        let mut f = |p: &[f64]| (p[0] - 3.0).powi(2) + (p[1] - 5.0).powi(2);
        let m = Powell::new().minimize(&mut f, &[-10.0, 40.0]);
        assert!((m.x[0] - 3.0).abs() < 1e-5);
        assert!((m.x[1] - 5.0).abs() < 1e-5);
    }

    #[test]
    fn minimizes_rosenbrock() {
        let mut f = |p: &[f64]| 100.0 * (p[1] - p[0] * p[0]).powi(2) + (1.0 - p[0]).powi(2);
        let m = Powell::new()
            .max_iterations(500)
            .minimize(&mut f, &[-1.2, 1.0]);
        assert!(m.value < 1e-8, "value {}", m.value);
    }

    #[test]
    fn handles_piecewise_flat_objective() {
        // Representing-function shape from the paper's Table 1 row 3:
        // 0 for x > 1, (x-1)^2 + eps otherwise.
        let eps = 1e-10;
        let mut f = |p: &[f64]| {
            if p[0] > 1.0 {
                0.0
            } else {
                (p[0] - 1.0).powi(2) + eps
            }
        };
        let m = Powell::new().minimize(&mut f, &[-6.0]);
        assert!(m.value <= eps, "value {}", m.value);
    }

    #[test]
    fn converges_flag_set_on_smooth_problem() {
        let mut f = |p: &[f64]| (p[0] + 2.0).powi(2);
        let m = Powell::new().minimize(&mut f, &[10.0]);
        assert!(m.stats.converged);
    }

    #[test]
    fn evaluation_count_is_tracked() {
        let mut count = 0usize;
        let mut f = |p: &[f64]| {
            count += 1;
            p[0] * p[0]
        };
        let m = Powell::new().minimize(&mut f, &[2.0]);
        assert_eq!(count, m.stats.evaluations);
    }

    #[test]
    #[should_panic(expected = "zero-dimensional")]
    fn rejects_empty_input() {
        let mut f = |_: &[f64]| 0.0;
        let _ = Powell::new().minimize(&mut f, &[]);
    }

    #[test]
    fn does_not_increase_objective() {
        let mut f = |p: &[f64]| (p[0] - 1.0).powi(2) * ((p[0] - 1.0).powi(2) + 0.7);
        let start = 25.0_f64;
        let f0 = f(&[start]);
        let m = Powell::new().minimize(&mut f, &[start]);
        assert!(m.value <= f0);
    }
}
