//! Unconstrained programming backends for CoverMe.
//!
//! The CoverMe algorithm (Fu & Su, PLDI 2017) reduces branch-coverage testing
//! to *unconstrained programming*: given an objective function
//! `f: R^n -> R`, find a point `x*` with `f(x*) <= f(x)` for all `x`.
//! The paper treats the minimization backend as a black box; its
//! implementation uses SciPy's Basinhopping (an MCMC sampler over local
//! minima) with Powell's method as the local minimizer.
//!
//! This crate reimplements that substrate from scratch:
//!
//! * [`basinhopping`] — the Basinhopping / Monte-Carlo-Markov-Chain global
//!   minimizer of Algorithm 1 (lines 24–34) of the paper,
//! * [`powell`] — Powell's direction-set method with Brent line search,
//! * [`nelder_mead`] — the Nelder–Mead simplex method,
//! * [`compass`] — compass (coordinate pattern) search,
//! * [`annealing`] — classic simulated annealing, used for ablations,
//! * [`multistart`] — a multi-start driver that restarts any local method
//!   from random points,
//! * [`line_search`] — 1-D bracketing, golden-section and Brent minimization
//!   used by Powell.
//!
//! All minimizers operate on plain `&[f64]` points and objectives speaking
//! the [`Objective`] protocol ([`objective`]): a scalar entry point plus a
//! batch entry point that evaluates a slice of candidates in one call, so
//! an evaluation engine can reuse its execution context and memoization
//! cache across calls. Bare `FnMut(&[f64]) -> f64` closures remain
//! first-class via [`FnObjective`] — every minimizer keeps a closure-based
//! `minimize` entry point that forwards to its trait-based
//! `minimize_objective` twin — so any representing function produced by the
//! `coverme` crate (or any other numeric function) can be plugged in.
//!
//! # Example
//!
//! ```
//! use coverme_optim::{BasinHopping, LocalMethod};
//!
//! // f(x, y) = (x - 3)^2 + (y - 5)^2, the running example of the paper (Eq. 1).
//! let mut f = |p: &[f64]| (p[0] - 3.0).powi(2) + (p[1] - 5.0).powi(2);
//! let result = BasinHopping::new()
//!     .local_method(LocalMethod::Powell)
//!     .iterations(5)
//!     .seed(42)
//!     .minimize(&mut f, &[0.0, 0.0]);
//! assert!(result.value < 1e-8);
//! assert!((result.x[0] - 3.0).abs() < 1e-4);
//! assert!((result.x[1] - 5.0).abs() < 1e-4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annealing;
pub mod basinhopping;
pub mod compass;
pub mod line_search;
pub mod multistart;
pub mod nelder_mead;
pub mod objective;
pub mod powell;
pub mod result;
pub mod rng;
pub mod sampling;

pub use annealing::SimulatedAnnealing;
pub use basinhopping::{BasinHopping, HopDecision, HopEvent};
pub use compass::CompassSearch;
pub use multistart::MultiStart;
pub use nelder_mead::NelderMead;
pub use objective::{FnObjective, Objective};
pub use powell::Powell;
pub use result::{Minimum, OptimStats};
pub use sampling::{PerturbationKind, StartingPointStrategy};

use crate::rng::SplitMix64;

/// Selects which local minimization algorithm a global method should use.
///
/// The paper's experiments set `LM = "powell"`; the other variants exist for
/// the local-minimizer ablation (`benches/ablation_local_minimizer.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LocalMethod {
    /// Powell's direction-set method with Brent line search (paper default).
    #[default]
    Powell,
    /// Nelder–Mead downhill simplex.
    NelderMead,
    /// Compass (coordinate pattern) search.
    Compass,
    /// No local refinement at all: the raw perturbed point is used.
    None,
}

impl LocalMethod {
    /// Runs the selected local minimizer on `f` starting from `x0`.
    ///
    /// Each method is run with its default options; construct the concrete
    /// structs ([`Powell`], [`NelderMead`], [`CompassSearch`]) directly for
    /// fine-grained control.
    pub fn minimize<F>(&self, f: &mut F, x0: &[f64]) -> Minimum
    where
        F: FnMut(&[f64]) -> f64,
    {
        self.minimize_objective(&mut FnObjective(f), x0)
    }

    /// Trait-based twin of [`minimize`](Self::minimize): runs the selected
    /// local minimizer on any [`Objective`].
    pub fn minimize_objective<O>(&self, f: &mut O, x0: &[f64]) -> Minimum
    where
        O: Objective + ?Sized,
    {
        match self {
            LocalMethod::Powell => Powell::new().minimize_objective(f, x0),
            LocalMethod::NelderMead => NelderMead::new().minimize_objective(f, x0),
            LocalMethod::Compass => CompassSearch::new().minimize_objective(f, x0),
            LocalMethod::None => {
                let value = f.eval_scalar(x0);
                Minimum {
                    x: x0.to_vec(),
                    value,
                    stats: OptimStats {
                        evaluations: 1,
                        iterations: 0,
                        converged: true,
                    },
                }
            }
        }
    }

    /// Human-readable name, used by benchmark harnesses when printing tables.
    pub fn name(&self) -> &'static str {
        match self {
            LocalMethod::Powell => "powell",
            LocalMethod::NelderMead => "nelder-mead",
            LocalMethod::Compass => "compass",
            LocalMethod::None => "none",
        }
    }
}

/// A deterministic pseudo-random source shared by the global methods.
///
/// All stochastic algorithms in this crate take an explicit `u64` seed so
/// that experiments are reproducible; this helper derives per-component
/// streams from one master seed.
pub(crate) fn derive_rng(seed: u64, stream: u64) -> SplitMix64 {
    SplitMix64::new(seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The crate-wide NaN policy: an undefined objective value is treated as
/// `+inf` so a single bad evaluation can never capture a search. Every
/// minimizer funnels objective values through this one helper.
pub(crate) fn sanitize_value(v: f64) -> f64 {
    if v.is_nan() {
        f64::INFINITY
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_method_names_are_stable() {
        assert_eq!(LocalMethod::Powell.name(), "powell");
        assert_eq!(LocalMethod::NelderMead.name(), "nelder-mead");
        assert_eq!(LocalMethod::Compass.name(), "compass");
        assert_eq!(LocalMethod::None.name(), "none");
    }

    #[test]
    fn local_method_none_evaluates_once() {
        let mut calls = 0;
        let mut f = |p: &[f64]| {
            calls += 1;
            p[0] * p[0]
        };
        let m = LocalMethod::None.minimize(&mut f, &[2.0]);
        assert_eq!(m.value, 4.0);
        assert_eq!(m.stats.evaluations, 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn default_local_method_is_powell() {
        assert_eq!(LocalMethod::default(), LocalMethod::Powell);
    }

    #[test]
    fn every_local_method_finds_quadratic_minimum() {
        for method in [
            LocalMethod::Powell,
            LocalMethod::NelderMead,
            LocalMethod::Compass,
        ] {
            let mut f = |p: &[f64]| (p[0] - 1.5).powi(2) + (p[1] + 2.0).powi(2);
            let m = method.minimize(&mut f, &[10.0, 10.0]);
            assert!(
                m.value < 1e-6,
                "{} failed: value {}",
                method.name(),
                m.value
            );
        }
    }
}
