//! Small deterministic pseudo-random number generators.
//!
//! The global minimizers need reproducible random streams (the paper's
//! evaluation fixes a configuration and reports deterministic-looking
//! results). We keep a tiny SplitMix64/xoshiro-style generator in-crate so
//! every algorithm can be seeded with a plain `u64` without pulling RNG
//! trait plumbing through the public API. The `rand` crate is still used by
//! higher layers (fuzzers, samplers) where distribution adapters help.

/// A SplitMix64 generator.
///
/// SplitMix64 passes BigCrush for the bit-mixing quality needed here and has
/// a one-word state, which makes seeding derived streams trivial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed value, including zero, is
    /// acceptable.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 raw pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo` is not strictly less than `hi` or either bound is not
    /// finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid uniform range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a standard normal deviate using the Box–Muller transform.
    pub fn gaussian(&mut self) -> f64 {
        // Avoid log(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Returns a uniformly chosen index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Forks a statistically independent child generator.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SplitMix64::new(12345);
        let mut b = SplitMix64::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams from different seeds look identical");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..10_000 {
            let v = rng.uniform(-3.0, 2.5);
            assert!((-3.0..2.5).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "invalid uniform range")]
    fn uniform_rejects_empty_range() {
        let mut rng = SplitMix64::new(1);
        let _ = rng.uniform(2.0, 2.0);
    }

    #[test]
    fn gaussian_has_plausible_moments() {
        let mut rng = SplitMix64::new(2024);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn index_stays_in_range() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..1000 {
            assert!(rng.index(7) < 7);
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SplitMix64::new(5);
        assert!(!(0..100).any(|_| rng.bernoulli(0.0)));
        assert!((0..100).all(|_| rng.bernoulli(1.0)));
    }

    #[test]
    fn fork_produces_distinct_stream() {
        let mut a = SplitMix64::new(77);
        let mut child = a.fork();
        let overlapping = (0..16).filter(|_| a.next_u64() == child.next_u64()).count();
        assert!(overlapping < 2);
    }
}
