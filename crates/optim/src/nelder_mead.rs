//! The Nelder–Mead downhill simplex method.
//!
//! A derivative-free local minimizer that maintains a simplex of `n + 1`
//! points in `R^n` and moves it through reflection, expansion, contraction
//! and shrink steps. It is less sample-efficient than Powell's method on
//! smooth objectives but copes better with the mildly discontinuous
//! representing functions produced by `pen` when a branch flips.

use crate::result::{Minimum, OptimStats};

/// Configuration and entry point for the Nelder–Mead simplex method.
#[derive(Debug, Clone, PartialEq)]
pub struct NelderMead {
    /// Reflection coefficient (`alpha`), conventionally `1.0`.
    pub alpha: f64,
    /// Expansion coefficient (`gamma`), conventionally `2.0`.
    pub gamma: f64,
    /// Contraction coefficient (`rho`), conventionally `0.5`.
    pub rho: f64,
    /// Shrink coefficient (`sigma`), conventionally `0.5`.
    pub sigma: f64,
    /// Edge length of the initial simplex relative to `max(1, |x0_i|)`.
    pub initial_step: f64,
    /// Convergence tolerance on the spread of objective values.
    pub f_tolerance: f64,
    /// Convergence tolerance on the simplex diameter.
    pub x_tolerance: f64,
    /// Maximum number of iterations before giving up.
    pub max_iterations: usize,
}

impl Default for NelderMead {
    fn default() -> Self {
        NelderMead {
            alpha: 1.0,
            gamma: 2.0,
            rho: 0.5,
            sigma: 0.5,
            initial_step: 0.1,
            f_tolerance: 1e-12,
            x_tolerance: 1e-10,
            max_iterations: 400,
        }
    }
}

impl NelderMead {
    /// Creates a minimizer with the conventional coefficient choices.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the relative edge length of the initial simplex.
    pub fn initial_step(mut self, step: f64) -> Self {
        self.initial_step = step;
        self
    }

    /// Sets the iteration budget.
    pub fn max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Minimizes `f` starting from `x0`.
    ///
    /// NaN objective values are treated as `+inf` so a single undefined
    /// evaluation cannot capture the simplex.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty.
    pub fn minimize<F>(&self, f: &mut F, x0: &[f64]) -> Minimum
    where
        F: FnMut(&[f64]) -> f64,
    {
        assert!(!x0.is_empty(), "cannot minimize a zero-dimensional function");
        let n = x0.len();
        let mut evals = 0usize;
        let eval = |f: &mut F, x: &[f64], evals: &mut usize| -> f64 {
            *evals += 1;
            let v = f(x);
            if v.is_nan() {
                f64::INFINITY
            } else {
                v
            }
        };

        // Initial simplex: x0 plus one perturbed vertex per dimension.
        let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        simplex.push(x0.to_vec());
        for i in 0..n {
            let mut v = x0.to_vec();
            let scale = self.initial_step * v[i].abs().max(1.0);
            v[i] += scale;
            simplex.push(v);
        }
        let mut values: Vec<f64> = simplex
            .iter()
            .map(|v| eval(f, v, &mut evals))
            .collect();

        let mut iterations = 0usize;
        let mut converged = false;
        while iterations < self.max_iterations {
            iterations += 1;

            // Order the simplex by objective value.
            let mut order: Vec<usize> = (0..=n).collect();
            order.sort_by(|&i, &j| values[i].partial_cmp(&values[j]).unwrap());
            let best = order[0];
            let worst = order[n];
            let second_worst = order[n - 1];

            // Convergence checks.
            let f_spread = values[worst] - values[best];
            let x_spread = simplex
                .iter()
                .map(|v| distance(v, &simplex[best]))
                .fold(0.0_f64, f64::max);
            if f_spread.abs() <= self.f_tolerance && x_spread <= self.x_tolerance {
                converged = true;
                break;
            }

            // Centroid of all vertices except the worst.
            let mut centroid = vec![0.0; n];
            for (idx, vertex) in simplex.iter().enumerate() {
                if idx == worst {
                    continue;
                }
                for (c, v) in centroid.iter_mut().zip(vertex) {
                    *c += v;
                }
            }
            for c in centroid.iter_mut() {
                *c /= n as f64;
            }

            // Reflection.
            let reflected = affine(&centroid, &simplex[worst], self.alpha);
            let f_reflected = eval(f, &reflected, &mut evals);

            if f_reflected < values[best] {
                // Expansion.
                let expanded = affine(&centroid, &simplex[worst], self.gamma);
                let f_expanded = eval(f, &expanded, &mut evals);
                if f_expanded < f_reflected {
                    simplex[worst] = expanded;
                    values[worst] = f_expanded;
                } else {
                    simplex[worst] = reflected;
                    values[worst] = f_reflected;
                }
            } else if f_reflected < values[second_worst] {
                simplex[worst] = reflected;
                values[worst] = f_reflected;
            } else {
                // Contraction (outside if the reflected point improved on the
                // worst vertex, inside otherwise).
                let (contracted, f_contracted) = if f_reflected < values[worst] {
                    let c = affine(&centroid, &simplex[worst], self.rho * self.alpha);
                    let fc = eval(f, &c, &mut evals);
                    (c, fc)
                } else {
                    let c = affine(&centroid, &simplex[worst], -self.rho);
                    let fc = eval(f, &c, &mut evals);
                    (c, fc)
                };
                if f_contracted < values[worst].min(f_reflected) {
                    simplex[worst] = contracted;
                    values[worst] = f_contracted;
                } else {
                    // Shrink towards the best vertex.
                    let best_vertex = simplex[best].clone();
                    for idx in 0..=n {
                        if idx == best {
                            continue;
                        }
                        for (v, b) in simplex[idx].iter_mut().zip(&best_vertex) {
                            *v = b + self.sigma * (*v - b);
                        }
                        values[idx] = eval(f, &simplex[idx], &mut evals);
                    }
                }
            }
        }

        let (best_idx, &best_value) = values
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
            .expect("simplex is never empty");
        Minimum {
            x: simplex[best_idx].clone(),
            value: best_value,
            stats: OptimStats {
                evaluations: evals,
                iterations,
                converged,
            },
        }
    }
}

fn affine(centroid: &[f64], vertex: &[f64], coefficient: f64) -> Vec<f64> {
    centroid
        .iter()
        .zip(vertex)
        .map(|(c, v)| c + coefficient * (c - v))
        .collect()
}

fn distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_sphere() {
        let mut f = |p: &[f64]| p.iter().map(|x| x * x).sum::<f64>();
        let m = NelderMead::new().minimize(&mut f, &[3.0, -4.0, 5.0]);
        assert!(m.value < 1e-8, "value {}", m.value);
        assert!(m.x.iter().all(|v| v.abs() < 1e-3));
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let mut f =
            |p: &[f64]| 100.0 * (p[1] - p[0] * p[0]).powi(2) + (1.0 - p[0]).powi(2);
        let m = NelderMead::new()
            .max_iterations(5000)
            .minimize(&mut f, &[-1.2, 1.0]);
        assert!(m.value < 1e-6, "value {}", m.value);
        assert!((m.x[0] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn handles_one_dimension() {
        let mut f = |p: &[f64]| (p[0] - 7.0).powi(2);
        let m = NelderMead::new().minimize(&mut f, &[0.0]);
        assert!((m.x[0] - 7.0).abs() < 1e-4);
    }

    #[test]
    fn reports_convergence_on_easy_problem() {
        let mut f = |p: &[f64]| p[0] * p[0];
        let m = NelderMead::new().minimize(&mut f, &[1.0]);
        assert!(m.stats.converged);
        assert!(m.stats.evaluations > 0);
    }

    #[test]
    fn respects_iteration_budget() {
        let mut f =
            |p: &[f64]| 100.0 * (p[1] - p[0] * p[0]).powi(2) + (1.0 - p[0]).powi(2);
        let m = NelderMead::new().max_iterations(3).minimize(&mut f, &[-1.2, 1.0]);
        assert!(m.stats.iterations <= 3);
        assert!(!m.stats.converged);
    }

    #[test]
    fn nan_regions_do_not_trap_the_simplex() {
        // NaN for x < 0, a parabola elsewhere.
        let mut f = |p: &[f64]| {
            if p[0] < 0.0 {
                f64::NAN
            } else {
                (p[0] - 2.0).powi(2)
            }
        };
        let m = NelderMead::new().minimize(&mut f, &[5.0]);
        assert!((m.x[0] - 2.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "zero-dimensional")]
    fn rejects_empty_input() {
        let mut f = |_: &[f64]| 0.0;
        let _ = NelderMead::new().minimize(&mut f, &[]);
    }

    #[test]
    fn piecewise_representing_function_shape() {
        // Shape of the paper's Table 1 row 2 objective:
        // ((x+1)^2-4)^2 for x <= 1, (x^2-4)^2 otherwise.
        let mut f = |p: &[f64]| {
            let x = p[0];
            if x <= 1.0 {
                ((x + 1.0).powi(2) - 4.0).powi(2)
            } else {
                (x * x - 4.0).powi(2)
            }
        };
        // From a start near a basin the simplex reaches one of the roots
        // {-3, 1, 2}.
        let m = NelderMead::new().minimize(&mut f, &[0.5]);
        assert!(m.value < 1e-8, "value {}", m.value);
    }
}
