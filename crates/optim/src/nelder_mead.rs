//! The Nelder–Mead downhill simplex method.
//!
//! A derivative-free local minimizer that maintains a simplex of `n + 1`
//! points in `R^n` and moves it through reflection, expansion, contraction
//! and shrink steps. It is less sample-efficient than Powell's method on
//! smooth objectives but copes better with the mildly discontinuous
//! representing functions produced by `pen` when a branch flips.
//!
//! Candidate generation is batch-friendly: the initial simplex (`n + 1`
//! vertices), the reflection/expansion probe pair of every iteration, and
//! the shrink step (`n` vertices) are each submitted through
//! [`Objective::eval_batch`] in one call, so a batch-capable engine
//! amortizes its per-evaluation setup. The reflected and expanded probes
//! are evaluated together even though the classic formulation only consults
//! the expansion when the reflection improves on the best vertex; the
//! decision tree uses exactly the classic comparisons, so the simplex
//! trajectory — and therefore the returned minimum — is identical, the
//! expansion value is simply discarded when unused.
//!
//! [`restarts`](NelderMead::restarts) goes one step further for
//! lane-parallel engines: `k` jittered starting simplices are generated
//! deterministically, **all** their vertices are evaluated in one batch
//! (`k·(n+1)` candidates — enough to fill lanes even in 1-D), and the
//! simplex holding the best vertex seeds the classic loop. With restarts
//! enabled (`k > 1`) the count is rounded **up** so the seed batch covers
//! a whole number of the engine's [`preferred_batch`] lanes — extra
//! deterministic simplices instead of idle lanes, and a wider ISA simply
//! seeds from more starts. The default (`1`) evaluates exactly the classic
//! starting simplex, bit for bit, on every engine.
//!
//! [`preferred_batch`]: Objective::preferred_batch

use crate::objective::{FnObjective, Objective};
use crate::result::{Minimum, OptimStats};
use crate::rng::SplitMix64;
use crate::sanitize_value as sanitize;

/// Configuration and entry point for the Nelder–Mead simplex method.
#[derive(Debug, Clone, PartialEq)]
pub struct NelderMead {
    /// Reflection coefficient (`alpha`), conventionally `1.0`.
    pub alpha: f64,
    /// Expansion coefficient (`gamma`), conventionally `2.0`.
    pub gamma: f64,
    /// Contraction coefficient (`rho`), conventionally `0.5`.
    pub rho: f64,
    /// Shrink coefficient (`sigma`), conventionally `0.5`.
    pub sigma: f64,
    /// Edge length of the initial simplex relative to `max(1, |x0_i|)`.
    pub initial_step: f64,
    /// Convergence tolerance on the spread of objective values.
    pub f_tolerance: f64,
    /// Convergence tolerance on the simplex diameter.
    pub x_tolerance: f64,
    /// Maximum number of iterations before giving up.
    pub max_iterations: usize,
    /// Number of jittered starting simplices generated and evaluated as one
    /// batch; the best-seeded simplex runs the classic loop. `1` (the
    /// default) is exactly the classic single-simplex start; any larger
    /// count is rounded up so the seed batch fills a whole number of
    /// [`Objective::preferred_batch`] lanes.
    pub restarts: usize,
}

impl Default for NelderMead {
    fn default() -> Self {
        NelderMead {
            alpha: 1.0,
            gamma: 2.0,
            rho: 0.5,
            sigma: 0.5,
            initial_step: 0.1,
            f_tolerance: 1e-12,
            x_tolerance: 1e-10,
            max_iterations: 400,
            restarts: 1,
        }
    }
}

impl NelderMead {
    /// Creates a minimizer with the conventional coefficient choices.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the relative edge length of the initial simplex.
    pub fn initial_step(mut self, step: f64) -> Self {
        self.initial_step = step;
        self
    }

    /// Sets the iteration budget.
    pub fn max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Sets the number of jittered starting simplices (candidate-set sizing
    /// for lane-parallel engines; `1` keeps the classic single start). The
    /// jitter is deterministic, so repeated runs are reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn restarts(mut self, count: usize) -> Self {
        assert!(count > 0, "at least one starting simplex is required");
        self.restarts = count;
        self
    }

    /// Minimizes `f` starting from `x0`.
    ///
    /// NaN objective values are treated as `+inf` so a single undefined
    /// evaluation cannot capture the simplex.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty.
    pub fn minimize<F>(&self, f: &mut F, x0: &[f64]) -> Minimum
    where
        F: FnMut(&[f64]) -> f64,
    {
        self.minimize_objective(&mut FnObjective(f), x0)
    }

    /// Trait-based twin of [`minimize`](Self::minimize); see the [module
    /// docs](self) for which candidate sets are submitted as batches.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty.
    pub fn minimize_objective<O>(&self, f: &mut O, x0: &[f64]) -> Minimum
    where
        O: Objective + ?Sized,
    {
        assert!(
            !x0.is_empty(),
            "cannot minimize a zero-dimensional function"
        );
        let n = x0.len();
        let mut evals = 0usize;
        let eval = |f: &mut O, x: &[f64], evals: &mut usize| -> f64 {
            *evals += 1;
            sanitize(f.eval_scalar(x))
        };
        let eval_batch = |f: &mut O, points: &[Vec<f64>], evals: &mut usize| -> Vec<f64> {
            *evals += points.len();
            let mut raw = Vec::new();
            f.eval_batch(points, &mut raw);
            raw.iter().map(|&v| sanitize(v)).collect()
        };

        // Starting simplices: the classic one (x0 plus one perturbed vertex
        // per dimension) first, then `restarts - 1` deterministically
        // jittered ones, all evaluated as a single batch of
        // `restarts · (n + 1)` candidates. With restarts enabled, round the
        // count up until that batch covers a whole number of the engine's
        // preferred-batch lanes — more deterministic seeds instead of idle
        // lanes. `restarts == 1` stays the classic start on every engine.
        let restarts = self.restarts.max(1);
        let restarts = if restarts > 1 && f.preferred_batch() > 1 {
            let lanes = f.preferred_batch();
            let vertices = (restarts * (n + 1)).div_ceil(lanes) * lanes;
            vertices.div_ceil(n + 1)
        } else {
            restarts
        };
        let build_simplex = |origin: &[f64], step_scale: f64| -> Vec<Vec<f64>> {
            let mut simplex = Vec::with_capacity(n + 1);
            simplex.push(origin.to_vec());
            for i in 0..n {
                let mut v = origin.to_vec();
                let scale = self.initial_step * step_scale * v[i].abs().max(1.0);
                v[i] += scale;
                simplex.push(v);
            }
            simplex
        };
        let mut candidates: Vec<Vec<f64>> = build_simplex(x0, 1.0);
        let mut rng = SplitMix64::new(0xC0FF_EE00_5EED ^ n as u64);
        for _ in 1..restarts {
            let mut origin = x0.to_vec();
            for v in origin.iter_mut() {
                let spread = self.initial_step * v.abs().max(1.0);
                *v += rng.uniform(-1.0, 1.0) * spread;
            }
            let step_scale = rng.uniform(0.5, 2.0);
            candidates.extend(build_simplex(&origin, step_scale));
        }
        let candidate_values = eval_batch(f, &candidates, &mut evals);
        // Seed the loop with the simplex holding the best vertex, ties to
        // the earliest — so `restarts == 1` is exactly the classic start.
        let mut best_group = 0;
        let mut best_seen = f64::INFINITY;
        for (group, chunk) in candidate_values.chunks(n + 1).enumerate() {
            let group_best = chunk.iter().copied().fold(f64::INFINITY, f64::min);
            if group_best < best_seen {
                best_seen = group_best;
                best_group = group;
            }
        }
        let start = best_group * (n + 1);
        let mut simplex: Vec<Vec<f64>> = candidates[start..start + n + 1].to_vec();
        let mut values: Vec<f64> = candidate_values[start..start + n + 1].to_vec();

        let mut iterations = 0usize;
        let mut converged = false;
        while iterations < self.max_iterations {
            iterations += 1;

            // Order the simplex by objective value.
            let mut order: Vec<usize> = (0..=n).collect();
            order.sort_by(|&i, &j| values[i].partial_cmp(&values[j]).unwrap());
            let best = order[0];
            let worst = order[n];
            let second_worst = order[n - 1];

            // Convergence checks.
            let f_spread = values[worst] - values[best];
            let x_spread = simplex
                .iter()
                .map(|v| distance(v, &simplex[best]))
                .fold(0.0_f64, f64::max);
            if f_spread.abs() <= self.f_tolerance && x_spread <= self.x_tolerance {
                converged = true;
                break;
            }

            // Centroid of all vertices except the worst.
            let mut centroid = vec![0.0; n];
            for (idx, vertex) in simplex.iter().enumerate() {
                if idx == worst {
                    continue;
                }
                for (c, v) in centroid.iter_mut().zip(vertex) {
                    *c += v;
                }
            }
            for c in centroid.iter_mut() {
                *c /= n as f64;
            }

            // Reflection and expansion probes, submitted as one batch. The
            // expansion value is only consulted when the reflection beats
            // the best vertex (the classic rule), so the trajectory is the
            // textbook one.
            let probes = vec![
                affine(&centroid, &simplex[worst], self.alpha),
                affine(&centroid, &simplex[worst], self.gamma),
            ];
            let probe_values = eval_batch(f, &probes, &mut evals);
            let mut probes = probes.into_iter();
            let (reflected, expanded) = (
                probes.next().expect("two probes"),
                probes.next().expect("two probes"),
            );
            let (f_reflected, f_expanded) = (probe_values[0], probe_values[1]);

            if f_reflected < values[best] {
                if f_expanded < f_reflected {
                    simplex[worst] = expanded;
                    values[worst] = f_expanded;
                } else {
                    simplex[worst] = reflected;
                    values[worst] = f_reflected;
                }
            } else if f_reflected < values[second_worst] {
                simplex[worst] = reflected;
                values[worst] = f_reflected;
            } else {
                // Contraction (outside if the reflected point improved on the
                // worst vertex, inside otherwise).
                let (contracted, f_contracted) = if f_reflected < values[worst] {
                    let c = affine(&centroid, &simplex[worst], self.rho * self.alpha);
                    let fc = eval(f, &c, &mut evals);
                    (c, fc)
                } else {
                    let c = affine(&centroid, &simplex[worst], -self.rho);
                    let fc = eval(f, &c, &mut evals);
                    (c, fc)
                };
                if f_contracted < values[worst].min(f_reflected) {
                    simplex[worst] = contracted;
                    values[worst] = f_contracted;
                } else {
                    // Shrink towards the best vertex: move the n non-best
                    // vertices, then evaluate them as one batch.
                    let best_vertex = simplex[best].clone();
                    let mut shrunk: Vec<Vec<f64>> = Vec::with_capacity(n);
                    for (idx, vertex) in simplex.iter_mut().enumerate() {
                        if idx == best {
                            continue;
                        }
                        for (v, b) in vertex.iter_mut().zip(&best_vertex) {
                            *v = b + self.sigma * (*v - b);
                        }
                        shrunk.push(vertex.clone());
                    }
                    let shrunk_values = eval_batch(f, &shrunk, &mut evals);
                    let mut shrunk_values = shrunk_values.into_iter();
                    for (idx, value) in values.iter_mut().enumerate() {
                        if idx == best {
                            continue;
                        }
                        *value = shrunk_values.next().expect("one value per vertex");
                    }
                }
            }
        }

        let (best_idx, &best_value) = values
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
            .expect("simplex is never empty");
        Minimum {
            x: simplex[best_idx].clone(),
            value: best_value,
            stats: OptimStats {
                evaluations: evals,
                iterations,
                converged,
            },
        }
    }
}

fn affine(centroid: &[f64], vertex: &[f64], coefficient: f64) -> Vec<f64> {
    centroid
        .iter()
        .zip(vertex)
        .map(|(c, v)| c + coefficient * (c - v))
        .collect()
}

fn distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_sphere() {
        let mut f = |p: &[f64]| p.iter().map(|x| x * x).sum::<f64>();
        let m = NelderMead::new().minimize(&mut f, &[3.0, -4.0, 5.0]);
        assert!(m.value < 1e-8, "value {}", m.value);
        assert!(m.x.iter().all(|v| v.abs() < 1e-3));
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let mut f = |p: &[f64]| 100.0 * (p[1] - p[0] * p[0]).powi(2) + (1.0 - p[0]).powi(2);
        let m = NelderMead::new()
            .max_iterations(5000)
            .minimize(&mut f, &[-1.2, 1.0]);
        assert!(m.value < 1e-6, "value {}", m.value);
        assert!((m.x[0] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn handles_one_dimension() {
        let mut f = |p: &[f64]| (p[0] - 7.0).powi(2);
        let m = NelderMead::new().minimize(&mut f, &[0.0]);
        assert!((m.x[0] - 7.0).abs() < 1e-4);
    }

    #[test]
    fn reports_convergence_on_easy_problem() {
        let mut f = |p: &[f64]| p[0] * p[0];
        let m = NelderMead::new().minimize(&mut f, &[1.0]);
        assert!(m.stats.converged);
        assert!(m.stats.evaluations > 0);
    }

    #[test]
    fn respects_iteration_budget() {
        let mut f = |p: &[f64]| 100.0 * (p[1] - p[0] * p[0]).powi(2) + (1.0 - p[0]).powi(2);
        let m = NelderMead::new()
            .max_iterations(3)
            .minimize(&mut f, &[-1.2, 1.0]);
        assert!(m.stats.iterations <= 3);
        assert!(!m.stats.converged);
    }

    #[test]
    fn nan_regions_do_not_trap_the_simplex() {
        // NaN for x < 0, a parabola elsewhere.
        let mut f = |p: &[f64]| {
            if p[0] < 0.0 {
                f64::NAN
            } else {
                (p[0] - 2.0).powi(2)
            }
        };
        let m = NelderMead::new().minimize(&mut f, &[5.0]);
        assert!((m.x[0] - 2.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "zero-dimensional")]
    fn rejects_empty_input() {
        let mut f = |_: &[f64]| 0.0;
        let _ = NelderMead::new().minimize(&mut f, &[]);
    }

    #[test]
    fn single_restart_matches_the_classic_start_bit_for_bit() {
        assert_eq!(NelderMead::default().restarts, 1);
        let f = |p: &[f64]| (p[0] + 1e16) - 1e16 + (p[0] - 3.0).powi(2);
        let mut a_f = f;
        let a = NelderMead::new().minimize(&mut a_f, &[0.5]);
        let mut b_f = f;
        let b = NelderMead::new().restarts(1).minimize(&mut b_f, &[0.5]);
        assert_eq!(a.x[0].to_bits(), b.x[0].to_bits());
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        assert_eq!(a.stats.evaluations, b.stats.evaluations);
    }

    #[test]
    fn batched_restarts_are_deterministic_and_escape_poor_seeds() {
        // A double well: the classic simplex from x0 = 4 converges into the
        // shallow right basin; jittered restarts can seed the deep one.
        let well = |p: &[f64]| {
            let x = p[0];
            ((x - 5.0).powi(2) + 0.5).min((x + 5.0).powi(2))
        };
        let mut a_f = well;
        let a = NelderMead::new().restarts(8).minimize(&mut a_f, &[4.0]);
        let mut b_f = well;
        let b = NelderMead::new().restarts(8).minimize(&mut b_f, &[4.0]);
        // Deterministic jitter: identical runs give identical results.
        assert_eq!(a.x[0].to_bits(), b.x[0].to_bits());
        assert_eq!(a.stats.evaluations, b.stats.evaluations);
        // The batch is charged for every restart vertex.
        let single = NelderMead::new().minimize(&mut { well }, &[4.0]);
        assert!(a.stats.evaluations > single.stats.evaluations);
    }

    #[test]
    #[should_panic(expected = "at least one starting simplex")]
    fn rejects_zero_restarts() {
        let _ = NelderMead::new().restarts(0);
    }

    #[test]
    fn restart_batch_rounds_up_to_fill_engine_lanes() {
        // On a 16-lane engine, restarts(3) in 1-D would seed 6 vertices;
        // the count rounds up to 8 restarts so the one-shot seed batch is
        // exactly 16. A single restart stays the classic 2-vertex start.
        struct Wide {
            first_batch_len: Option<usize>,
        }
        impl Objective for Wide {
            fn eval_scalar(&mut self, x: &[f64]) -> f64 {
                (x[0] - 3.0).powi(2)
            }
            fn eval_batch(&mut self, points: &[Vec<f64>], values: &mut Vec<f64>) {
                self.first_batch_len.get_or_insert(points.len());
                for p in points {
                    values.push(self.eval_scalar(p));
                }
            }
            fn preferred_batch(&self) -> usize {
                16
            }
        }
        let mut f = Wide {
            first_batch_len: None,
        };
        let m = NelderMead::new()
            .restarts(3)
            .minimize_objective(&mut f, &[0.5]);
        assert!(m.value < 1e-8);
        assert_eq!(f.first_batch_len, Some(16));

        let mut single = Wide {
            first_batch_len: None,
        };
        let _ = NelderMead::new().minimize_objective(&mut single, &[0.5]);
        assert_eq!(single.first_batch_len, Some(2));
    }

    #[test]
    fn piecewise_representing_function_shape() {
        // Shape of the paper's Table 1 row 2 objective:
        // ((x+1)^2-4)^2 for x <= 1, (x^2-4)^2 otherwise.
        let mut f = |p: &[f64]| {
            let x = p[0];
            if x <= 1.0 {
                ((x + 1.0).powi(2) - 4.0).powi(2)
            } else {
                (x * x - 4.0).powi(2)
            }
        };
        // From a start near a basin the simplex reaches one of the roots
        // {-3, 1, 2}.
        let m = NelderMead::new().minimize(&mut f, &[0.5]);
        assert!(m.value < 1e-8, "value {}", m.value);
    }
}
