//! Compass (coordinate pattern) search.
//!
//! A very simple derivative-free local minimizer: probe `x ± h·e_i` along
//! every coordinate axis, move to the best improving probe, and halve the
//! step when no probe improves. It converges slowly but makes no smoothness
//! assumptions at all, which makes it a useful ablation point against Powell
//! and Nelder–Mead on the piecewise-quadratic representing functions CoverMe
//! produces.
//!
//! The probe star of every sweep — all `2n` candidates — was always
//! evaluated unconditionally, so it is submitted as a single
//! [`Objective::eval_batch`] call: a batch-capable engine amortizes its
//! per-evaluation setup with zero change to which points are evaluated, in
//! which order, or which probe is selected.
//!
//! For low dimensions the classic star is small (`2` candidates in 1-D,
//! `4` in 2-D) — too small to fill the lanes of a data-parallel engine.
//! [`probe_scales`](CompassSearch::probe_scales) widens the star *freely*:
//! each sweep probes the same `2n` directions at `k` step scales
//! (`h, h/2, h/4, …`) in one batch, which both fills lanes and lets a
//! single sweep discover the contraction a classic search would need `k`
//! sweeps for. By default the scale count is keyed off the objective's
//! [`preferred_batch`](Objective::preferred_batch): `max(2, batch / 4)` —
//! `2` for scalar objectives and 8-lane engines (exactly the historical
//! default), `4` on a 16-lane AVX2 engine, so wider hardware gets a deeper
//! star instead of half-empty lanes. Set `probe_scales(1)` to recover the
//! textbook algorithm, bit for bit, or any explicit `k` to pin the star
//! regardless of the engine.

use crate::objective::{FnObjective, Objective};
use crate::result::{Minimum, OptimStats};
use crate::sanitize_value as sanitize;

/// Configuration and entry point for compass search.
#[derive(Debug, Clone, PartialEq)]
pub struct CompassSearch {
    /// Initial step size applied to every coordinate.
    pub initial_step: f64,
    /// The search stops when the step size drops below this threshold.
    pub min_step: f64,
    /// Step contraction factor applied after an unsuccessful sweep.
    pub contraction: f64,
    /// Step expansion factor applied after a successful sweep.
    pub expansion: f64,
    /// Maximum number of probe sweeps.
    pub max_iterations: usize,
    /// Number of step scales probed per sweep (`1` = the classic star; `k`
    /// probes `h·contraction^j` for `j < k`, all in one batch). `None`
    /// (the default) sizes the star off the objective's
    /// [`preferred_batch`](Objective::preferred_batch) as
    /// `max(2, batch / 4)`. See the [module docs](self).
    pub probe_scales: Option<usize>,
}

impl Default for CompassSearch {
    fn default() -> Self {
        CompassSearch {
            initial_step: 1.0,
            min_step: 1e-10,
            contraction: 0.5,
            expansion: 2.0,
            max_iterations: 2000,
            probe_scales: None,
        }
    }
}

impl CompassSearch {
    /// Creates a compass search with default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the initial probe step.
    pub fn initial_step(mut self, step: f64) -> Self {
        self.initial_step = step;
        self
    }

    /// Sets the sweep budget.
    pub fn max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Pins the number of step scales probed per sweep (candidate-set
    /// sizing for lane-parallel engines; `1` keeps the classic star),
    /// overriding the engine-width default.
    ///
    /// # Panics
    ///
    /// Panics if `scales` is zero.
    pub fn probe_scales(mut self, scales: usize) -> Self {
        assert!(scales > 0, "at least one probe scale is required");
        self.probe_scales = Some(scales);
        self
    }

    /// Minimizes `f` starting from `x0`.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty.
    pub fn minimize<F>(&self, f: &mut F, x0: &[f64]) -> Minimum
    where
        F: FnMut(&[f64]) -> f64,
    {
        self.minimize_objective(&mut FnObjective(f), x0)
    }

    /// Trait-based twin of [`minimize`](Self::minimize): every sweep's `2n`
    /// probe star goes through [`Objective::eval_batch`] in one call.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty.
    pub fn minimize_objective<O>(&self, f: &mut O, x0: &[f64]) -> Minimum
    where
        O: Objective + ?Sized,
    {
        assert!(
            !x0.is_empty(),
            "cannot minimize a zero-dimensional function"
        );
        let n = x0.len();
        let mut evals = 0usize;

        let mut point = x0.to_vec();
        let mut value = {
            evals += 1;
            sanitize(f.eval_scalar(&point))
        };
        // Auto scale count: key the star depth off the engine's lane width
        // so a wider SIMD ISA gets a deeper (lane-filling) star. `max(2, …)`
        // keeps scalar objectives and 8-lane engines on the historical
        // two-scale default.
        let scales = self
            .probe_scales
            .unwrap_or_else(|| (f.preferred_batch() / 4).max(2))
            .max(1);
        let mut step = self.initial_step;
        let mut iterations = 0usize;
        let mut converged = false;
        let mut probes: Vec<Vec<f64>> = Vec::with_capacity(2 * n * scales);
        let mut probe_values: Vec<f64> = Vec::with_capacity(2 * n * scales);

        while iterations < self.max_iterations {
            iterations += 1;
            // The probe star `x ± h·e_i` at every configured scale
            // (`h, h·c, h·c², …`), in the historical evaluation order
            // (+ before - per coordinate, coarsest scale first), evaluated
            // as one batch. With `probe_scales == 1` this is exactly the
            // classic single-scale star.
            probes.clear();
            let mut contracted_step = step;
            for _ in 0..scales {
                for i in 0..n {
                    for sign in [1.0, -1.0] {
                        let mut probe = point.clone();
                        probe[i] += sign * contracted_step;
                        probes.push(probe);
                    }
                }
                contracted_step *= self.contraction;
            }
            probe_values.clear();
            f.eval_batch(&probes, &mut probe_values);
            evals += probes.len();

            // First strictly-best improving probe, exactly as the scalar
            // loop selected it.
            let mut best_probe: Option<(usize, f64)> = None;
            for (index, &raw) in probe_values.iter().enumerate() {
                let pv = sanitize(raw);
                let improves_current = pv < value;
                let improves_best = best_probe.as_ref().map(|&(_, bv)| pv < bv).unwrap_or(true);
                if improves_current && improves_best {
                    best_probe = Some((index, pv));
                }
            }
            match best_probe {
                Some((index, pv)) => {
                    point.clone_from(&probes[index]);
                    value = pv;
                    // Expand from the scale that produced the winner, so a
                    // single-scale search keeps its classic step dynamics.
                    let winner_scale = index / (2 * n);
                    let mut winning_step = step;
                    for _ in 0..winner_scale {
                        winning_step *= self.contraction;
                    }
                    step = winning_step * self.expansion;
                }
                None => {
                    // Every probed scale failed; resume below the finest.
                    step = contracted_step;
                    if step < self.min_step {
                        converged = true;
                        break;
                    }
                }
            }
        }

        Minimum {
            x: point,
            value,
            stats: OptimStats {
                evaluations: evals,
                iterations,
                converged,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_sphere() {
        let mut f = |p: &[f64]| p.iter().map(|x| x * x).sum::<f64>();
        let m = CompassSearch::new().minimize(&mut f, &[2.0, -3.0]);
        assert!(m.value < 1e-8, "value {}", m.value);
    }

    #[test]
    fn minimizes_absolute_value_nonsmooth() {
        // |x - 2| + |y + 1| is non-smooth at the optimum; compass search
        // handles it without derivatives or interpolation.
        let mut f = |p: &[f64]| (p[0] - 2.0).abs() + (p[1] + 1.0).abs();
        let m = CompassSearch::new().minimize(&mut f, &[10.0, 10.0]);
        assert!(m.value < 1e-6, "value {}", m.value);
        assert!((m.x[0] - 2.0).abs() < 1e-6);
        assert!((m.x[1] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn handles_plateau_objective() {
        let mut f = |p: &[f64]| {
            if p[0] <= 1.0 {
                0.0
            } else {
                (p[0] - 1.0).powi(2)
            }
        };
        let m = CompassSearch::new().minimize(&mut f, &[8.0]);
        assert_eq!(m.value, 0.0);
    }

    #[test]
    fn converged_flag_and_eval_count() {
        let mut count = 0usize;
        let mut f = |p: &[f64]| {
            count += 1;
            (p[0] - 4.0).powi(2)
        };
        let m = CompassSearch::new().minimize(&mut f, &[0.0]);
        assert!(m.stats.converged);
        assert_eq!(m.stats.evaluations, count);
    }

    #[test]
    fn respects_iteration_budget() {
        let mut f = |p: &[f64]| (p[0] - 4.0).powi(2);
        let m = CompassSearch::new()
            .max_iterations(2)
            .minimize(&mut f, &[1000.0]);
        assert!(m.stats.iterations <= 2);
    }

    #[test]
    #[should_panic(expected = "zero-dimensional")]
    fn rejects_empty_input() {
        let mut f = |_: &[f64]| 0.0;
        let _ = CompassSearch::new().minimize(&mut f, &[]);
    }

    #[test]
    fn multi_scale_star_finds_the_same_minimum() {
        let mut classic_f = |p: &[f64]| (p[0] - 2.0).abs() + (p[1] + 1.0).abs();
        let classic = CompassSearch::new().minimize(&mut classic_f, &[10.0, 10.0]);
        let mut wide_f = |p: &[f64]| (p[0] - 2.0).abs() + (p[1] + 1.0).abs();
        let wide = CompassSearch::new()
            .probe_scales(2)
            .minimize(&mut wide_f, &[10.0, 10.0]);
        assert!(wide.value < 1e-6, "value {}", wide.value);
        assert!(classic.value < 1e-6);
        // The wider star spends fewer sweeps: each sweep covers two scales.
        assert!(wide.stats.iterations <= classic.stats.iterations);
    }

    #[test]
    fn default_star_is_two_scales_and_one_scale_stays_classic() {
        // The engine-keyed default resolves to the historical two-scale
        // star for plain closures; probe_scales(1) recovers the textbook
        // algorithm, which must find the same minimum.
        assert_eq!(CompassSearch::default().probe_scales, None);
        let mut classic_f = |p: &[f64]| (p[0] - 4.0).powi(2);
        let classic = CompassSearch::new()
            .probe_scales(1)
            .minimize(&mut classic_f, &[0.0]);
        let mut wide_f = |p: &[f64]| (p[0] - 4.0).powi(2);
        let wide = CompassSearch::new().minimize(&mut wide_f, &[0.0]);
        assert!(classic.value < 1e-8);
        assert!(wide.value < 1e-8);
        // Each two-scale sweep covers what two classic sweeps would.
        assert!(wide.stats.iterations <= classic.stats.iterations);
    }

    #[test]
    #[should_panic(expected = "at least one probe scale")]
    fn rejects_zero_probe_scales() {
        let _ = CompassSearch::new().probe_scales(0);
    }

    #[test]
    fn auto_star_depth_tracks_the_engine_lane_width() {
        // A wide-lane engine gets a deeper star (preferred_batch 16 -> 4
        // scales: each sweep's 1-D star is 2·1·4 = 8 probes), narrow and
        // scalar engines keep the historical 2 scales. The star size is
        // visible through the first sweep's eval count.
        struct Counting {
            batch: usize,
            first_batch_len: Option<usize>,
        }
        impl Objective for Counting {
            fn eval_scalar(&mut self, x: &[f64]) -> f64 {
                (x[0] - 4.0).powi(2)
            }
            fn eval_batch(&mut self, points: &[Vec<f64>], values: &mut Vec<f64>) {
                self.first_batch_len.get_or_insert(points.len());
                for p in points {
                    values.push(self.eval_scalar(p));
                }
            }
            fn preferred_batch(&self) -> usize {
                self.batch
            }
        }
        for (batch, scales) in [(1, 2), (8, 2), (16, 4)] {
            let mut f = Counting {
                batch,
                first_batch_len: None,
            };
            let m = CompassSearch::new().minimize_objective(&mut f, &[0.0]);
            assert!(m.value < 1e-8);
            assert_eq!(f.first_batch_len, Some(2 * scales));
        }
    }
}
