//! Result types shared by every minimizer in this crate.

/// Bookkeeping counters produced by a minimization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimStats {
    /// Number of objective-function evaluations performed.
    pub evaluations: usize,
    /// Number of outer iterations of the algorithm (meaning depends on the
    /// algorithm: simplex reflections, Powell sweeps, Monte-Carlo hops, …).
    pub iterations: usize,
    /// Whether the algorithm's own convergence criterion was met, as opposed
    /// to stopping because an iteration or evaluation budget ran out.
    pub converged: bool,
}

impl OptimStats {
    /// Merges two statistic records by summing counters.
    ///
    /// `converged` is the logical OR of the two — a composite algorithm (such
    /// as Basinhopping) converged if any of its phases did.
    pub fn merge(self, other: OptimStats) -> OptimStats {
        OptimStats {
            evaluations: self.evaluations + other.evaluations,
            iterations: self.iterations + other.iterations,
            converged: self.converged || other.converged,
        }
    }
}

/// A candidate minimum point returned by a minimizer.
///
/// The point is *claimed* to be a minimum: local methods return local minima,
/// global methods return the best point found within their budget. CoverMe
/// only trusts a point after re-evaluating the representing function on it
/// (`FOO_R(x*) == 0`), exactly as the paper's Algorithm 1 (line 11) does.
#[derive(Debug, Clone, PartialEq)]
pub struct Minimum {
    /// The minimizing input.
    pub x: Vec<f64>,
    /// The objective value at [`Minimum::x`].
    pub value: f64,
    /// Counters describing how much work was performed.
    pub stats: OptimStats,
}

impl Minimum {
    /// Creates a result with zeroed statistics. Mostly useful in tests.
    pub fn new(x: Vec<f64>, value: f64) -> Self {
        Minimum {
            x,
            value,
            stats: OptimStats::default(),
        }
    }

    /// Returns the better (lower objective value) of `self` and `other`,
    /// merging their statistics so evaluation counts are not lost.
    ///
    /// Ties are resolved in favour of `self`, and NaN objective values always
    /// lose so that a single bad evaluation cannot poison a search.
    pub fn better_of(self, other: Minimum) -> Minimum {
        let stats = self.stats.merge(other.stats);
        let self_is_nan = self.value.is_nan();
        let other_is_nan = other.value.is_nan();
        let mut chosen = match (self_is_nan, other_is_nan) {
            (true, false) => other,
            (false, true) => self,
            _ => {
                if other.value < self.value {
                    other
                } else {
                    self
                }
            }
        };
        chosen.stats = stats;
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters() {
        let a = OptimStats {
            evaluations: 3,
            iterations: 1,
            converged: false,
        };
        let b = OptimStats {
            evaluations: 10,
            iterations: 4,
            converged: true,
        };
        let m = a.merge(b);
        assert_eq!(m.evaluations, 13);
        assert_eq!(m.iterations, 5);
        assert!(m.converged);
    }

    #[test]
    fn better_of_prefers_lower_value() {
        let a = Minimum::new(vec![1.0], 2.0);
        let b = Minimum::new(vec![3.0], 1.0);
        let best = a.better_of(b);
        assert_eq!(best.value, 1.0);
        assert_eq!(best.x, vec![3.0]);
    }

    #[test]
    fn better_of_keeps_self_on_tie() {
        let a = Minimum::new(vec![1.0], 2.0);
        let b = Minimum::new(vec![3.0], 2.0);
        let best = a.better_of(b);
        assert_eq!(best.x, vec![1.0]);
    }

    #[test]
    fn better_of_rejects_nan() {
        let a = Minimum::new(vec![1.0], f64::NAN);
        let b = Minimum::new(vec![3.0], 100.0);
        let best = a.better_of(b);
        assert_eq!(best.value, 100.0);

        let a = Minimum::new(vec![1.0], 100.0);
        let b = Minimum::new(vec![3.0], f64::NAN);
        let best = a.better_of(b);
        assert_eq!(best.value, 100.0);
    }

    #[test]
    fn better_of_merges_stats() {
        let mut a = Minimum::new(vec![1.0], 2.0);
        a.stats.evaluations = 7;
        let mut b = Minimum::new(vec![3.0], 1.0);
        b.stats.evaluations = 5;
        let best = a.better_of(b);
        assert_eq!(best.stats.evaluations, 12);
    }
}
