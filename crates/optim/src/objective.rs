//! The objective protocol shared by every minimizer in this crate.
//!
//! Historically the minimizers took bare `FnMut(&[f64]) -> f64` closures.
//! That protocol has no room for an evaluation engine that amortizes setup
//! across calls: a closure can only be asked for one value at a time, so a
//! caller that owns a reusable execution context, a memoization cache, or a
//! SIMD/parallel backend cannot expose any of it to the search loop.
//!
//! [`Objective`] is the richer protocol. It has two entry points:
//!
//! * [`eval_scalar`](Objective::eval_scalar) — one candidate, one value;
//!   the drop-in replacement for calling the closure;
//! * [`eval_batch`](Objective::eval_batch) — a slice of candidates
//!   evaluated in one call. Minimizers submit *unconditionally needed*
//!   candidate sets (a Nelder–Mead starting simplex, a compass-search probe
//!   star, a shrink step) through this seam, so an engine can amortize
//!   per-call setup — or, in the future, vectorize — without any change to
//!   the search logic. The default implementation simply loops over
//!   [`eval_scalar`](Objective::eval_scalar), which keeps plain closures
//!   working and guarantees that **batching never changes results**: the
//!   values produced are bit-for-bit the ones sequential evaluation yields,
//!   in the same order.
//!
//! Closures still work everywhere: every minimizer keeps its historical
//! `minimize` entry point, which wraps the closure in [`FnObjective`] and
//! forwards to the trait-based `minimize_objective`.

/// A minimization objective `f: R^n -> R`.
///
/// Implementations must be deterministic: evaluating the same point twice
/// (scalar or batched, in any grouping) must produce bit-identical values.
/// Every minimizer in this crate relies on that to keep its search
/// trajectory independent of how evaluations are grouped into batches.
pub trait Objective {
    /// Evaluates the objective at one point.
    fn eval_scalar(&mut self, x: &[f64]) -> f64;

    /// Evaluates the objective at every point of `points`, appending one
    /// value per point (in order) to `values`.
    ///
    /// `values` is *not* cleared: callers that reuse a buffer clear it
    /// themselves, callers that accumulate (e.g. an initial simplex built
    /// vertex-group by vertex-group) just keep extending.
    ///
    /// The default implementation loops over
    /// [`eval_scalar`](Objective::eval_scalar); engines override it to
    /// amortize per-evaluation setup. Overrides must preserve value
    /// semantics exactly (same values, same order) — the batch API is a
    /// throughput seam, never a semantic one.
    fn eval_batch(&mut self, points: &[Vec<f64>], values: &mut Vec<f64>) {
        values.reserve(points.len());
        for point in points {
            let value = self.eval_scalar(point);
            values.push(value);
        }
    }

    /// Batch-size granularity this objective evaluates most efficiently —
    /// the lane width of a data-parallel engine, `1` for plain scalar
    /// objectives (the default).
    ///
    /// This is a *hint*, never a semantic knob: minimizers may use it to
    /// size candidate sets they are free to size (a sampling chunk, a seed
    /// schedule slice) to a multiple of it, but sets whose cardinality the
    /// search algorithm owns (a simplex, a probe star) are submitted as-is,
    /// and results must not depend on the hint's value.
    fn preferred_batch(&self) -> usize {
        1
    }
}

/// Mutable references to objectives are objectives, so a caller can lend an
/// engine to a minimizer without giving it up.
impl<O: Objective + ?Sized> Objective for &mut O {
    fn eval_scalar(&mut self, x: &[f64]) -> f64 {
        (**self).eval_scalar(x)
    }

    fn eval_batch(&mut self, points: &[Vec<f64>], values: &mut Vec<f64>) {
        (**self).eval_batch(points, values)
    }

    fn preferred_batch(&self) -> usize {
        (**self).preferred_batch()
    }
}

/// Adapter turning an `FnMut(&[f64]) -> f64` closure into an [`Objective`].
///
/// This is what keeps the historical closure protocol alive: the
/// `minimize(f, x0)` entry points wrap `f` in `FnObjective` and forward to
/// the trait-based search loop.
#[derive(Debug, Clone)]
pub struct FnObjective<F>(pub F);

impl<F: FnMut(&[f64]) -> f64> Objective for FnObjective<F> {
    fn eval_scalar(&mut self, x: &[f64]) -> f64 {
        (self.0)(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_objective_wraps_closures() {
        let mut calls = 0usize;
        let mut objective = FnObjective(|x: &[f64]| {
            calls += 1;
            x[0] * 2.0
        });
        assert_eq!(objective.eval_scalar(&[3.0]), 6.0);
        let mut values = Vec::new();
        objective.eval_batch(&[vec![1.0], vec![2.0]], &mut values);
        assert_eq!(values, vec![2.0, 4.0]);
        assert_eq!(calls, 3);
    }

    #[test]
    fn default_batch_matches_scalar_bit_for_bit() {
        // A deliberately awkward objective (catastrophic cancellation) so
        // "equal" really means "bit-identical", not "approximately equal".
        let f = |x: &[f64]| (x[0] + 1e16) - 1e16 + x[0].sin();
        let points: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64 * 0.37 - 5.0]).collect();
        let mut a = FnObjective(f);
        let mut batched = Vec::new();
        a.eval_batch(&points, &mut batched);
        let mut b = FnObjective(f);
        for (point, value) in points.iter().zip(&batched) {
            assert_eq!(b.eval_scalar(point).to_bits(), value.to_bits());
        }
    }

    #[test]
    fn batch_appends_without_clearing() {
        let mut objective = FnObjective(|x: &[f64]| x[0]);
        let mut values = vec![9.0];
        objective.eval_batch(&[vec![1.0]], &mut values);
        assert_eq!(values, vec![9.0, 1.0]);
    }

    #[test]
    fn mutable_references_are_objectives() {
        fn takes_objective<O: Objective>(mut o: O) -> f64 {
            o.eval_scalar(&[2.0])
        }
        let mut objective = FnObjective(|x: &[f64]| x[0] + 1.0);
        assert_eq!(takes_objective(&mut objective), 3.0);
        // The original is still usable afterwards.
        assert_eq!(objective.eval_scalar(&[0.0]), 1.0);
    }
}
