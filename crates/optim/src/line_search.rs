//! One-dimensional minimization used by Powell's method.
//!
//! Powell's direction-set method repeatedly minimizes the objective along a
//! line `t ↦ f(x + t·d)`. This module provides the classic toolbox for that
//! inner problem: initial bracketing of a minimum ([`bracket`]),
//! golden-section search ([`golden_section`]) and Brent's method
//! ([`brent`]), which combines golden sections with parabolic interpolation.
//!
//! The implementations follow the standard formulations in *Numerical
//! Recipes* (Press et al.), which is also the reference the paper cites for
//! Powell's algorithm.
//!
//! The 1-D routines take plain `FnMut(f64) -> f64` closures — a line is one
//! dimensional no matter what protocol the surrounding search speaks — and
//! [`minimize_along_ray`] adapts them to the n-dimensional [`Objective`]
//! protocol: it owns the single scratch buffer that maps an abscissa `t` to
//! the point `x + t·d`, so callers like Powell's method never materialize
//! per-evaluation points.

use crate::objective::Objective;
use crate::sanitize_value;

/// A bracketing triple `(a, b, c)` with `a < b < c` (or `a > b > c`) and
/// `f(b) <= f(a)`, `f(b) <= f(c)`, guaranteeing that a minimum of a
/// continuous `f` lies between `a` and `c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bracket {
    /// Left edge of the bracket.
    pub a: f64,
    /// Interior point with the smallest known objective value.
    pub b: f64,
    /// Right edge of the bracket.
    pub c: f64,
    /// `f(a)`.
    pub fa: f64,
    /// `f(b)`.
    pub fb: f64,
    /// `f(c)`.
    pub fc: f64,
    /// Number of objective evaluations spent while bracketing.
    pub evaluations: usize,
}

/// Result of a one-dimensional minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineMinimum {
    /// Abscissa of the minimum.
    pub t: f64,
    /// Objective value at [`LineMinimum::t`].
    pub value: f64,
    /// Number of objective evaluations used.
    pub evaluations: usize,
}

/// Golden ratio constant used to grow brackets.
const GOLD: f64 = 1.618_033_988_749_895;
/// Maximum magnification allowed for a parabolic-fit step while bracketing.
const GLIMIT: f64 = 100.0;
/// Tiny value preventing division by zero in parabolic fits.
const TINY: f64 = 1.0e-20;

/// Brackets a minimum of `f` starting from the points `a` and `b`.
///
/// The routine walks downhill, magnifying its step by the golden ratio (with
/// optional parabolic extrapolation), until the function starts increasing.
/// If `f` keeps decreasing it gives up after `max_evals` evaluations and
/// returns the last triple it saw, which subsequent searches treat as a best
/// effort bracket.
pub fn bracket<F>(f: &mut F, a: f64, b: f64, max_evals: usize) -> Bracket
where
    F: FnMut(f64) -> f64,
{
    let mut evals = 0;
    let eval = |f: &mut F, t: f64, evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(t);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    };

    let (mut ax, mut bx) = (a, b);
    let mut fa = eval(f, ax, &mut evals);
    let mut fb = eval(f, bx, &mut evals);
    if fb > fa {
        std::mem::swap(&mut ax, &mut bx);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut cx = bx + GOLD * (bx - ax);
    let mut fc = eval(f, cx, &mut evals);

    while fb > fc && evals < max_evals {
        // Parabolic extrapolation from a, b, c.
        let r = (bx - ax) * (fb - fc);
        let q = (bx - cx) * (fb - fa);
        let denom = 2.0 * sign_preserving_max(q - r, TINY);
        let mut u = bx - ((bx - cx) * q - (bx - ax) * r) / denom;
        let ulim = bx + GLIMIT * (cx - bx);
        let fu;
        if (bx - u) * (u - cx) > 0.0 {
            // u is between b and c: try it.
            fu = eval(f, u, &mut evals);
            if fu < fc {
                // Minimum between b and c.
                return Bracket {
                    a: bx,
                    b: u,
                    c: cx,
                    fa: fb,
                    fb: fu,
                    fc,
                    evaluations: evals,
                };
            } else if fu > fb {
                // Minimum between a and u.
                return Bracket {
                    a: ax,
                    b: bx,
                    c: u,
                    fa,
                    fb,
                    fc: fu,
                    evaluations: evals,
                };
            }
            // Parabolic fit was useless; use default magnification.
            u = cx + GOLD * (cx - bx);
            let fu2 = eval(f, u, &mut evals);
            shift3(&mut ax, &mut bx, &mut cx, u);
            shift3(&mut fa, &mut fb, &mut fc, fu2);
            continue;
        } else if (cx - u) * (u - ulim) > 0.0 {
            // Fit is between c and the allowed limit.
            let fu_probe = eval(f, u, &mut evals);
            if fu_probe < fc {
                // Keep walking downhill: discard a, slide everything left and
                // take one more golden step past u.
                let unew = u + GOLD * (u - cx);
                let fnew = eval(f, unew, &mut evals);
                ax = cx;
                fa = fc;
                bx = u;
                fb = fu_probe;
                cx = unew;
                fc = fnew;
                continue;
            }
            fu = fu_probe;
        } else if (u - ulim) * (ulim - cx) >= 0.0 {
            // Limit the step to ulim.
            u = ulim;
            fu = eval(f, u, &mut evals);
        } else {
            // Reject the fit, use default magnification.
            u = cx + GOLD * (cx - bx);
            fu = eval(f, u, &mut evals);
        }
        shift3(&mut ax, &mut bx, &mut cx, u);
        shift3(&mut fa, &mut fb, &mut fc, fu);
    }

    Bracket {
        a: ax,
        b: bx,
        c: cx,
        fa,
        fb,
        fc,
        evaluations: evals,
    }
}

fn shift3(a: &mut f64, b: &mut f64, c: &mut f64, d: f64) {
    *a = *b;
    *b = *c;
    *c = d;
}

fn sign_preserving_max(value: f64, floor: f64) -> f64 {
    if value.abs() > floor {
        value
    } else if value >= 0.0 {
        floor
    } else {
        -floor
    }
}

/// Golden-section search inside a bracket.
///
/// Robust but linearly convergent; used as a fallback and in tests as a
/// reference implementation for [`brent`].
pub fn golden_section<F>(f: &mut F, bracket: &Bracket, tol: f64, max_iters: usize) -> LineMinimum
where
    F: FnMut(f64) -> f64,
{
    const R: f64 = 0.618_033_988_749_895;
    const C: f64 = 1.0 - R;

    let mut evals = 0;
    let (a, b) = (bracket.a.min(bracket.c), bracket.a.max(bracket.c));
    let mut x0 = a;
    let mut x3 = b;
    let (mut x1, mut x2);
    if (b - bracket.b).abs() > (bracket.b - a).abs() {
        x1 = bracket.b;
        x2 = bracket.b + C * (b - bracket.b);
    } else {
        x2 = bracket.b;
        x1 = bracket.b - C * (bracket.b - a);
    }
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    evals += 2;

    let mut iters = 0;
    while (x3 - x0).abs() > tol * (x1.abs() + x2.abs()).max(1e-12) && iters < max_iters {
        iters += 1;
        if f2 < f1 {
            x0 = x1;
            x1 = x2;
            x2 = R * x2 + C * x3;
            f1 = f2;
            f2 = f(x2);
        } else {
            x3 = x2;
            x2 = x1;
            x1 = R * x1 + C * x0;
            f2 = f1;
            f1 = f(x1);
        }
        evals += 1;
    }
    if f1 < f2 {
        LineMinimum {
            t: x1,
            value: f1,
            evaluations: evals,
        }
    } else {
        LineMinimum {
            t: x2,
            value: f2,
            evaluations: evals,
        }
    }
}

/// Brent's method: parabolic interpolation guarded by golden sections.
///
/// This is the line minimizer Powell's method uses. `tol` is a relative
/// tolerance on the abscissa; values around `1e-8` are appropriate for
/// double-precision objectives.
pub fn brent<F>(f: &mut F, bracket: &Bracket, tol: f64, max_iters: usize) -> LineMinimum
where
    F: FnMut(f64) -> f64,
{
    const CGOLD: f64 = 0.381_966_011_250_105;
    const ZEPS: f64 = 1.0e-18;

    let mut evals = 0;
    let mut a = bracket.a.min(bracket.c);
    let mut b = bracket.a.max(bracket.c);
    let mut x = bracket.b;
    let mut w = bracket.b;
    let mut v = bracket.b;
    let mut fx = bracket.fb;
    let mut fw = fx;
    let mut fv = fx;
    let mut d: f64 = 0.0;
    let mut e: f64 = 0.0;

    for _ in 0..max_iters {
        let xm = 0.5 * (a + b);
        let tol1 = tol * x.abs() + ZEPS;
        let tol2 = 2.0 * tol1;
        if (x - xm).abs() <= tol2 - 0.5 * (b - a) {
            return LineMinimum {
                t: x,
                value: fx,
                evaluations: evals,
            };
        }
        if e.abs() > tol1 {
            // Attempt a parabolic fit through x, v, w.
            let r = (x - w) * (fx - fv);
            let mut q = (x - v) * (fx - fw);
            let mut p = (x - v) * q - (x - w) * r;
            q = 2.0 * (q - r);
            if q > 0.0 {
                p = -p;
            }
            q = q.abs();
            let etemp = e;
            e = d;
            if p.abs() >= (0.5 * q * etemp).abs() || p <= q * (a - x) || p >= q * (b - x) {
                // Fit rejected: golden-section step into the larger segment.
                e = if x >= xm { a - x } else { b - x };
                d = CGOLD * e;
            } else {
                d = p / q;
                let u = x + d;
                if u - a < tol2 || b - u < tol2 {
                    d = tol1.copysign(xm - x);
                }
            }
        } else {
            e = if x >= xm { a - x } else { b - x };
            d = CGOLD * e;
        }
        let u = if d.abs() >= tol1 {
            x + d
        } else {
            x + tol1.copysign(d)
        };
        let fu = {
            evals += 1;
            let v = f(u);
            if v.is_nan() {
                f64::INFINITY
            } else {
                v
            }
        };
        if fu <= fx {
            if u >= x {
                a = x;
            } else {
                b = x;
            }
            shift3(&mut v, &mut w, &mut x, u);
            shift3(&mut fv, &mut fw, &mut fx, fu);
        } else {
            if u < x {
                a = u;
            } else {
                b = u;
            }
            if fu <= fw || w == x {
                v = w;
                fv = fw;
                w = u;
                fw = fu;
            } else if fu <= fv || v == x || v == w {
                v = u;
                fv = fu;
            }
        }
    }

    LineMinimum {
        t: x,
        value: fx,
        evaluations: evals,
    }
}

/// Convenience wrapper: bracket from `(0, step)` then run Brent.
///
/// This is the call Powell's method makes for each direction sweep.
pub fn minimize_along<F>(f: &mut F, step: f64, tol: f64) -> LineMinimum
where
    F: FnMut(f64) -> f64,
{
    let br = bracket(f, 0.0, step, 200);
    let mut result = brent(f, &br, tol, 100);
    result.evaluations += br.evaluations;
    // Guard: never return a point worse than the bracket's best interior point.
    if br.fb < result.value {
        result = LineMinimum {
            t: br.b,
            value: br.fb,
            evaluations: result.evaluations,
        };
    }
    result
}

/// Minimizes an [`Objective`] along the ray `t ↦ point + t·direction`.
///
/// Returns the minimizing point, its objective value, and the number of
/// objective evaluations spent. NaN objective values are treated as `+inf`
/// (as everywhere in this crate) so an undefined region cannot capture the
/// line search.
///
/// When the objective reports a lane width
/// ([`preferred_batch`](Objective::preferred_batch) `> 1`), the first
/// abscissae the bracketing walk will visit — `0`, `step`, the golden
/// ladder beyond it and the first swapped-orientation probe — are
/// evaluated *speculatively* as one batch before the classic search runs.
/// The search itself is unchanged: it consults the speculative values by
/// exact abscissa (bit-level match) and falls back to scalar evaluation
/// everywhere else, so the trajectory, the returned minimum and the
/// reported evaluation count are bit-identical to the unspeculated search;
/// the batch merely lets a lane-parallel engine compute the opening probes
/// at full width (and seed its memo) in a single dispatch.
pub fn minimize_along_ray<O>(
    f: &mut O,
    point: &[f64],
    direction: &[f64],
    step: f64,
    tol: f64,
) -> (Vec<f64>, f64, usize)
where
    O: Objective + ?Sized,
{
    let lanes = f.preferred_batch();
    let mut speculated: Vec<(u64, f64)> = Vec::new();
    if lanes > 1 {
        // The bracket's deterministic prefix: a = 0, b = step, then golden
        // magnifications c = b + GOLD·(b − a), … — plus the first probe of
        // the swapped orientation (taken when f(step) > f(0)).
        let mut ladder = Vec::with_capacity(lanes);
        ladder.push(0.0);
        ladder.push(step);
        ladder.push(-GOLD * step);
        let (mut prev, mut cur) = (0.0, step);
        while ladder.len() < lanes {
            let next = cur + GOLD * (cur - prev);
            ladder.push(next);
            prev = cur;
            cur = next;
        }
        ladder.truncate(lanes);
        let probes: Vec<Vec<f64>> = ladder
            .iter()
            .map(|&t| {
                point
                    .iter()
                    .zip(direction)
                    .map(|(p, d)| p + t * d)
                    .collect()
            })
            .collect();
        let mut raw = Vec::new();
        f.eval_batch(&probes, &mut raw);
        for (&t, &value) in ladder.iter().zip(&raw) {
            speculated.push((t.to_bits(), value));
        }
    }
    let mut scratch = point.to_vec();
    let mut g = |t: f64| {
        if let Some(&(_, value)) = speculated.iter().find(|&&(bits, _)| bits == t.to_bits()) {
            return sanitize_value(value);
        }
        for ((s, p), d) in scratch.iter_mut().zip(point).zip(direction) {
            *s = p + t * d;
        }
        sanitize_value(f.eval_scalar(&scratch))
    };
    let line = minimize_along(&mut g, step, tol);
    let new_point: Vec<f64> = point
        .iter()
        .zip(direction)
        .map(|(p, d)| p + line.t * d)
        .collect();
    (new_point, line.value, line.evaluations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;

    fn quad(t: f64) -> f64 {
        (t - 2.5).powi(2) + 1.0
    }

    #[test]
    fn bracket_encloses_minimum() {
        let mut f = quad;
        let br = bracket(&mut f, 0.0, 1.0, 100);
        let lo = br.a.min(br.c);
        let hi = br.a.max(br.c);
        assert!(lo <= 2.5 && 2.5 <= hi, "bracket [{lo}, {hi}] misses 2.5");
        assert!(br.fb <= br.fa && br.fb <= br.fc);
    }

    #[test]
    fn bracket_walks_downhill_from_the_right() {
        let mut f = quad;
        let br = bracket(&mut f, 10.0, 9.0, 100);
        let lo = br.a.min(br.c);
        let hi = br.a.max(br.c);
        assert!(lo <= 2.5 && 2.5 <= hi);
    }

    #[test]
    fn brent_finds_quadratic_minimum() {
        let mut f = quad;
        let br = bracket(&mut f, 0.0, 1.0, 100);
        let m = brent(&mut f, &br, 1e-10, 200);
        assert!((m.t - 2.5).abs() < 1e-6);
        assert!((m.value - 1.0).abs() < 1e-10);
    }

    #[test]
    fn golden_section_agrees_with_brent() {
        let mut f = |t: f64| (t + 4.0).powi(2) * ((t + 4.0).powi(2) + 0.3);
        let br = bracket(&mut f, 0.0, 1.0, 200);
        let g = golden_section(&mut f, &br, 1e-10, 500);
        let b = brent(&mut f, &br, 1e-10, 500);
        assert!((g.t - b.t).abs() < 1e-4, "golden {} vs brent {}", g.t, b.t);
    }

    #[test]
    fn brent_handles_flat_plateau() {
        // f is 0 for t <= 1 and grows afterwards: the minimum set is a ray.
        let mut f = |t: f64| if t <= 1.0 { 0.0 } else { (t - 1.0).powi(2) };
        let m = minimize_along(&mut f, 1.0, 1e-9);
        assert!(m.value <= 1e-12);
    }

    #[test]
    fn minimize_along_piecewise_objective() {
        // The Fig. 2(a) objective of the paper.
        let mut f = |t: f64| if t <= 1.0 { 0.0 } else { (t - 1.0).powi(2) };
        let m = minimize_along(&mut f, 0.5, 1e-9);
        assert_eq!(m.value, 0.0);

        // The Fig. 2(b) objective restricted to one basin.
        let mut g = |t: f64| {
            if t <= 1.0 {
                ((t + 1.0).powi(2) - 4.0).powi(2)
            } else {
                (t * t - 4.0).powi(2)
            }
        };
        let m = minimize_along(&mut g, 0.25, 1e-9);
        assert!(m.value < 1e-8, "value {}", m.value);
    }

    #[test]
    fn nan_objective_is_treated_as_infinite() {
        let mut f = |t: f64| if t < 0.0 { f64::NAN } else { (t - 1.0).powi(2) };
        let m = minimize_along(&mut f, 0.5, 1e-9);
        assert!((m.t - 1.0).abs() < 1e-4);
    }

    #[test]
    fn ray_minimization_matches_scalar_line_search() {
        // Minimizing f(x, y) = (x - 3)^2 + y^2 along the x axis from the
        // origin must land on the same abscissa the 1-D routine finds.
        let mut objective = FnObjective(|p: &[f64]| (p[0] - 3.0).powi(2) + p[1] * p[1]);
        let (point, value, evals) =
            minimize_along_ray(&mut objective, &[0.0, 0.0], &[1.0, 0.0], 1.0, 1e-9);
        let mut g = |t: f64| (t - 3.0).powi(2);
        let line = minimize_along(&mut g, 1.0, 1e-9);
        assert_eq!(point[0].to_bits(), line.t.to_bits());
        assert_eq!(point[1], 0.0);
        assert_eq!(value.to_bits(), line.value.to_bits());
        assert_eq!(evals, line.evaluations);
    }

    #[test]
    fn ray_minimization_treats_nan_as_infinite() {
        let mut objective = FnObjective(|p: &[f64]| {
            if p[0] < 0.0 {
                f64::NAN
            } else {
                (p[0] - 1.0).powi(2)
            }
        });
        let (point, value, _) = minimize_along_ray(&mut objective, &[4.0], &[-1.0], 0.5, 1e-9);
        assert!((point[0] - 1.0).abs() < 1e-4);
        assert!(value < 1e-6);
    }

    #[test]
    fn speculative_ray_search_is_bit_identical_to_scalar() {
        // An objective that advertises lanes: the speculative golden-ladder
        // batch must change nothing observable — same point, same value,
        // same reported evaluation count as a lane-less twin.
        struct Laned {
            batches: usize,
        }
        impl Objective for Laned {
            fn eval_scalar(&mut self, point: &[f64]) -> f64 {
                (point[0] - 3.0).powi(2) + (point[1] + 0.5).powi(4)
            }
            fn eval_batch(&mut self, points: &[Vec<f64>], out: &mut Vec<f64>) {
                self.batches += 1;
                for p in points {
                    let v = self.eval_scalar(p);
                    out.push(v);
                }
            }
            fn preferred_batch(&self) -> usize {
                8
            }
        }
        let mut laned = Laned { batches: 0 };
        let (point, value, evals) =
            minimize_along_ray(&mut laned, &[0.0, -0.5], &[1.0, 0.0], 1.0, 1e-9);
        // eval_batch is called once for the speculative ladder (the batches
        // counter includes its own recursion-free scalar fallbacks).
        assert!(laned.batches >= 1);
        let mut scalar = FnObjective(|p: &[f64]| (p[0] - 3.0).powi(2) + (p[1] + 0.5).powi(4));
        let (spoint, svalue, sevals) =
            minimize_along_ray(&mut scalar, &[0.0, -0.5], &[1.0, 0.0], 1.0, 1e-9);
        assert_eq!(point[0].to_bits(), spoint[0].to_bits());
        assert_eq!(point[1].to_bits(), spoint[1].to_bits());
        assert_eq!(value.to_bits(), svalue.to_bits());
        assert_eq!(evals, sevals);
    }

    #[test]
    fn speculative_ray_search_memoizes_nan_as_infinite() {
        // Speculated raw values flow through the same NaN sanitization as
        // scalar ones.
        struct NanLaned;
        impl Objective for NanLaned {
            fn eval_scalar(&mut self, point: &[f64]) -> f64 {
                if point[0] < 0.0 {
                    f64::NAN
                } else {
                    (point[0] - 1.0).powi(2)
                }
            }
            fn preferred_batch(&self) -> usize {
                4
            }
        }
        let mut laned = NanLaned;
        let (point, value, _) = minimize_along_ray(&mut laned, &[4.0], &[-1.0], 0.5, 1e-9);
        assert!((point[0] - 1.0).abs() < 1e-4);
        assert!(value < 1e-6);
    }

    #[test]
    fn minimize_along_counts_evaluations() {
        let mut count = 0usize;
        let mut f = |t: f64| {
            count += 1;
            (t - 3.0).powi(2)
        };
        let m = minimize_along(&mut f, 1.0, 1e-8);
        assert_eq!(count, m.evaluations);
    }
}
