//! Multi-start global minimization.
//!
//! The outer loop of the paper's Algorithm 1 (lines 8–12) launches MCMC from
//! `n_start` random starting points. This module packages that pattern so it
//! can be reused both by the CoverMe driver and on its own: run any
//! minimizer from repeated random starts, keep the best result, and stop as
//! soon as an optional target value is reached.

use crate::basinhopping::BasinHopping;
use crate::derive_rng;
use crate::objective::{FnObjective, Objective};
use crate::result::Minimum;
use crate::sampling::StartingPointStrategy;
use crate::LocalMethod;

/// A multi-start driver wrapping [`BasinHopping`].
#[derive(Debug, Clone, PartialEq)]
pub struct MultiStart {
    /// Number of starting points (`n_start` in Algorithm 1).
    pub starts: usize,
    /// Dimension of the search space.
    pub dimension: usize,
    /// How starting points are drawn.
    pub strategy: StartingPointStrategy,
    /// The inner global minimizer launched from every start.
    pub hopper: BasinHopping,
    /// Seed for drawing starting points (independent from the hopper's).
    pub seed: u64,
    /// Optional early-stop threshold on the objective value.
    pub target_value: Option<f64>,
}

impl MultiStart {
    /// Creates a multi-start driver for a `dimension`-dimensional problem.
    pub fn new(dimension: usize) -> Self {
        MultiStart {
            starts: 100,
            dimension,
            strategy: StartingPointStrategy::default(),
            hopper: BasinHopping::new(),
            seed: 0,
            target_value: None,
        }
    }

    /// Sets the number of random starts (`n_start`).
    pub fn starts(mut self, starts: usize) -> Self {
        self.starts = starts;
        self
    }

    /// Sets the starting-point sampling strategy.
    pub fn strategy(mut self, strategy: StartingPointStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the inner Basinhopping configuration.
    pub fn hopper(mut self, hopper: BasinHopping) -> Self {
        self.hopper = hopper;
        self
    }

    /// Sets the local method of the inner hopper (convenience).
    pub fn local_method(mut self, method: LocalMethod) -> Self {
        self.hopper = self.hopper.local_method(method);
        self
    }

    /// Sets the seed for drawing starting points.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Stops as soon as a start reaches an objective value `<= target`.
    pub fn target_value(mut self, target: f64) -> Self {
        self.target_value = Some(target);
        self.hopper = self.hopper.target_value(target);
        self
    }

    /// Minimizes `f` from repeated random starting points.
    ///
    /// # Panics
    ///
    /// Panics if the configured dimension is zero or `starts` is zero.
    pub fn minimize<F>(&self, f: &mut F) -> Minimum
    where
        F: FnMut(&[f64]) -> f64,
    {
        self.minimize_objective(&mut FnObjective(f))
    }

    /// Trait-based twin of [`minimize`](Self::minimize). The whole seed set
    /// is generated up front as one batch
    /// ([`StartingPointStrategy::sample_batch`]), so the candidate starting
    /// points exist before the first minimization — the shape a future
    /// speculative/parallel backend needs — while the early-stop semantics
    /// (and the points themselves) stay identical to sampling lazily.
    ///
    /// # Panics
    ///
    /// Panics if the configured dimension is zero or `starts` is zero.
    pub fn minimize_objective<O>(&self, f: &mut O) -> Minimum
    where
        O: Objective + ?Sized,
    {
        assert!(self.dimension > 0, "dimension must be positive");
        assert!(self.starts > 0, "at least one start is required");
        let mut rng = derive_rng(self.seed, 0x57A7);
        let seeds = self
            .strategy
            .sample_batch(&mut rng, self.dimension, self.starts);
        let mut best: Option<Minimum> = None;

        for (start_index, x0) in seeds.into_iter().enumerate() {
            let hopper = self
                .hopper
                .clone()
                .seed(self.hopper.seed ^ (start_index as u64) << 17);
            let result = hopper.minimize_objective(f, &x0);
            best = Some(match best {
                None => result,
                Some(current_best) => current_best.better_of(result),
            });
            if let (Some(target), Some(b)) = (self.target_value, best.as_ref()) {
                if b.value <= target {
                    break;
                }
            }
        }

        best.expect("at least one start was performed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::PerturbationKind;

    /// Rastrigin-like multi-modal function in 2D with global minimum 0 at the
    /// origin.
    fn rastrigin(p: &[f64]) -> f64 {
        p.iter()
            .map(|x| x * x - 10.0 * (2.0 * std::f64::consts::PI * x).cos() + 10.0)
            .sum()
    }

    #[test]
    fn finds_global_minimum_of_multimodal_function() {
        let mut f = rastrigin;
        let m = MultiStart::new(2)
            .starts(40)
            .strategy(StartingPointStrategy::UniformBox {
                lo: -5.12,
                hi: 5.12,
            })
            .hopper(
                BasinHopping::new()
                    .iterations(10)
                    .perturbation(PerturbationKind::Uniform { half_width: 1.0 }),
            )
            .seed(123)
            .minimize(&mut f);
        assert!(m.value < 1.0, "value {} at {:?}", m.value, m.x);
    }

    #[test]
    fn early_stop_reduces_work() {
        let mut evaluations = 0usize;
        let mut f = |p: &[f64]| {
            evaluations += 1;
            if p[0] <= 1.0 {
                0.0
            } else {
                (p[0] - 1.0).powi(2)
            }
        };
        let _ = MultiStart::new(1)
            .starts(500)
            .target_value(0.0)
            .seed(7)
            .minimize(&mut f);
        assert!(
            evaluations < 5000,
            "early stop did not kick in: {evaluations} evaluations"
        );
    }

    #[test]
    fn accumulates_statistics_across_starts() {
        let mut f = |p: &[f64]| (p[0] - 2.0).powi(2);
        let m = MultiStart::new(1).starts(3).seed(1).minimize(&mut f);
        assert!(m.stats.evaluations > 0);
        assert!((m.x[0] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let run = || {
            let mut f = rastrigin;
            MultiStart::new(2).starts(5).seed(11).minimize(&mut f)
        };
        let a = run();
        let b = run();
        assert_eq!(a.x, b.x);
        assert_eq!(a.value, b.value);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn rejects_zero_dimension() {
        let mut f = |_: &[f64]| 0.0;
        let _ = MultiStart::new(0).minimize(&mut f);
    }

    #[test]
    #[should_panic(expected = "at least one start")]
    fn rejects_zero_starts() {
        let mut f = |p: &[f64]| p[0];
        let _ = MultiStart::new(1).starts(0).minimize(&mut f);
    }
}
