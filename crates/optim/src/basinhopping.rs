//! Basinhopping: MCMC sampling over the space of local minima.
//!
//! This is a faithful implementation of the `MCMC(f, x)` procedure of the
//! paper's Algorithm 1 (lines 24–34), which in turn is the Basinhopping
//! algorithm of Leitner et al. used by SciPy:
//!
//! 1. locally minimize from the starting point (`x_L = LM(f, x)`),
//! 2. repeat `n_iter` times: perturb, locally minimize, and accept the new
//!    local minimum with the Metropolis rule
//!    `accept ⇔ f(x̃_L) < f(x_L)  ∨  m < exp((f(x_L) − f(x̃_L)) / T)`.
//!
//! A per-hop callback mirrors SciPy's `callback` argument, which CoverMe uses
//! to stop as soon as a minimum point that saturates a new branch is found.

use crate::derive_rng;
use crate::objective::{FnObjective, Objective};
use crate::result::Minimum;
use crate::sampling::PerturbationKind;
use crate::LocalMethod;

/// What the caller wants Basinhopping to do after observing a hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopDecision {
    /// Keep hopping.
    Continue,
    /// Stop immediately and return the best point seen so far. CoverMe issues
    /// this as soon as the representing function reaches zero.
    Stop,
}

/// Information passed to the per-hop callback.
#[derive(Debug, Clone, PartialEq)]
pub struct HopEvent<'a> {
    /// Index of the Monte-Carlo iteration (0-based; the initial local
    /// minimization is reported as iteration 0 before any hop).
    pub iteration: usize,
    /// The local minimum proposed in this iteration.
    pub proposal: &'a [f64],
    /// Objective value at the proposal.
    pub proposal_value: f64,
    /// Whether the Metropolis rule accepted the proposal.
    pub accepted: bool,
    /// Best objective value observed so far (including this proposal).
    pub best_value: f64,
}

/// The Basinhopping global minimizer.
#[derive(Debug, Clone, PartialEq)]
pub struct BasinHopping {
    /// Number of Monte-Carlo iterations (`n_iter` in Algorithm 1).
    pub iterations: usize,
    /// The local minimizer `LM`.
    pub local_method: LocalMethod,
    /// Distribution of the perturbation `δ`.
    pub perturbation: PerturbationKind,
    /// Metropolis annealing temperature `T` (the paper sets `T = 1`).
    pub temperature: f64,
    /// Seed for the Monte-Carlo moves.
    pub seed: u64,
    /// Stop as soon as the objective reaches this value (inclusive), if set.
    /// CoverMe sets this to `0.0` because the representing function is
    /// non-negative and `0` certifies a newly saturated branch.
    pub target_value: Option<f64>,
}

impl Default for BasinHopping {
    fn default() -> Self {
        BasinHopping {
            iterations: 5,
            local_method: LocalMethod::Powell,
            perturbation: PerturbationKind::default(),
            temperature: 1.0,
            seed: 0,
            target_value: None,
        }
    }
}

impl BasinHopping {
    /// Creates a Basinhopping minimizer with the paper's defaults
    /// (`n_iter = 5`, Powell local minimization, `T = 1`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of Monte-Carlo iterations (`n_iter`).
    pub fn iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets the local minimization method (`LM`).
    pub fn local_method(mut self, method: LocalMethod) -> Self {
        self.local_method = method;
        self
    }

    /// Sets the perturbation distribution for Monte-Carlo moves.
    pub fn perturbation(mut self, perturbation: PerturbationKind) -> Self {
        self.perturbation = perturbation;
        self
    }

    /// Sets the Metropolis temperature `T`.
    pub fn temperature(mut self, temperature: f64) -> Self {
        self.temperature = temperature;
        self
    }

    /// Sets the random seed driving the Monte-Carlo moves.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Stops early once the objective value is `<= target`.
    pub fn target_value(mut self, target: f64) -> Self {
        self.target_value = Some(target);
        self
    }

    /// Minimizes `f` starting from `x0` without a callback.
    pub fn minimize<F>(&self, f: &mut F, x0: &[f64]) -> Minimum
    where
        F: FnMut(&[f64]) -> f64,
    {
        self.minimize_with_callback(f, x0, |_| HopDecision::Continue)
    }

    /// Trait-based twin of [`minimize`](Self::minimize).
    pub fn minimize_objective<O>(&self, f: &mut O, x0: &[f64]) -> Minimum
    where
        O: Objective + ?Sized,
    {
        self.minimize_objective_with_callback(f, x0, |_| HopDecision::Continue)
    }

    /// Minimizes `f` starting from `x0`, invoking `callback` after the
    /// initial local minimization and after every Monte-Carlo hop.
    ///
    /// Returning [`HopDecision::Stop`] from the callback terminates the
    /// search immediately, mirroring the way CoverMe's backend terminates
    /// once all branches are saturated.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty.
    pub fn minimize_with_callback<F, C>(&self, f: &mut F, x0: &[f64], callback: C) -> Minimum
    where
        F: FnMut(&[f64]) -> f64,
        C: FnMut(&HopEvent<'_>) -> HopDecision,
    {
        self.minimize_objective_with_callback(&mut FnObjective(f), x0, callback)
    }

    /// Trait-based twin of
    /// [`minimize_with_callback`](Self::minimize_with_callback): the hop
    /// loop itself. The Markov chain is sequential — every hop perturbs the
    /// current local minimum — so candidates flow through the local method
    /// one at a time; batch-capable objectives still amortize inside the
    /// local minimizations.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty.
    pub fn minimize_objective_with_callback<O, C>(
        &self,
        f: &mut O,
        x0: &[f64],
        mut callback: C,
    ) -> Minimum
    where
        O: Objective + ?Sized,
        C: FnMut(&HopEvent<'_>) -> HopDecision,
    {
        assert!(
            !x0.is_empty(),
            "cannot minimize a zero-dimensional function"
        );
        let mut rng = derive_rng(self.seed, 0xB5_1A_55);
        let dim = x0.len();

        // Line 25: x_L = LM(f, x).
        let initial = self.local_method.minimize_objective(f, x0);
        let mut stats = initial.stats;
        let mut current = initial.x;
        let mut current_value = initial.value;
        let mut best = current.clone();
        let mut best_value = current_value;

        let initial_event = HopEvent {
            iteration: 0,
            proposal: &current,
            proposal_value: current_value,
            accepted: true,
            best_value,
        };
        if callback(&initial_event) == HopDecision::Stop || self.reached_target(best_value) {
            return Minimum {
                x: best,
                value: best_value,
                stats,
            };
        }

        // Lines 26-33.
        for iteration in 1..=self.iterations {
            stats.iterations += 1;

            // Line 27: a random perturbation from the predefined distribution.
            let delta = self.perturbation.sample(&mut rng, dim);
            let perturbed: Vec<f64> = current.iter().zip(&delta).map(|(x, d)| x + d).collect();

            // Line 28: local minimization of the perturbed point.
            let proposal = self.local_method.minimize_objective(f, &perturbed);
            stats.evaluations += proposal.stats.evaluations;

            // Lines 29-32: Metropolis acceptance.
            let accepted = if proposal.value < current_value {
                true
            } else {
                let m = rng.next_f64();
                let exponent = (current_value - proposal.value) / self.temperature.max(1e-300);
                m < exponent.exp()
            };

            if proposal.value < best_value {
                best_value = proposal.value;
                best = proposal.x.clone();
            }

            let event = HopEvent {
                iteration,
                proposal: &proposal.x,
                proposal_value: proposal.value,
                accepted,
                best_value,
            };
            let decision = callback(&event);

            // Line 33.
            if accepted {
                current = proposal.x;
                current_value = proposal.value;
            }

            if decision == HopDecision::Stop || self.reached_target(best_value) {
                break;
            }
        }

        stats.converged = self
            .target_value
            .map(|t| best_value <= t)
            .unwrap_or(stats.converged);
        Minimum {
            x: best,
            value: best_value,
            stats,
        }
    }

    fn reached_target(&self, value: f64) -> bool {
        self.target_value.map(|t| value <= t).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global-optimization example of Fig. 2(b) in the paper.
    fn fig2b(x: f64) -> f64 {
        if x <= 1.0 {
            ((x + 1.0).powi(2) - 4.0).powi(2)
        } else {
            (x * x - 4.0).powi(2)
        }
    }

    #[test]
    fn finds_global_minimum_of_fig2b() {
        let mut f = |p: &[f64]| fig2b(p[0]);
        let m = BasinHopping::new()
            .iterations(30)
            .seed(7)
            .minimize(&mut f, &[-8.0]);
        assert!(m.value < 1e-8, "value {} at {:?}", m.value, m.x);
        // The roots are x in {-3, 1, 2}.
        let x = m.x[0];
        assert!(
            (x + 3.0).abs() < 1e-3 || (x - 1.0).abs() < 1e-3 || (x - 2.0).abs() < 1e-3,
            "unexpected minimizer {x}"
        );
    }

    #[test]
    fn escapes_local_minimum_of_double_well() {
        // Double well with a shallow local minimum at x = 3 (value 1) and the
        // global minimum at x = -2 (value 0).
        let mut f = |p: &[f64]| {
            let x = p[0];
            ((x + 2.0).powi(2)) * ((x - 3.0).powi(2) + 1.0) / 10.0
        };
        let m = BasinHopping::new()
            .iterations(60)
            .perturbation(PerturbationKind::Uniform { half_width: 3.0 })
            .seed(11)
            .minimize(&mut f, &[3.0]);
        assert!((m.x[0] + 2.0).abs() < 1e-2, "stuck at {:?}", m.x);
    }

    #[test]
    fn respects_target_value_early_stop() {
        let mut count = 0usize;
        let mut f = |p: &[f64]| {
            count += 1;
            if p[0] <= 1.0 {
                0.0
            } else {
                (p[0] - 1.0).powi(2)
            }
        };
        let m = BasinHopping::new()
            .iterations(1000)
            .target_value(0.0)
            .seed(3)
            .minimize(&mut f, &[0.0]);
        assert_eq!(m.value, 0.0);
        // Early stop: far fewer evaluations than 1000 iterations would need.
        assert!(count < 2000, "no early stop: {count} evaluations");
        assert!(m.stats.converged);
    }

    #[test]
    fn callback_can_stop_the_search() {
        let mut f = |p: &[f64]| (p[0] - 5.0).powi(2);
        let mut hops = 0usize;
        let m = BasinHopping::new()
            .iterations(50)
            .seed(1)
            .minimize_with_callback(&mut f, &[0.0], |event| {
                hops += 1;
                if event.iteration >= 2 {
                    HopDecision::Stop
                } else {
                    HopDecision::Continue
                }
            });
        assert!(hops <= 4, "callback did not stop the search: {hops} hops");
        assert!(m.value < 1e-6);
    }

    #[test]
    fn callback_observes_monotone_best_value() {
        let mut f = |p: &[f64]| fig2b(p[0]);
        let mut last_best = f64::INFINITY;
        let _ = BasinHopping::new()
            .iterations(25)
            .seed(9)
            .minimize_with_callback(&mut f, &[10.0], |event| {
                assert!(event.best_value <= last_best + 1e-15);
                last_best = event.best_value;
                HopDecision::Continue
            });
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let run = |seed: u64| {
            let mut f = |p: &[f64]| fig2b(p[0]);
            BasinHopping::new()
                .iterations(10)
                .seed(seed)
                .minimize(&mut f, &[6.0])
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.x, b.x);
        assert_eq!(a.value, b.value);
        assert_eq!(a.stats.evaluations, b.stats.evaluations);
    }

    #[test]
    fn zero_iterations_is_just_local_minimization() {
        let mut f = |p: &[f64]| (p[0] - 2.0).powi(2);
        let m = BasinHopping::new().iterations(0).minimize(&mut f, &[0.0]);
        assert!((m.x[0] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn works_with_every_local_method() {
        for method in [
            LocalMethod::Powell,
            LocalMethod::NelderMead,
            LocalMethod::Compass,
            LocalMethod::None,
        ] {
            let mut f = |p: &[f64]| fig2b(p[0]);
            let m = BasinHopping::new()
                .iterations(40)
                .local_method(method)
                .perturbation(PerturbationKind::Uniform { half_width: 2.0 })
                .seed(5)
                .minimize(&mut f, &[-6.0]);
            assert!(
                m.value < 0.5,
                "{} made no progress: {}",
                method.name(),
                m.value
            );
        }
    }

    #[test]
    #[should_panic(expected = "zero-dimensional")]
    fn rejects_empty_input() {
        let mut f = |_: &[f64]| 0.0;
        let _ = BasinHopping::new().minimize(&mut f, &[]);
    }
}
