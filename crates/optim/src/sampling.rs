//! Sampling strategies for starting points and Monte-Carlo perturbations.
//!
//! Two pieces of the paper's Algorithm 1 are stochastic and configurable:
//!
//! * line 9 — "Randomly take a starting point x", and
//! * line 27 — "Let δ be a random perturbation generation from a predefined
//!   distribution".
//!
//! This module captures both as small strategy enums so that the CoverMe
//! driver (and its ablation benchmarks) can swap them without touching the
//! minimization algorithms.

use crate::rng::SplitMix64;

/// How Monte-Carlo perturbations `δ` are drawn during Basinhopping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PerturbationKind {
    /// Isotropic Gaussian with the given standard deviation.
    Gaussian {
        /// Standard deviation of each coordinate of `δ`.
        stddev: f64,
    },
    /// Uniform in `[-half_width, half_width]` per coordinate (this is what
    /// SciPy's basinhopping calls `stepsize`).
    Uniform {
        /// Half width of the sampling interval per coordinate.
        half_width: f64,
    },
    /// Heavy-tailed Cauchy-like perturbation: a Gaussian scaled by the
    /// inverse of another uniform draw. Occasionally takes very large hops,
    /// which helps escape wide flat regions of a representing function.
    HeavyTailed {
        /// Base scale of the perturbation.
        scale: f64,
    },
}

impl Default for PerturbationKind {
    fn default() -> Self {
        // SciPy's default stepsize is 0.5; CoverMe relies on the default.
        PerturbationKind::Uniform { half_width: 0.5 }
    }
}

impl PerturbationKind {
    /// Draws a perturbation vector of dimension `dim`.
    pub fn sample(&self, rng: &mut SplitMix64, dim: usize) -> Vec<f64> {
        (0..dim).map(|_| self.sample_scalar(rng)).collect()
    }

    /// Draws a single coordinate of the perturbation.
    pub fn sample_scalar(&self, rng: &mut SplitMix64) -> f64 {
        match *self {
            PerturbationKind::Gaussian { stddev } => rng.gaussian() * stddev,
            PerturbationKind::Uniform { half_width } => rng.uniform(-half_width, half_width),
            PerturbationKind::HeavyTailed { scale } => {
                let g = rng.gaussian();
                let u = rng.next_f64().max(1e-6);
                scale * g / u
            }
        }
    }

    /// Human readable name used by benchmark tables.
    pub fn name(&self) -> &'static str {
        match self {
            PerturbationKind::Gaussian { .. } => "gaussian",
            PerturbationKind::Uniform { .. } => "uniform",
            PerturbationKind::HeavyTailed { .. } => "heavy-tailed",
        }
    }
}

/// How starting points for each minimization round are chosen (Algorithm 1,
/// line 9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StartingPointStrategy {
    /// Uniform over a box `[lo, hi]^n`.
    UniformBox {
        /// Lower bound of every coordinate.
        lo: f64,
        /// Upper bound of every coordinate.
        hi: f64,
    },
    /// Standard Gaussian scaled by `scale`.
    Gaussian {
        /// Standard deviation of every coordinate.
        scale: f64,
    },
    /// Reinterpret uniformly random 64-bit patterns as doubles, filtering out
    /// NaN/inf. This reaches the far exponent ranges (including subnormals)
    /// that uniform boxes never touch; the paper's Sect. D attributes some of
    /// CoverMe's missed branches to the backend never producing subnormals,
    /// so this strategy exists to quantify that effect.
    BitPattern,
    /// Always start at the origin (useful for deterministic tests).
    Origin,
}

impl Default for StartingPointStrategy {
    fn default() -> Self {
        StartingPointStrategy::UniformBox {
            lo: -100.0,
            hi: 100.0,
        }
    }
}

impl StartingPointStrategy {
    /// Draws a starting point of dimension `dim`.
    pub fn sample(&self, rng: &mut SplitMix64, dim: usize) -> Vec<f64> {
        (0..dim).map(|_| self.sample_scalar(rng)).collect()
    }

    /// Draws `count` starting points in one call — the batch counterpart of
    /// [`sample`](Self::sample), used by schedule builders (multistart
    /// seeds, a sharded search's shared starting-point schedule) that want
    /// the whole candidate set up front. Consumes exactly the draws `count`
    /// sequential [`sample`](Self::sample) calls would, so the generated
    /// points are bit-identical to sampling one at a time.
    pub fn sample_batch(&self, rng: &mut SplitMix64, dim: usize, count: usize) -> Vec<Vec<f64>> {
        (0..count).map(|_| self.sample(rng, dim)).collect()
    }

    fn sample_scalar(&self, rng: &mut SplitMix64) -> f64 {
        match *self {
            StartingPointStrategy::UniformBox { lo, hi } => rng.uniform(lo, hi),
            StartingPointStrategy::Gaussian { scale } => rng.gaussian() * scale,
            StartingPointStrategy::BitPattern => loop {
                let candidate = f64::from_bits(rng.next_u64());
                if candidate.is_finite() {
                    return candidate;
                }
            },
            StartingPointStrategy::Origin => 0.0,
        }
    }

    /// Human readable name used by benchmark tables.
    pub fn name(&self) -> &'static str {
        match self {
            StartingPointStrategy::UniformBox { .. } => "uniform-box",
            StartingPointStrategy::Gaussian { .. } => "gaussian",
            StartingPointStrategy::BitPattern => "bit-pattern",
            StartingPointStrategy::Origin => "origin",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_perturbation_within_bounds() {
        let mut rng = SplitMix64::new(1);
        let kind = PerturbationKind::Uniform { half_width: 0.5 };
        for _ in 0..1000 {
            let delta = kind.sample(&mut rng, 3);
            assert_eq!(delta.len(), 3);
            assert!(delta.iter().all(|d| d.abs() <= 0.5));
        }
    }

    #[test]
    fn gaussian_perturbation_scales_with_stddev() {
        let mut rng = SplitMix64::new(2);
        let small = PerturbationKind::Gaussian { stddev: 0.1 };
        let large = PerturbationKind::Gaussian { stddev: 10.0 };
        let small_mean: f64 = (0..2000)
            .map(|_| small.sample_scalar(&mut rng).abs())
            .sum::<f64>()
            / 2000.0;
        let large_mean: f64 = (0..2000)
            .map(|_| large.sample_scalar(&mut rng).abs())
            .sum::<f64>()
            / 2000.0;
        assert!(large_mean > small_mean * 10.0);
    }

    #[test]
    fn heavy_tailed_occasionally_hops_far() {
        let mut rng = SplitMix64::new(3);
        let kind = PerturbationKind::HeavyTailed { scale: 1.0 };
        let max = (0..5000)
            .map(|_| kind.sample_scalar(&mut rng).abs())
            .fold(0.0_f64, f64::max);
        assert!(max > 50.0, "heavy tail never produced a large hop: {max}");
    }

    #[test]
    fn uniform_box_start_within_bounds() {
        let mut rng = SplitMix64::new(4);
        let strat = StartingPointStrategy::UniformBox { lo: -2.0, hi: 3.0 };
        for _ in 0..1000 {
            let x = strat.sample(&mut rng, 2);
            assert!(x.iter().all(|v| (-2.0..3.0).contains(v)));
        }
    }

    #[test]
    fn bit_pattern_start_is_always_finite() {
        let mut rng = SplitMix64::new(5);
        let strat = StartingPointStrategy::BitPattern;
        for _ in 0..1000 {
            let x = strat.sample(&mut rng, 1);
            assert!(x[0].is_finite());
        }
    }

    #[test]
    fn bit_pattern_reaches_extreme_exponents() {
        let mut rng = SplitMix64::new(6);
        let strat = StartingPointStrategy::BitPattern;
        let mut saw_huge = false;
        let mut saw_tiny = false;
        for _ in 0..20_000 {
            let v = strat.sample(&mut rng, 1)[0].abs();
            if v > 1e100 {
                saw_huge = true;
            }
            if v < 1e-100 && v > 0.0 {
                saw_tiny = true;
            }
        }
        assert!(saw_huge && saw_tiny);
    }

    #[test]
    fn sample_batch_matches_sequential_sampling() {
        let strat = StartingPointStrategy::UniformBox { lo: -7.0, hi: 7.0 };
        let mut batch_rng = SplitMix64::new(11);
        let batch = strat.sample_batch(&mut batch_rng, 2, 10);
        let mut seq_rng = SplitMix64::new(11);
        let sequential: Vec<Vec<f64>> = (0..10).map(|_| strat.sample(&mut seq_rng, 2)).collect();
        assert_eq!(batch, sequential);
    }

    #[test]
    fn origin_strategy_is_zero() {
        let mut rng = SplitMix64::new(7);
        assert_eq!(
            StartingPointStrategy::Origin.sample(&mut rng, 4),
            vec![0.0; 4]
        );
    }

    #[test]
    fn default_matches_scipy_conventions() {
        assert_eq!(
            PerturbationKind::default(),
            PerturbationKind::Uniform { half_width: 0.5 }
        );
        assert_eq!(PerturbationKind::default().name(), "uniform");
        assert_eq!(StartingPointStrategy::default().name(), "uniform-box");
    }
}
