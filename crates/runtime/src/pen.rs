//! The penalty function `pen` — Definition 4.2 of the paper.
//!
//! `pen(l_i, op, a, b)` is what the instrumentation injects before every
//! conditional statement. It quantifies how far the current input is from
//! saturating a *new* branch at `l_i`:
//!
//! * if **neither** branch of `l_i` is saturated, any input saturates a new
//!   branch there, so `pen` returns `0`;
//! * if exactly **one** branch is saturated, `pen` returns the branch
//!   distance to the *unsaturated* side;
//! * if **both** branches are saturated, `pen` keeps the previous value of
//!   the global accumulator `r` (there is nothing new to gain at `l_i`).

use crate::distance::{distance, Cmp};

/// Saturation status of the two branches at one conditional site, as seen by
/// `pen`. This is the only piece of global CoverMe state the runtime needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SiteSaturation {
    /// Whether the true branch `i^T` is saturated.
    pub true_saturated: bool,
    /// Whether the false branch `i^F` is saturated.
    pub false_saturated: bool,
}

impl SiteSaturation {
    /// Neither side saturated.
    pub fn none() -> SiteSaturation {
        SiteSaturation::default()
    }

    /// Both sides saturated.
    pub fn both() -> SiteSaturation {
        SiteSaturation {
            true_saturated: true,
            false_saturated: true,
        }
    }
}

/// Computes `pen` per Definition 4.2 (Algorithm 1, lines 14–23).
///
/// `previous_r` is the current value of the injected global variable `r`;
/// it is returned unchanged when both branches are already saturated
/// (case (c) of the definition).
pub fn pen(
    saturation: SiteSaturation,
    op: Cmp,
    a: f64,
    b: f64,
    epsilon: f64,
    previous_r: f64,
) -> f64 {
    match (saturation.true_saturated, saturation.false_saturated) {
        // (a) Neither branch saturated: any input saturates a new branch.
        (false, false) => 0.0,
        // (b) Only the false side saturated: distance to making the condition
        // true (the unsaturated true branch).
        (false, true) => distance(op, a, b, epsilon),
        // (b') Only the true side saturated: distance to the false branch,
        // i.e. to the negated condition ("op̄" in the paper).
        (true, false) => distance(op.negate(), a, b, epsilon),
        // (c) Both saturated: keep the previous r.
        (true, true) => previous_r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-10;

    #[test]
    fn no_saturation_returns_zero_for_any_input() {
        for (a, b) in [(0.0, 0.0), (1e9, -1e9), (f64::NAN, 1.0)] {
            assert_eq!(pen(SiteSaturation::none(), Cmp::Le, a, b, EPS, 1.0), 0.0);
        }
    }

    #[test]
    fn only_false_saturated_targets_true_branch() {
        let sat = SiteSaturation {
            true_saturated: false,
            false_saturated: true,
        };
        // Condition y == 4 from the paper's Table 1 row 2.
        assert_eq!(pen(sat, Cmp::Eq, 2.0, 4.0, EPS, 1.0), 4.0);
        assert_eq!(pen(sat, Cmp::Eq, 4.0, 4.0, EPS, 1.0), 0.0);
    }

    #[test]
    fn only_true_saturated_targets_false_branch() {
        let sat = SiteSaturation {
            true_saturated: true,
            false_saturated: false,
        };
        // Condition x <= 1: the false branch needs x > 1.
        assert_eq!(pen(sat, Cmp::Le, 0.0, 1.0, EPS, 1.0), 1.0 + EPS);
        assert_eq!(pen(sat, Cmp::Le, 2.0, 1.0, EPS, 1.0), 0.0);
    }

    #[test]
    fn both_saturated_preserves_r() {
        for r in [0.0, 0.25, 1.0, 42.0] {
            assert_eq!(pen(SiteSaturation::both(), Cmp::Lt, 3.0, 1.0, EPS, r), r);
        }
    }

    #[test]
    fn pen_is_never_negative() {
        let sats = [
            SiteSaturation::none(),
            SiteSaturation::both(),
            SiteSaturation {
                true_saturated: true,
                false_saturated: false,
            },
            SiteSaturation {
                true_saturated: false,
                false_saturated: true,
            },
        ];
        let values = [-5.0, -0.5, 0.0, 0.5, 5.0];
        for sat in sats {
            for op in [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge] {
                for &a in &values {
                    for &b in &values {
                        let p = pen(sat, op, a, b, EPS, 1.0);
                        assert!(p >= 0.0, "pen({sat:?}, {op}, {a}, {b}) = {p}");
                    }
                }
            }
        }
    }

    #[test]
    fn table1_row3_shape() {
        // Paper Table 1 row 3: branches {0T, 1T, 1F} saturated, 0F not.
        // pen0 should then be the distance to "x > 1": 0 when x > 1,
        // (x-1)^2 + eps otherwise.
        let sat0 = SiteSaturation {
            true_saturated: true,
            false_saturated: false,
        };
        let at = |x: f64| pen(sat0, Cmp::Le, x, 1.0, EPS, 1.0);
        assert_eq!(at(1.1), 0.0);
        assert!((at(0.0) - (1.0 + EPS)).abs() < 1e-12);
        assert!(at(-3.0) > at(0.5));
    }
}
