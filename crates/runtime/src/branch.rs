//! Identities and sets of branches.
//!
//! A program under test has `N` conditional statements, labelled `l_0 …
//! l_{N-1}` ([`SiteId`]). Each conditional owns a *true* branch and a
//! *false* branch ([`Direction`]), so a [`BranchId`] is a `(site,
//! direction)` pair and a program has exactly `2·N` branches. [`BranchSet`]
//! is a compact bitset over those branches used for covered sets and for
//! saturation sets.

use std::fmt;

/// Index of a conditional statement (`l_i` in the paper).
pub type SiteId = u32;

/// Which side of a conditional a branch is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// The branch taken when the condition evaluates to true (`i^T`).
    True,
    /// The branch taken when the condition evaluates to false (`i^F`).
    False,
}

impl Direction {
    /// The other side of the same conditional.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::True => Direction::False,
            Direction::False => Direction::True,
        }
    }

    /// Converts a concrete branch outcome (`cond` evaluated to `true`?) into
    /// a direction.
    pub fn from_outcome(outcome: bool) -> Direction {
        if outcome {
            Direction::True
        } else {
            Direction::False
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::True => write!(f, "T"),
            Direction::False => write!(f, "F"),
        }
    }
}

/// A single branch of the program under test: one side of one conditional.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BranchId {
    /// The conditional statement this branch belongs to.
    pub site: SiteId,
    /// Which side of the conditional.
    pub direction: Direction,
}

impl BranchId {
    /// Creates the true branch `site^T`.
    pub fn true_of(site: SiteId) -> BranchId {
        BranchId {
            site,
            direction: Direction::True,
        }
    }

    /// Creates the false branch `site^F`.
    pub fn false_of(site: SiteId) -> BranchId {
        BranchId {
            site,
            direction: Direction::False,
        }
    }

    /// The sibling branch at the same conditional.
    pub fn sibling(self) -> BranchId {
        BranchId {
            site: self.site,
            direction: self.direction.opposite(),
        }
    }

    /// Dense index of this branch in a `2·N` bitset.
    pub fn index(self) -> usize {
        self.site as usize * 2
            + match self.direction {
                Direction::True => 0,
                Direction::False => 1,
            }
    }

    /// Inverse of [`BranchId::index`].
    pub fn from_index(index: usize) -> BranchId {
        BranchId {
            site: (index / 2) as SiteId,
            direction: if index.is_multiple_of(2) {
                Direction::True
            } else {
                Direction::False
            },
        }
    }
}

impl fmt::Display for BranchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.site, self.direction)
    }
}

/// A set of branches, stored as a bitset over `2·N` branch slots.
///
/// The set grows on demand, so it can be used before the exact number of
/// conditional sites is known (useful when learning a program's shape purely
/// from execution).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BranchSet {
    bits: Vec<u64>,
    len: usize,
}

impl BranchSet {
    /// Creates an empty set.
    pub fn new() -> BranchSet {
        BranchSet::default()
    }

    /// Creates an empty set pre-sized for a program with `num_sites`
    /// conditionals.
    pub fn with_sites(num_sites: usize) -> BranchSet {
        BranchSet {
            bits: vec![0; (num_sites * 2).div_ceil(64).max(1)],
            len: 0,
        }
    }

    /// Number of branches in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a branch; returns `true` if it was not already present.
    pub fn insert(&mut self, branch: BranchId) -> bool {
        let idx = branch.index();
        let word = idx / 64;
        let bit = 1u64 << (idx % 64);
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        let newly = self.bits[word] & bit == 0;
        self.bits[word] |= bit;
        if newly {
            self.len += 1;
        }
        newly
    }

    /// Removes a branch; returns `true` if it was present.
    pub fn remove(&mut self, branch: BranchId) -> bool {
        let idx = branch.index();
        let word = idx / 64;
        if word >= self.bits.len() {
            return false;
        }
        let bit = 1u64 << (idx % 64);
        let present = self.bits[word] & bit != 0;
        self.bits[word] &= !bit;
        if present {
            self.len -= 1;
        }
        present
    }

    /// Whether the branch is in the set.
    pub fn contains(&self, branch: BranchId) -> bool {
        let idx = branch.index();
        let word = idx / 64;
        word < self.bits.len() && self.bits[word] & (1u64 << (idx % 64)) != 0
    }

    /// Inserts every branch of `other`, returning how many were new.
    pub fn union_with(&mut self, other: &BranchSet) -> usize {
        let mut added = 0;
        for branch in other.iter() {
            if self.insert(branch) {
                added += 1;
            }
        }
        added
    }

    /// Iterates over the branches in the set in index order.
    pub fn iter(&self) -> impl Iterator<Item = BranchId> + '_ {
        self.bits.iter().enumerate().flat_map(|(word_idx, &word)| {
            (0..64).filter_map(move |bit| {
                if word & (1u64 << bit) != 0 {
                    Some(BranchId::from_index(word_idx * 64 + bit))
                } else {
                    None
                }
            })
        })
    }

    /// Removes every branch from the set.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }
}

impl FromIterator<BranchId> for BranchSet {
    fn from_iter<T: IntoIterator<Item = BranchId>>(iter: T) -> Self {
        let mut set = BranchSet::new();
        for b in iter {
            set.insert(b);
        }
        set
    }
}

impl Extend<BranchId> for BranchSet {
    fn extend<T: IntoIterator<Item = BranchId>>(&mut self, iter: T) {
        for b in iter {
            self.insert(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_opposite_is_involutive() {
        assert_eq!(Direction::True.opposite(), Direction::False);
        assert_eq!(Direction::False.opposite().opposite(), Direction::False);
    }

    #[test]
    fn branch_index_roundtrip() {
        for site in 0..50u32 {
            for dir in [Direction::True, Direction::False] {
                let b = BranchId {
                    site,
                    direction: dir,
                };
                assert_eq!(BranchId::from_index(b.index()), b);
            }
        }
    }

    #[test]
    fn sibling_shares_site() {
        let b = BranchId::true_of(7);
        assert_eq!(b.sibling(), BranchId::false_of(7));
        assert_eq!(b.sibling().sibling(), b);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(BranchId::true_of(0).to_string(), "0T");
        assert_eq!(BranchId::false_of(1).to_string(), "1F");
    }

    #[test]
    fn set_insert_contains_remove() {
        let mut set = BranchSet::new();
        let b = BranchId::true_of(3);
        assert!(!set.contains(b));
        assert!(set.insert(b));
        assert!(!set.insert(b), "double insert should report not-new");
        assert!(set.contains(b));
        assert_eq!(set.len(), 1);
        assert!(set.remove(b));
        assert!(!set.remove(b));
        assert!(set.is_empty());
    }

    #[test]
    fn set_grows_on_demand() {
        let mut set = BranchSet::new();
        let far = BranchId::false_of(1000);
        set.insert(far);
        assert!(set.contains(far));
        assert!(!set.contains(BranchId::true_of(999)));
    }

    #[test]
    fn with_sites_preallocates_and_works() {
        let mut set = BranchSet::with_sites(10);
        for s in 0..10 {
            set.insert(BranchId::true_of(s));
            set.insert(BranchId::false_of(s));
        }
        assert_eq!(set.len(), 20);
    }

    #[test]
    fn union_counts_new_branches() {
        let a: BranchSet = [BranchId::true_of(0), BranchId::false_of(1)]
            .into_iter()
            .collect();
        let b: BranchSet = [BranchId::true_of(0), BranchId::true_of(2)]
            .into_iter()
            .collect();
        let mut merged = a.clone();
        let added = merged.union_with(&b);
        assert_eq!(added, 1);
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn iter_yields_sorted_branches() {
        let set: BranchSet = [
            BranchId::false_of(2),
            BranchId::true_of(0),
            BranchId::true_of(2),
        ]
        .into_iter()
        .collect();
        let collected: Vec<BranchId> = set.iter().collect();
        assert_eq!(
            collected,
            vec![
                BranchId::true_of(0),
                BranchId::true_of(2),
                BranchId::false_of(2)
            ]
        );
    }

    #[test]
    fn clear_empties_the_set() {
        let mut set: BranchSet = (0..5).map(BranchId::true_of).collect();
        set.clear();
        assert!(set.is_empty());
        assert_eq!(set.iter().count(), 0);
    }
}
