//! The `Program` trait: anything CoverMe (or a baseline tester) can test.
//!
//! A program under test takes a fixed number of `f64` inputs and executes
//! against an [`ExecCtx`], reporting every conditional through
//! [`ExecCtx::branch`] and its sibling helpers. The paper's relaxations of
//! Sect. 5.3 are reflected here:
//!
//! * pointer inputs (`double*`) are flattened into additional scalar inputs
//!   by the port (the paper's loader does the same),
//! * conditionals over integers are reported through the promotion helpers,
//! * conditionals the port cannot express as an arithmetic comparison may be
//!   skipped entirely (not reported), exactly as CoverMe "ignores these
//!   conditional statements by not injecting pen before them".

use crate::backend::{BackendMode, ExecBackend};
use crate::context::ExecCtx;

/// A program under test.
pub trait Program {
    /// Human-readable name of the program (e.g. `"ieee754_acos"`). Used as
    /// the row label of the evaluation tables.
    fn name(&self) -> &str;

    /// Number of `f64` inputs the program takes.
    fn arity(&self) -> usize;

    /// Number of instrumented conditional sites (`N` in the paper). Branch
    /// identifiers passed to [`ExecCtx::branch`] must lie in `0..N`.
    fn num_sites(&self) -> usize;

    /// Executes the program on `input`, reporting branches through `ctx`.
    ///
    /// Implementations must be deterministic functions of `input`: CoverMe
    /// evaluates the representing function many times and relies on two
    /// executions on the same input taking the same path.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `input.len() != self.arity()`.
    fn execute(&self, input: &[f64], ctx: &mut ExecCtx);

    /// Number of source lines of the original program, when known. Only
    /// used as table metadata (Table 5 reports line counts of the C
    /// sources); defaults to zero for programs without a meaningful figure.
    fn source_lines(&self) -> usize {
        0
    }

    /// Offers a program-specific [`ExecBackend`] for the requested mode.
    ///
    /// Returning `None` (the default) means "run me through the generic
    /// interpreter backend" — [`Program::execute`] per evaluation, the lane
    /// context for batches. Programs that carry a compiled form (the FPIR
    /// instruction tape) return their own backend for
    /// [`BackendMode::Auto`]/[`BackendMode::Tape`]; whatever is returned
    /// must be observably bit-identical to [`Program::execute`].
    fn backend(&self, mode: BackendMode) -> Option<Box<dyn ExecBackend>> {
        let _ = mode;
        None
    }

    /// A stable 64-bit identity of the program *as the search sees it*,
    /// used as the key of the persistent corpus store. Two programs with
    /// the same fingerprint are assumed to have the same branch structure,
    /// so corpus entries recorded under one may warm-start the other.
    ///
    /// The default hashes the observable shape a native port exposes —
    /// name, arity and conditional-site count (a body change that keeps
    /// all three collides, which for hand-written ports is the accepted
    /// trade-off). Programs with a compiled form should override this
    /// with a hash of that form; FPIR programs fingerprint their lowered
    /// instruction tape, so any semantic edit to the source changes the
    /// key and invalidates stale corpus entries.
    ///
    /// This is a cache key, not a cryptographic digest.
    fn fingerprint(&self) -> u64 {
        native_fingerprint(self.name(), self.arity(), self.num_sites())
    }
}

/// FNV-1a over a program's externally visible shape — the default
/// [`Program::fingerprint`] for native (closure-backed) programs.
pub fn native_fingerprint(name: &str, arity: usize, num_sites: usize) -> u64 {
    let mut hash = fingerprint_seed();
    hash = fingerprint_bytes(hash, name.as_bytes());
    hash = fingerprint_bytes(hash, &(arity as u64).to_le_bytes());
    fingerprint_bytes(hash, &(num_sites as u64).to_le_bytes())
}

/// The FNV-1a offset basis — the starting hash for fingerprint folds.
pub fn fingerprint_seed() -> u64 {
    0xcbf2_9ce4_8422_2325
}

/// Folds `bytes` into an FNV-1a fingerprint accumulator. Exposed so
/// compiled-form programs (the FPIR tape) can build their override out of
/// the same primitive and stay comparable across crates.
pub fn fingerprint_bytes(mut hash: u64, bytes: &[u8]) -> u64 {
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A [`Program`] built from a closure. This is how the Fdlibm ports and the
/// quickstart examples define programs.
pub struct FnProgram<F> {
    name: String,
    arity: usize,
    num_sites: usize,
    source_lines: usize,
    body: F,
}

impl<F> FnProgram<F>
where
    F: Fn(&[f64], &mut ExecCtx),
{
    /// Creates a program from a closure.
    ///
    /// `num_sites` must match the largest site id reported by the closure
    /// plus one; the [`crate::CoverageMap`] uses it as the denominator of
    /// the coverage percentage.
    pub fn new(name: impl Into<String>, arity: usize, num_sites: usize, body: F) -> Self {
        FnProgram {
            name: name.into(),
            arity,
            num_sites,
            source_lines: 0,
            body,
        }
    }

    /// Attaches a source-line count (table metadata).
    pub fn with_source_lines(mut self, lines: usize) -> Self {
        self.source_lines = lines;
        self
    }
}

impl<F> Program for FnProgram<F>
where
    F: Fn(&[f64], &mut ExecCtx),
{
    fn name(&self) -> &str {
        &self.name
    }

    fn arity(&self) -> usize {
        self.arity
    }

    fn num_sites(&self) -> usize {
        self.num_sites
    }

    fn execute(&self, input: &[f64], ctx: &mut ExecCtx) {
        assert_eq!(
            input.len(),
            self.arity,
            "program {} expects {} inputs, got {}",
            self.name,
            self.arity,
            input.len()
        );
        (self.body)(input, ctx);
    }

    fn source_lines(&self) -> usize {
        self.source_lines
    }
}

impl<F> std::fmt::Debug for FnProgram<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnProgram")
            .field("name", &self.name)
            .field("arity", &self.arity)
            .field("num_sites", &self.num_sites)
            .finish_non_exhaustive()
    }
}

/// Blanket implementation so `&P`, `Box<P>` and `Rc<P>` are programs too.
impl<P: Program + ?Sized> Program for &P {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn arity(&self) -> usize {
        (**self).arity()
    }
    fn num_sites(&self) -> usize {
        (**self).num_sites()
    }
    fn execute(&self, input: &[f64], ctx: &mut ExecCtx) {
        (**self).execute(input, ctx)
    }
    fn source_lines(&self) -> usize {
        (**self).source_lines()
    }
    fn backend(&self, mode: BackendMode) -> Option<Box<dyn ExecBackend>> {
        (**self).backend(mode)
    }
    fn fingerprint(&self) -> u64 {
        (**self).fingerprint()
    }
}

impl<P: Program + ?Sized> Program for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn arity(&self) -> usize {
        (**self).arity()
    }
    fn num_sites(&self) -> usize {
        (**self).num_sites()
    }
    fn execute(&self, input: &[f64], ctx: &mut ExecCtx) {
        (**self).execute(input, ctx)
    }
    fn source_lines(&self) -> usize {
        (**self).source_lines()
    }
    fn backend(&self, mode: BackendMode) -> Option<Box<dyn ExecBackend>> {
        (**self).backend(mode)
    }
    fn fingerprint(&self) -> u64 {
        (**self).fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::BranchId;
    use crate::distance::Cmp;

    fn toy() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
        FnProgram::new("toy", 2, 1, |input: &[f64], ctx: &mut ExecCtx| {
            if ctx.branch(0, Cmp::Lt, input[0], input[1]) {
                // then
            }
        })
        .with_source_lines(12)
    }

    #[test]
    fn fn_program_exposes_metadata() {
        let p = toy();
        assert_eq!(p.name(), "toy");
        assert_eq!(p.arity(), 2);
        assert_eq!(p.num_sites(), 1);
        assert_eq!(p.source_lines(), 12);
        assert!(format!("{p:?}").contains("toy"));
    }

    #[test]
    fn fn_program_executes_and_reports_branches() {
        let p = toy();
        let mut ctx = ExecCtx::observe();
        p.execute(&[1.0, 2.0], &mut ctx);
        assert!(ctx.covered().contains(BranchId::true_of(0)));
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn fn_program_checks_arity() {
        let p = toy();
        let mut ctx = ExecCtx::observe();
        p.execute(&[1.0], &mut ctx);
    }

    #[test]
    fn native_fingerprint_keys_on_name_and_shape() {
        let p = toy();
        assert_eq!(
            p.fingerprint(),
            native_fingerprint("toy", 2, 1),
            "default fingerprint is the native shape hash"
        );
        // Forwarding impls preserve the fingerprint.
        fn by_ref_fingerprint<P: Program>(p: &P) -> u64 {
            // Calls `<&P as Program>::fingerprint`, the forwarding impl.
            <&P as Program>::fingerprint(&p)
        }
        assert_eq!(by_ref_fingerprint(&p), p.fingerprint());
        let boxed: Box<dyn Program> = Box::new(toy());
        assert_eq!(boxed.fingerprint(), p.fingerprint());
        // Any shape component changes the key.
        assert_ne!(
            native_fingerprint("toy", 2, 1),
            native_fingerprint("toy2", 2, 1)
        );
        assert_ne!(
            native_fingerprint("toy", 2, 1),
            native_fingerprint("toy", 3, 1)
        );
        assert_ne!(
            native_fingerprint("toy", 2, 1),
            native_fingerprint("toy", 2, 2)
        );
    }

    #[test]
    fn references_and_boxes_are_programs() {
        let p = toy();
        let by_ref: &dyn Program = &p;
        assert_eq!(by_ref.name(), "toy");
        assert_eq!(p.arity(), 2);

        let boxed: Box<dyn Program> = Box::new(toy());
        assert_eq!(boxed.num_sites(), 1);
        let mut ctx = ExecCtx::observe();
        boxed.execute(&[3.0, 1.0], &mut ctx);
        assert!(ctx.covered().contains(BranchId::false_of(0)));
        assert_eq!(boxed.source_lines(), 12);
    }
}
