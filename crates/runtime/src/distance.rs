//! Branch distance `d_ε(op, a, b)` — Definition 4.1 of the paper.
//!
//! The distance quantifies how far the pair `(a, b)` is from satisfying the
//! arithmetic comparison `a op b`:
//!
//! ```text
//! d_ε(==, a, b) = (a − b)²
//! d_ε(≤,  a, b) = a ≤ b ? 0 : (a − b)²
//! d_ε(<,  a, b) = a < b ? 0 : (a − b)² + ε
//! d_ε(≠,  a, b) = a ≠ b ? 0 : ε
//! d_ε(≥,  a, b) = d_ε(≤, b, a)        d_ε(>, a, b) = d_ε(<, b, a)
//! ```
//!
//! and satisfies the key property (Eq. 8): `d(op, a, b) ≥ 0` and
//! `d(op, a, b) = 0 ⇔ a op b`. The small constant `ε > 0` turns strict
//! inequalities into satisfiable targets (`x > y` is treated as
//! `x ≥ y + ε`).

/// The default `ε` used when none is specified: a value close to the machine
/// epsilon of `f64`, as the paper prescribes ("a small positive
/// floating-point close to machine epsilon").
pub const DEFAULT_EPSILON: f64 = f64::EPSILON;

/// An arithmetic comparison operator appearing in a conditional statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Cmp {
    /// Evaluates the comparison on concrete operands.
    ///
    /// Floating-point semantics apply: any comparison with NaN except `!=`
    /// is false, exactly as in the compiled C programs the paper tests.
    pub fn eval(self, a: f64, b: f64) -> bool {
        match self {
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Gt => a > b,
            Cmp::Ge => a >= b,
        }
    }

    /// The logical negation of the operator (`op̄` in the paper), i.e. the
    /// comparison that holds exactly when `self` does not (ignoring NaN).
    pub fn negate(self) -> Cmp {
        match self {
            Cmp::Eq => Cmp::Ne,
            Cmp::Ne => Cmp::Eq,
            Cmp::Lt => Cmp::Ge,
            Cmp::Le => Cmp::Gt,
            Cmp::Gt => Cmp::Le,
            Cmp::Ge => Cmp::Lt,
        }
    }

    /// The operator with its operands swapped (`a op b ⇔ b op.swap() a`).
    pub fn swap(self) -> Cmp {
        match self {
            Cmp::Eq => Cmp::Eq,
            Cmp::Ne => Cmp::Ne,
            Cmp::Lt => Cmp::Gt,
            Cmp::Le => Cmp::Ge,
            Cmp::Gt => Cmp::Lt,
            Cmp::Ge => Cmp::Le,
        }
    }

    /// The C-like source text of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            Cmp::Eq => "==",
            Cmp::Ne => "!=",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
        }
    }
}

impl std::fmt::Display for Cmp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// Computes the branch distance `d_ε(op, a, b)` of Definition 4.1.
///
/// NaN operands make every comparison (other than `!=`) unsatisfiable in a
/// meaningful metric sense; the distance degenerates to `+∞` for them so the
/// optimizer steers away from NaN-producing inputs instead of treating them
/// as attractive `(a-b)² = NaN` values.
pub fn distance(op: Cmp, a: f64, b: f64, epsilon: f64) -> f64 {
    debug_assert!(epsilon > 0.0, "epsilon must be strictly positive");
    if a.is_nan() || b.is_nan() {
        // `a != b` is the only comparison a NaN operand satisfies.
        return if op == Cmp::Ne { 0.0 } else { f64::INFINITY };
    }
    match op {
        Cmp::Eq => square(a - b),
        Cmp::Le => {
            if a <= b {
                0.0
            } else {
                square(a - b)
            }
        }
        Cmp::Lt => {
            if a < b {
                0.0
            } else {
                square(a - b) + epsilon
            }
        }
        Cmp::Ne => {
            if a != b {
                0.0
            } else {
                epsilon
            }
        }
        // d(>=, a, b) = d(<=, b, a), d(>, a, b) = d(<, b, a).
        Cmp::Ge => distance(Cmp::Le, b, a, epsilon),
        Cmp::Gt => distance(Cmp::Lt, b, a, epsilon),
    }
}

/// Distance using [`DEFAULT_EPSILON`].
pub fn distance_default(op: Cmp, a: f64, b: f64) -> f64 {
    distance(op, a, b, DEFAULT_EPSILON)
}

fn square(x: f64) -> f64 {
    // Saturate instead of overflowing to infinity * 0 pathologies later on:
    // (a - b)^2 can overflow for very distant operands; the optimizer only
    // needs a monotone signal, so clamping to f64::MAX is safe.
    let s = x * x;
    if s.is_infinite() {
        f64::MAX
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-10;

    #[test]
    fn eval_matches_rust_semantics() {
        assert!(Cmp::Eq.eval(1.0, 1.0));
        assert!(!Cmp::Eq.eval(1.0, 2.0));
        assert!(Cmp::Ne.eval(1.0, 2.0));
        assert!(Cmp::Lt.eval(1.0, 2.0));
        assert!(Cmp::Le.eval(2.0, 2.0));
        assert!(Cmp::Gt.eval(3.0, 2.0));
        assert!(Cmp::Ge.eval(2.0, 2.0));
    }

    #[test]
    fn nan_comparisons_follow_ieee() {
        let nan = f64::NAN;
        assert!(!Cmp::Eq.eval(nan, nan));
        assert!(Cmp::Ne.eval(nan, 1.0));
        assert!(!Cmp::Lt.eval(nan, 1.0));
        assert!(!Cmp::Ge.eval(1.0, nan));
    }

    #[test]
    fn negate_is_logical_complement_on_non_nan() {
        let pairs = [(1.0, 2.0), (2.0, 1.0), (3.0, 3.0), (-0.0, 0.0)];
        for op in [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge] {
            for (a, b) in pairs {
                assert_ne!(
                    op.eval(a, b),
                    op.negate().eval(a, b),
                    "op {op} on ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn swap_mirrors_operands() {
        let pairs = [(1.0, 2.0), (2.0, 1.0), (3.0, 3.0)];
        for op in [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge] {
            for (a, b) in pairs {
                assert_eq!(op.eval(a, b), op.swap().eval(b, a));
            }
        }
    }

    #[test]
    fn distance_is_zero_iff_condition_holds() {
        // Eq. (8) of the paper, checked on a grid of operand pairs.
        let values = [-2.5, -1.0, 0.0, 0.5, 1.0, 3.75];
        for op in [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge] {
            for &a in &values {
                for &b in &values {
                    let d = distance(op, a, b, EPS);
                    assert!(d >= 0.0);
                    assert_eq!(d == 0.0, op.eval(a, b), "op {op} a {a} b {b} d {d}");
                }
            }
        }
    }

    #[test]
    fn distance_decreases_as_operands_approach_equality() {
        let d_far = distance(Cmp::Eq, 10.0, 0.0, EPS);
        let d_near = distance(Cmp::Eq, 1.0, 0.0, EPS);
        let d_exact = distance(Cmp::Eq, 0.0, 0.0, EPS);
        assert!(d_far > d_near && d_near > d_exact);
        assert_eq!(d_exact, 0.0);
    }

    #[test]
    fn strict_inequality_includes_epsilon() {
        assert_eq!(distance(Cmp::Lt, 2.0, 2.0, EPS), EPS);
        assert_eq!(distance(Cmp::Gt, 2.0, 2.0, EPS), EPS);
        assert_eq!(distance(Cmp::Ne, 2.0, 2.0, EPS), EPS);
        assert!(distance(Cmp::Lt, 3.0, 2.0, EPS) > 1.0);
    }

    #[test]
    fn mirrored_operators_match_definition() {
        // d(>=, a, b) == d(<=, b, a) and d(>, a, b) == d(<, b, a).
        let pairs = [(1.0, 2.0), (5.0, -3.0), (2.0, 2.0)];
        for (a, b) in pairs {
            assert_eq!(distance(Cmp::Ge, a, b, EPS), distance(Cmp::Le, b, a, EPS));
            assert_eq!(distance(Cmp::Gt, a, b, EPS), distance(Cmp::Lt, b, a, EPS));
        }
    }

    #[test]
    fn nan_operands_yield_infinite_distance() {
        assert!(distance(Cmp::Eq, f64::NAN, 1.0, EPS).is_infinite());
        assert!(distance(Cmp::Le, 1.0, f64::NAN, EPS).is_infinite());
        // != with a NaN left operand is trivially satisfied.
        assert_eq!(distance(Cmp::Ne, f64::NAN, 1.0, EPS), 0.0);
    }

    #[test]
    fn huge_operands_do_not_overflow_to_infinity() {
        let d = distance(Cmp::Eq, 1e300, -1e300, EPS);
        assert!(d.is_finite());
        assert_eq!(d, f64::MAX);
    }

    #[test]
    fn default_epsilon_is_machine_epsilon() {
        assert_eq!(DEFAULT_EPSILON, f64::EPSILON);
        assert_eq!(distance_default(Cmp::Ne, 1.0, 1.0), f64::EPSILON);
    }

    #[test]
    fn symbols_round_trip_display() {
        for op in [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge] {
            assert_eq!(format!("{op}"), op.symbol());
        }
    }
}
