//! The per-execution context threaded through an instrumented program.
//!
//! `ExecCtx` plays the role of the paper's injected global variable `r`
//! together with the Gcov-style coverage recorder. Every conditional of an
//! instrumented program calls [`ExecCtx::branch`] (or one of the integer
//! promotion helpers), which:
//!
//! 1. evaluates the comparison and records the taken branch,
//! 2. in [`ExecMode::Representing`] mode, updates `r` with
//!    `pen(l_i, op, a, b)` exactly as the injected assignment
//!    `r = pen(...)` would, and
//! 3. returns the comparison outcome so the program can branch on it.
//!
//! The representing function `FOO_R(x)` of the paper is then: create a
//! representing-mode context (which initializes `r = 1`), execute the
//! program on `x`, and read [`ExecCtx::representing_value`].

use crate::branch::{BranchId, BranchSet, Direction, SiteId};
use crate::distance::{distance, Cmp, DEFAULT_EPSILON};
use crate::pen::{pen, SiteSaturation};
use crate::trace::{TakenBranch, Trace};

/// Per-site `pen` dispatch codes of the deferred-penalty (lane) execution
/// mode. The saturation snapshot is indexed into one `u8` per site, so the
/// per-branch work of a deferred execution is a single gather into this
/// table plus a branch-free overwrite of the pending-event slot.
///
/// Public so out-of-crate lane executors (the FPIR tape backend) can speak
/// the same deferred protocol: gather the site's code from a table built by
/// [`pen_code_table`](crate::lane::pen_code_table), overwrite the lane's
/// pending event unless the code is [`KEEP`](pen_code::KEEP), and resolve
/// pending events through
/// [`resolve_pen_lanes`](crate::lane::resolve_pen_lanes).
pub mod pen_code {
    /// Neither side saturated: `pen` would return `0`.
    pub const OPEN: u8 = 0;
    /// Only the false side saturated: `pen` would return
    /// `distance(op, a, b)` (the unsaturated true side is the target).
    pub const FALSE_SATURATED: u8 = 1;
    /// Only the true side saturated: `pen` would return
    /// `distance(op.negate(), a, b)`.
    pub const TRUE_SATURATED: u8 = 2;
    /// Both sides saturated: `pen` keeps the previous `r`, so the event
    /// cannot influence the final value and is dropped at record time.
    pub const KEEP: u8 = 3;
    /// Sentinel for "no live event recorded yet": the accumulator keeps its
    /// initial value `1`. Never stored in the per-site table.
    pub const IDLE: u8 = 4;
}

/// The deferred-penalty state of one execution: the last branch event whose
/// site was not fully saturated. Because `pen` either *overwrites* `r` with
/// a value that does not depend on the previous `r` (cases (a)/(b) of
/// Definition 4.2) or keeps it unchanged (case (c)), the final value of `r`
/// is a function of this one event alone — which is what lets the lane
/// backend skip the distance computation at every conditional and finalize
/// once per execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PendingPen {
    /// One of the [`pen_code`] constants ([`pen_code::KEEP`] excluded).
    pub code: u8,
    /// Comparison operator of the event.
    pub op: Cmp,
    /// Left operand at the moment of the comparison.
    pub lhs: f64,
    /// Right operand at the moment of the comparison.
    pub rhs: f64,
}

impl PendingPen {
    pub(crate) const IDLE: PendingPen = PendingPen {
        code: pen_code::IDLE,
        op: Cmp::Eq,
        lhs: 0.0,
        rhs: 0.0,
    };

    /// Resolves the pending event into the final accumulator value,
    /// computing exactly the `distance` call the last live `pen` would have
    /// made (bit-for-bit: same function, same operands, same `ε`).
    pub(crate) fn resolve(self, epsilon: f64) -> f64 {
        match self.code {
            pen_code::IDLE => 1.0,
            pen_code::OPEN => 0.0,
            pen_code::FALSE_SATURATED => distance(self.op, self.lhs, self.rhs, epsilon),
            pen_code::TRUE_SATURATED => distance(self.op.negate(), self.lhs, self.rhs, epsilon),
            code => unreachable!("pen code {code} is never pending"),
        }
    }
}

/// How one execution of a program under test ended.
///
/// Interpreted or otherwise untrusted programs (the `coverme-fpir` front
/// end, generated test programs) may fail to terminate cleanly: they can
/// exhaust their step fuel in a loop or hit a runtime fault. Such runs used
/// to be indistinguishable from clean ones — the truncated trace and the
/// partial accumulator `r` fed the representing function as if they were a
/// real path. An executor classifies each run by marking the context
/// ([`ExecCtx::mark_timeout`]/[`ExecCtx::mark_trap`]); consumers read the
/// classification back with [`ExecCtx::run_outcome`] and must exclude
/// aborted runs from coverage, saturation and memoization updates.
///
/// Hand-instrumented native programs (fdlibm) never mark, so their contexts
/// always report [`RunOutcome::Done`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunOutcome {
    /// The program ran to completion; its trace and coverage are real.
    #[default]
    Done,
    /// The executor's step fuel ran out before the program finished (the
    /// usual fate of an infinite loop under a bounded interpreter).
    Timeout,
    /// The program faulted: recursion depth exceeded, a missing call
    /// target, or any other condition the executor cannot recover from.
    Trap,
}

impl RunOutcome {
    /// Whether the run finished cleanly.
    pub fn is_done(self) -> bool {
        self == RunOutcome::Done
    }

    /// Stable lowercase label (used by JSON artifacts and the CLI).
    pub fn label(self) -> &'static str {
        match self {
            RunOutcome::Done => "done",
            RunOutcome::Timeout => "timeout",
            RunOutcome::Trap => "trap",
        }
    }
}

/// The two ways an instrumented program can be executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Record coverage and the trace only; `r` is not maintained. This is
    /// what plain coverage measurement (and the baseline testers) use.
    Observe,
    /// Additionally maintain the representing-function accumulator `r`
    /// against a saturation snapshot.
    Representing,
}

/// Per-execution instrumentation state.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecCtx {
    mode: ExecMode,
    epsilon: f64,
    /// The injected global `r`. Initialized to 1 in representing mode
    /// (Algorithm 1, line 5).
    r: f64,
    /// Snapshot of the saturated branches (empty in observe mode).
    saturated: BranchSet,
    /// Branches covered by this execution.
    covered: BranchSet,
    /// Ordered decisions taken by this execution.
    trace: Trace,
    /// Whether the trace is recorded.
    record_trace: bool,
    /// Whether the covered set is recorded. Disabled by the scalar fast
    /// path of the objective engine, which only needs `r`.
    record_coverage: bool,
    /// Per-site saturation lookup table, indexed by `SiteId`. Built by
    /// [`retarget`](Self::retarget) — i.e. by contexts that live across
    /// many executions, such as the objective engine's — so each `branch`
    /// call replaces two bitset probes with one indexed load. Empty (and
    /// unused) on per-execution contexts, whose construction must stay
    /// allocation-light. Sites past the end of the table are unsaturated.
    site_saturation: Vec<SiteSaturation>,
    /// Whether this context runs in the deferred-penalty mode of the lane
    /// backend: `branch` records only the last live event (one gather into
    /// [`pen_codes`](Self::pen_codes) plus a pending-slot overwrite) and the
    /// distance is computed once at the end instead of at every
    /// conditional. See [`deferred_pen`](Self::deferred_pen).
    defer_pen: bool,
    /// Per-site [`pen_code`] table of the deferred mode, rebuilt whenever
    /// the snapshot changes. Sites past the end are unsaturated
    /// ([`pen_code::OPEN`]).
    pen_codes: Vec<u8>,
    /// Last live branch event of the current deferred execution.
    pending: PendingPen,
    /// How the current execution ended. [`RunOutcome::Done`] unless the
    /// executor marked the run aborted; reset to `Done` by
    /// [`reset`](Self::reset).
    outcome: RunOutcome,
}

impl ExecCtx {
    /// Creates a context that only observes coverage and the trace.
    pub fn observe() -> ExecCtx {
        ExecCtx {
            mode: ExecMode::Observe,
            epsilon: DEFAULT_EPSILON,
            r: 1.0,
            saturated: BranchSet::new(),
            covered: BranchSet::new(),
            trace: Trace::new(),
            record_trace: true,
            record_coverage: true,
            site_saturation: Vec::new(),
            defer_pen: false,
            pen_codes: Vec::new(),
            pending: PendingPen::IDLE,
            outcome: RunOutcome::Done,
        }
    }

    /// Creates a representing-function context against a saturation
    /// snapshot. The accumulator `r` starts at `1`, which guarantees
    /// `FOO_R(x) > 0` once every branch is saturated (condition C1/C2 of the
    /// paper's Sect. 3.2).
    pub fn representing(saturated: BranchSet) -> ExecCtx {
        ExecCtx {
            mode: ExecMode::Representing,
            epsilon: DEFAULT_EPSILON,
            r: 1.0,
            saturated,
            covered: BranchSet::new(),
            trace: Trace::new(),
            record_trace: true,
            record_coverage: true,
            site_saturation: Vec::new(),
            defer_pen: false,
            pen_codes: Vec::new(),
            pending: PendingPen::IDLE,
            outcome: RunOutcome::Done,
        }
    }

    /// Switches a representing-mode context into the deferred-penalty mode
    /// used by the lane backend ([`crate::LaneCtx`]). In this mode `branch`
    /// does the least possible work — one gather into the per-site pen-code
    /// table and a branch-free overwrite of the pending-event slot — and
    /// the single distance that determines `r` is computed once per
    /// execution ([`deferred_value`](Self::deferred_value)) instead of at
    /// every conditional. Implies [`without_trace`](Self::without_trace)
    /// and [`without_coverage`](Self::without_coverage): a deferred context
    /// serves value-only evaluations.
    ///
    /// The value is bit-for-bit the one an ordinary representing execution
    /// computes, because `pen` (Definition 4.2) either overwrites `r` with
    /// a value independent of the previous `r` or keeps `r` unchanged —
    /// so only the last event at a not-fully-saturated site matters, and
    /// its distance is computed by the same [`distance`] call.
    ///
    /// # Panics
    ///
    /// Panics if the context is not in representing mode.
    pub fn deferred_pen(mut self) -> ExecCtx {
        assert_eq!(
            self.mode,
            ExecMode::Representing,
            "deferred pen requires a representing-mode context"
        );
        self.defer_pen = true;
        self.record_trace = false;
        self.record_coverage = false;
        self.rebuild_pen_codes();
        self
    }

    /// Overrides the `ε` used by the branch distances.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not strictly positive.
    pub fn with_epsilon(mut self, epsilon: f64) -> ExecCtx {
        assert!(epsilon > 0.0, "epsilon must be strictly positive");
        self.epsilon = epsilon;
        self
    }

    /// Disables trace recording (coverage is still recorded). Useful for the
    /// many millions of executions a fuzzing baseline performs.
    pub fn without_trace(mut self) -> ExecCtx {
        self.record_trace = false;
        self
    }

    /// Disables covered-set recording as well. This is the objective
    /// engine's scalar fast path: an evaluation that only needs `FOO_R(x)`
    /// pays for neither the trace nor the per-branch coverage inserts —
    /// `r` is unaffected, because `pen` reads only the saturation snapshot.
    /// [`covered`](Self::covered) stays empty on such a context.
    pub fn without_coverage(mut self) -> ExecCtx {
        self.record_coverage = false;
        self
    }

    /// The execution mode of this context.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The `ε` in use.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Evaluates the instrumented conditional `a op b` at site `site`.
    ///
    /// Returns the concrete outcome of the comparison so the caller can
    /// branch on it, after recording coverage and (in representing mode)
    /// performing the injected `r = pen(site, op, a, b)` assignment.
    #[inline]
    pub fn branch(&mut self, site: SiteId, op: Cmp, a: f64, b: f64) -> bool {
        if self.defer_pen {
            // Lane fast path: the only per-branch work is a gather into the
            // pen-code table and (for sites that can still influence `r`)
            // an overwrite of the pending-event slot. The distance itself
            // is deferred to the finalize, because later live events
            // overwrite it anyway.
            let code = self
                .pen_codes
                .get(site as usize)
                .copied()
                .unwrap_or(pen_code::OPEN);
            if code != pen_code::KEEP {
                self.pending = PendingPen {
                    code,
                    op,
                    lhs: a,
                    rhs: b,
                };
            }
            return op.eval(a, b);
        }
        // The assignment to r happens *before* the conditional in the
        // instrumented program, so update r first.
        if self.mode == ExecMode::Representing {
            let saturation = if self.site_saturation.is_empty() {
                SiteSaturation {
                    true_saturated: self.saturated.contains(BranchId::true_of(site)),
                    false_saturated: self.saturated.contains(BranchId::false_of(site)),
                }
            } else {
                // Retargeted (long-lived) context: one indexed load instead
                // of two bitset probes. Sites past the table are
                // unsaturated by construction.
                self.site_saturation
                    .get(site as usize)
                    .copied()
                    .unwrap_or_default()
            };
            self.r = pen(saturation, op, a, b, self.epsilon, self.r);
        }

        let outcome = op.eval(a, b);
        let direction = Direction::from_outcome(outcome);
        if self.record_coverage {
            self.covered.insert(BranchId { site, direction });
        }
        if self.record_trace {
            self.trace.push(TakenBranch {
                site,
                direction,
                op,
                lhs: a,
                rhs: b,
            });
        }
        outcome
    }

    /// Instrumented conditional over `i64` operands.
    ///
    /// Real-world floating-point code (all of Fdlibm) branches on integer
    /// bit patterns extracted from doubles. The paper's Sect. 5.3 handles
    /// such comparisons by promoting the operands to doubles before calling
    /// `pen`; this helper does exactly that.
    pub fn branch_i64(&mut self, site: SiteId, op: Cmp, a: i64, b: i64) -> bool {
        self.branch(site, op, a as f64, b as f64)
    }

    /// Instrumented conditional over `i32` operands (promoted to doubles).
    pub fn branch_i32(&mut self, site: SiteId, op: Cmp, a: i32, b: i32) -> bool {
        self.branch(site, op, f64::from(a), f64::from(b))
    }

    /// Instrumented conditional over `u32` operands (promoted to doubles).
    pub fn branch_u32(&mut self, site: SiteId, op: Cmp, a: u32, b: u32) -> bool {
        self.branch(site, op, f64::from(a), f64::from(b))
    }

    /// Instrumented conditional over a boolean condition that is *not* an
    /// arithmetic comparison (e.g. a logical combination the front end chose
    /// not to decompose). Such conditionals cannot contribute a meaningful
    /// branch distance, so in representing mode they behave like an
    /// unsaturatable-site: coverage is recorded, and `r` is updated with the
    /// 0/ε distance of the boolean seen as `flag != 0` / `flag == 0`.
    pub fn branch_bool(&mut self, site: SiteId, value: bool) -> bool {
        let numeric = if value { 1.0 } else { 0.0 };
        self.branch(site, Cmp::Ne, numeric, 0.0)
    }

    /// Marks the current execution as aborted by step-fuel exhaustion.
    /// Called by bounded executors (the FPIR interpreter) when a run does
    /// not finish within its fuel; sticky until [`reset`](Self::reset).
    pub fn mark_timeout(&mut self) {
        if self.outcome == RunOutcome::Done {
            self.outcome = RunOutcome::Timeout;
        }
    }

    /// Marks the current execution as aborted by a runtime fault (depth
    /// exhaustion, missing call target, …); sticky until
    /// [`reset`](Self::reset).
    pub fn mark_trap(&mut self) {
        if self.outcome == RunOutcome::Done {
            self.outcome = RunOutcome::Trap;
        }
    }

    /// How the current execution ended. [`RunOutcome::Done`] unless the
    /// executor marked it; consumers must discard the trace, coverage and
    /// representing value of a non-`Done` run.
    pub fn run_outcome(&self) -> RunOutcome {
        self.outcome
    }

    /// The current value of the injected accumulator `r`.
    ///
    /// For a representing-mode context this is `FOO_R(x)` once the program
    /// has finished executing on `x`; for an observe-mode context it stays
    /// at its initial value `1`. On a [`deferred_pen`](Self::deferred_pen)
    /// context the value is resolved from the pending event (one `distance`
    /// call) — bit-identical to what the eager accumulation computes.
    pub fn representing_value(&self) -> f64 {
        if self.defer_pen {
            self.pending.resolve(self.epsilon)
        } else {
            self.r
        }
    }

    /// The pending last live event of a deferred-penalty execution; used by
    /// the lane backend to harvest one lane into its SoA buffers.
    pub(crate) fn pending_pen(&self) -> PendingPen {
        self.pending
    }

    /// Rebuilds the per-site pen-code table of the deferred mode from the
    /// current saturation snapshot.
    fn rebuild_pen_codes(&mut self) {
        self.pen_codes.clear();
        if let Some(max_site) = self.saturated.iter().map(|b| b.site).max() {
            self.pen_codes.resize(max_site as usize + 1, pen_code::OPEN);
            for branch in self.saturated.iter() {
                let entry = &mut self.pen_codes[branch.site as usize];
                *entry |= match branch.direction {
                    Direction::True => pen_code::TRUE_SATURATED,
                    Direction::False => pen_code::FALSE_SATURATED,
                };
            }
        }
    }

    /// Branches covered by this execution (empty if coverage recording is
    /// disabled, see [`without_coverage`](Self::without_coverage)).
    pub fn covered(&self) -> &BranchSet {
        &self.covered
    }

    /// The saturation snapshot this context evaluates `pen` against (empty
    /// in observe mode).
    pub fn saturated(&self) -> &BranchSet {
        &self.saturated
    }

    /// Replaces the saturation snapshot while keeping the mode, `ε` and the
    /// recording flags. Together with [`reset`](Self::reset) this lets one
    /// long-lived context serve every round of a search: the snapshot is
    /// swapped (one clone per *round*) instead of a fresh context being
    /// built per *evaluation*. Retargeting also indexes the snapshot into
    /// the per-site saturation table consulted by [`branch`](Self::branch)
    /// — an O(sites) cost paid once per round that removes two bitset
    /// probes from every conditional of every subsequent execution.
    pub fn retarget(&mut self, saturated: BranchSet) {
        self.saturated = saturated;
        self.site_saturation.clear();
        if let Some(max_site) = self.saturated.iter().map(|b| b.site).max() {
            self.site_saturation
                .resize(max_site as usize + 1, SiteSaturation::default());
            for branch in self.saturated.iter() {
                let entry = &mut self.site_saturation[branch.site as usize];
                match branch.direction {
                    Direction::True => entry.true_saturated = true,
                    Direction::False => entry.false_saturated = true,
                }
            }
        }
        if self.defer_pen {
            self.rebuild_pen_codes();
        }
    }

    /// The ordered decision trace of this execution (empty if disabled).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the context, returning the covered set and the trace.
    pub fn into_parts(self) -> (BranchSet, Trace, f64) {
        (self.covered, self.trace, self.r)
    }

    /// Resets the per-execution state (covered set, trace, `r`) while
    /// keeping the mode, the saturation snapshot and `ε`. This lets a caller
    /// reuse one allocation across many executions.
    #[inline]
    pub fn reset(&mut self) {
        if self.defer_pen {
            // A deferred context records neither coverage nor trace and
            // never folds `r`; only the pending event and the run outcome
            // carry state.
            self.pending = PendingPen::IDLE;
            self.outcome = RunOutcome::Done;
            return;
        }
        self.covered.clear();
        self.trace.clear();
        self.r = 1.0;
        self.pending = PendingPen::IDLE;
        self.outcome = RunOutcome::Done;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The two-conditional program of the paper's Fig. 3:
    /// `l0: if (x <= 1) x += 2.5;  y = x*x;  l1: if (y == 4) {..}`.
    fn run_foo(ctx: &mut ExecCtx, x: f64) {
        let mut x = x;
        if ctx.branch(0, Cmp::Le, x, 1.0) {
            x += 2.5;
        }
        let y = x * x;
        if ctx.branch(1, Cmp::Eq, y, 4.0) {
            // nothing
        }
    }

    #[test]
    fn observe_mode_records_coverage_and_trace() {
        let mut ctx = ExecCtx::observe();
        run_foo(&mut ctx, 0.7);
        assert_eq!(ctx.trace().len(), 2);
        assert!(ctx.covered().contains(BranchId::true_of(0)));
        assert!(ctx.covered().contains(BranchId::false_of(1)));
        assert_eq!(ctx.covered().len(), 2);
        // r untouched in observe mode.
        assert_eq!(ctx.representing_value(), 1.0);
    }

    #[test]
    fn representing_r_is_zero_when_nothing_is_saturated() {
        // Table 1 row 1: Saturate = ∅ ⇒ FOO_R ≡ 0.
        for x in [-5.2, 0.7, 1.0, 42.0] {
            let mut ctx = ExecCtx::representing(BranchSet::new());
            run_foo(&mut ctx, x);
            assert_eq!(ctx.representing_value(), 0.0, "x = {x}");
        }
    }

    #[test]
    fn representing_r_matches_table1_row2() {
        // Saturate = {1F}. FOO_R(x) = ((x+2.5)^2 - 4)^2 for x <= 1,
        // (x^2 - 4)^2 otherwise (the paper plots the x+1 variant; the body
        // here adds 2.5, the shape is identical).
        let saturated: BranchSet = [BranchId::false_of(1)].into_iter().collect();
        let foo_r = |x: f64| {
            let mut ctx = ExecCtx::representing(saturated.clone());
            run_foo(&mut ctx, x);
            ctx.representing_value()
        };
        // x = -0.5 takes 0T: y = (x+2.5)^2 = 4 ⇒ distance 0.
        assert_eq!(foo_r(-0.5), 0.0);
        // x = 2 takes 0F: y = 4 ⇒ distance 0.
        assert_eq!(foo_r(2.0), 0.0);
        // x = 0 takes 0T: y = 6.25 ⇒ (6.25-4)^2.
        assert!((foo_r(0.0) - (6.25_f64 - 4.0).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn representing_r_is_one_when_everything_is_saturated() {
        // Table 1 row 4: all four branches saturated ⇒ FOO_R ≡ 1.
        let saturated: BranchSet = [
            BranchId::true_of(0),
            BranchId::false_of(0),
            BranchId::true_of(1),
            BranchId::false_of(1),
        ]
        .into_iter()
        .collect();
        for x in [-5.2, 0.7, 1.1, 2.0] {
            let mut ctx = ExecCtx::representing(saturated.clone());
            run_foo(&mut ctx, x);
            assert_eq!(ctx.representing_value(), 1.0, "x = {x}");
        }
    }

    #[test]
    fn integer_promotion_helpers_agree_with_double_branch() {
        let mut a = ExecCtx::observe();
        let mut b = ExecCtx::observe();
        let taken_int = a.branch_i32(0, Cmp::Ge, 0x7ff0_0000u32 as i32, 0x4036_0000);
        let taken_f64 = b.branch(
            0,
            Cmp::Ge,
            (0x7ff0_0000u32 as i32) as f64,
            0x4036_0000 as f64,
        );
        assert_eq!(taken_int, taken_f64);

        let mut c = ExecCtx::observe();
        assert!(c.branch_u32(1, Cmp::Lt, 1, 2));
        assert!(c.branch_i64(2, Cmp::Eq, -7, -7));
        assert!(c.branch_bool(3, true));
        assert!(!c.branch_bool(4, false));
    }

    #[test]
    fn without_trace_still_records_coverage() {
        let mut ctx = ExecCtx::observe().without_trace();
        run_foo(&mut ctx, 0.7);
        assert!(ctx.trace().is_empty());
        assert_eq!(ctx.covered().len(), 2);
    }

    #[test]
    fn reset_clears_per_execution_state() {
        let saturated: BranchSet = [BranchId::false_of(1)].into_iter().collect();
        let mut ctx = ExecCtx::representing(saturated);
        run_foo(&mut ctx, 0.0);
        assert!(ctx.representing_value() > 0.0);
        ctx.reset();
        assert_eq!(ctx.representing_value(), 1.0);
        assert!(ctx.covered().is_empty());
        assert!(ctx.trace().is_empty());
        // The saturation snapshot is retained.
        run_foo(&mut ctx, 0.0);
        assert!(ctx.representing_value() > 0.0);
    }

    #[test]
    fn without_coverage_still_computes_r() {
        let saturated: BranchSet = [BranchId::false_of(1)].into_iter().collect();
        let mut fast = ExecCtx::representing(saturated.clone())
            .without_trace()
            .without_coverage();
        let mut full = ExecCtx::representing(saturated);
        for x in [-4.5, -0.5, 0.0, 0.7, 2.0, 10.0] {
            fast.reset();
            full.reset();
            run_foo(&mut fast, x);
            run_foo(&mut full, x);
            assert_eq!(
                fast.representing_value().to_bits(),
                full.representing_value().to_bits(),
                "x = {x}"
            );
            assert!(fast.covered().is_empty());
            assert!(fast.trace().is_empty());
        }
    }

    #[test]
    fn retarget_swaps_the_snapshot_in_place() {
        let mut ctx = ExecCtx::representing(BranchSet::new())
            .without_trace()
            .without_coverage();
        run_foo(&mut ctx, 0.7);
        // Nothing saturated: FOO_R ≡ 0.
        assert_eq!(ctx.representing_value(), 0.0);

        let saturated: BranchSet = [BranchId::false_of(1)].into_iter().collect();
        ctx.retarget(saturated.clone());
        assert_eq!(ctx.saturated(), &saturated);
        ctx.reset();
        run_foo(&mut ctx, 0.7);
        let retargeted = ctx.representing_value();
        // Against {1F} the value matches a freshly built context.
        let mut fresh = ExecCtx::representing(saturated);
        run_foo(&mut fresh, 0.7);
        assert_eq!(retargeted.to_bits(), fresh.representing_value().to_bits());
        assert!(retargeted > 0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be strictly positive")]
    fn rejects_non_positive_epsilon() {
        let _ = ExecCtx::observe().with_epsilon(0.0);
    }

    #[test]
    fn run_outcome_defaults_done_sticks_and_resets() {
        let mut ctx = ExecCtx::representing(BranchSet::new());
        assert_eq!(ctx.run_outcome(), RunOutcome::Done);
        ctx.mark_timeout();
        assert_eq!(ctx.run_outcome(), RunOutcome::Timeout);
        // The first classification wins: a later trap does not overwrite.
        ctx.mark_trap();
        assert_eq!(ctx.run_outcome(), RunOutcome::Timeout);
        ctx.reset();
        assert_eq!(ctx.run_outcome(), RunOutcome::Done);
        ctx.mark_trap();
        assert_eq!(ctx.run_outcome(), RunOutcome::Trap);
        // Deferred contexts reset the outcome too (early-return branch).
        let mut deferred = ExecCtx::representing(BranchSet::new()).deferred_pen();
        deferred.mark_timeout();
        assert_eq!(deferred.run_outcome(), RunOutcome::Timeout);
        deferred.reset();
        assert_eq!(deferred.run_outcome(), RunOutcome::Done);
    }

    #[test]
    fn into_parts_returns_everything() {
        let mut ctx = ExecCtx::observe();
        run_foo(&mut ctx, 3.0);
        let (covered, trace, r) = ctx.into_parts();
        assert_eq!(covered.len(), 2);
        assert_eq!(trace.len(), 2);
        assert_eq!(r, 1.0);
    }
}
