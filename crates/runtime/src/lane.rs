//! The lane backend: data-parallel evaluation of a representing function
//! over a batch of independent inputs.
//!
//! The candidates a minimizer submits in one batch — a Nelder–Mead simplex,
//! a compass probe star, a shard's start schedule — are independent, so
//! their evaluations can execute in lockstep. Programs under test are
//! native code (hand-instrumented Rust ports, or the FPIR interpreter), so
//! their *control flow* cannot be run one-instruction-per-lane the way a
//! SIMT interpreter would; what fuses across lanes instead is the
//! instrumentation itself, split into two phases:
//!
//! 1. **record** — each lane executes the program once through a shared
//!    deferred-penalty [`ExecCtx`] ([`ExecCtx::deferred_pen`]). Per
//!    conditional, the injected `r = pen(...)` assignment collapses to a
//!    single *gather* into a per-site pen-code table plus a mask-style
//!    overwrite of the lane's pending-event slot — no distance arithmetic,
//!    no coverage or trace bookkeeping. This exploits the algebra of
//!    Definition 4.2: `pen` either overwrites `r` with a value that does
//!    not depend on the previous `r`, or keeps `r`; so the final `r` is a
//!    function of the **last** event at a not-fully-saturated site alone,
//!    and every earlier distance computation is dead work. Per-lane
//!    divergence costs nothing here — lanes that branch differently simply
//!    record different pending events;
//! 2. **finalize** — the harvested pending events sit in structure-of-array
//!    lane buffers (`[f64; LANE_WIDTH]` operand arrays, one code byte per
//!    lane), and the one distance per lane that actually determines the
//!    value is computed for all lanes by the [`crate::simd`] vector
//!    kernels of the context's [`SimdIsa`] — real packed SSE2/AVX2
//!    instructions when the machine has them, the scalar reference loop
//!    otherwise.
//!
//! How many lanes one finalize packs is an ISA property
//! ([`SimdIsa::lane_width`]): 8 on the portable and SSE2 paths (the
//! historical width), 16 under AVX2. [`LANE_WIDTH`] is the compile-time
//! *capacity* of the SoA buffers — the maximum any ISA selects.
//!
//! Bit-exactness with the scalar path is non-negotiable and holds by
//! construction: the finalize performs exactly the [`distance`] call
//! (same operands, same `ε`, same operation order) the last live `pen` of
//! an eager execution performs — the vector kernels mirror the scalar
//! select structure operation for operation — and dropping the overwritten
//! earlier calls cannot change the bits of the surviving one. The property
//! suites (`lane_properties` in `coverme-core`) pin this on generated
//! programs, snapshots, and NaN/inf inputs at every batch size and under
//! every forced ISA.
//!
//! [`distance`]: crate::distance

use crate::branch::{BranchSet, Direction};
use crate::context::{pen_code, ExecCtx, PendingPen, RunOutcome};
use crate::distance::Cmp;
use crate::program::Program;
use crate::simd::{self, SimdIsa};

/// Capacity of a [`LaneCtx`]'s SoA lane buffers: the widest lane count any
/// [`SimdIsa`] selects (16, the AVX2 width). The *effective* number of
/// lanes packed per lockstep finalize is [`SimdIsa::lane_width`] of the
/// context's ISA — 8 on the portable/SSE2 paths, 16 under AVX2. Batch
/// producers that size a candidate stream freely learn the effective width
/// through `Objective::preferred_batch` in `coverme-optim`; fixed-size
/// sets (a probe star, a simplex) are evaluated as-is in partially filled
/// chunks.
pub const LANE_WIDTH: usize = 16;

/// Smallest batch for which the lane path beats the scalar fast path.
/// Below this, per-batch setup (harvest + finalize) outweighs the deferred
/// per-branch savings, so batch dispatchers fall back to scalar evaluation.
/// Retuned against the vector kernels: the SIMD finalize lowers per-batch
/// cost further, so the historical threshold of 4 still holds with margin —
/// record (a full program execution per lane) dominates below it on every
/// ISA.
pub const MIN_LANE_BATCH: usize = 4;

/// The lane-parallel evaluation context. See the [module docs](self).
///
/// A `LaneCtx` is long-lived, like the objective engine's scalar context:
/// [`retarget`](Self::retarget) swaps the saturation snapshot per round
/// (one pen-code table rebuild), and recording reuses one deferred
/// [`ExecCtx`] across every lane of every batch.
#[derive(Debug, Clone)]
pub struct LaneCtx {
    /// The shared deferred-penalty recording context.
    ctx: ExecCtx,
    /// Pen-dispatch code per recorded lane ([`pen_code`] values).
    codes: [u8; LANE_WIDTH],
    /// Comparison operator per recorded lane.
    ops: [Cmp; LANE_WIDTH],
    /// Left comparison operand per recorded lane.
    lhs: [f64; LANE_WIDTH],
    /// Right comparison operand per recorded lane.
    rhs: [f64; LANE_WIDTH],
    /// Number of recorded, not-yet-finalized lanes.
    lanes: usize,
    /// The SIMD ISA the finalize dispatches to.
    isa: SimdIsa,
    /// Effective lane count per chunk (`isa.lane_width()`, cached).
    width: usize,
}

impl LaneCtx {
    /// Creates a lane context evaluating against the given saturation
    /// snapshot with the default `ε`, on the process's active SIMD ISA
    /// ([`SimdIsa::active`]).
    pub fn new(saturated: BranchSet) -> LaneCtx {
        let isa = SimdIsa::active();
        LaneCtx {
            ctx: ExecCtx::representing(saturated).deferred_pen(),
            codes: [pen_code::IDLE; LANE_WIDTH],
            ops: [Cmp::Eq; LANE_WIDTH],
            lhs: [0.0; LANE_WIDTH],
            rhs: [0.0; LANE_WIDTH],
            lanes: 0,
            isa,
            width: isa.lane_width(),
        }
    }

    /// Overrides the `ε` used by the branch distances.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not strictly positive.
    pub fn with_epsilon(mut self, epsilon: f64) -> LaneCtx {
        self.ctx = self.ctx.with_epsilon(epsilon);
        self
    }

    /// Overrides the SIMD ISA this context finalizes with (per instance —
    /// no global state, so parallel tests can pin different ISAs).
    ///
    /// # Panics
    ///
    /// Panics if the machine cannot execute `isa`, or if lanes were
    /// recorded but not yet finalized.
    pub fn with_simd(mut self, isa: SimdIsa) -> LaneCtx {
        assert!(isa.is_supported(), "SIMD ISA {isa} unsupported here");
        assert_eq!(self.lanes, 0, "ISA change with unfinalized lanes pending");
        self.isa = isa;
        self.width = isa.lane_width();
        self
    }

    /// The `ε` in use.
    pub fn epsilon(&self) -> f64 {
        self.ctx.epsilon()
    }

    /// The SIMD ISA the finalize dispatches to.
    pub fn simd_isa(&self) -> SimdIsa {
        self.isa
    }

    /// Effective number of lanes one lockstep finalize packs
    /// ([`SimdIsa::lane_width`] of the context's ISA).
    pub fn width(&self) -> usize {
        self.width
    }

    /// The saturation snapshot the lanes evaluate against.
    pub fn saturated(&self) -> &BranchSet {
        self.ctx.saturated()
    }

    /// Replaces the saturation snapshot (one pen-code table rebuild, no
    /// per-evaluation cost).
    ///
    /// # Panics
    ///
    /// Panics if lanes were recorded but not yet finalized.
    pub fn retarget(&mut self, saturated: BranchSet) {
        assert_eq!(self.lanes, 0, "retarget with unfinalized lanes pending");
        self.ctx.retarget(saturated);
    }

    /// Number of recorded, not-yet-finalized lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Whether every lane slot is filled (the caller should finalize).
    pub fn is_full(&self) -> bool {
        self.lanes == self.width
    }

    /// Whether no lane is recorded.
    pub fn is_empty(&self) -> bool {
        self.lanes == 0
    }

    /// Records one lane: executes `program` on `input` through the deferred
    /// context and harvests the surviving pending event into the lane
    /// buffers. Returns how the execution ended so a dispatcher can handle
    /// aborted runs (substitute a sentinel value, skip memoization) — the
    /// lane itself is recorded either way, keeping lane/value indices
    /// aligned.
    ///
    /// # Panics
    ///
    /// Panics if all [`width`](Self::width) lanes are already filled.
    pub fn record<P: Program + ?Sized>(&mut self, program: &P, input: &[f64]) -> RunOutcome {
        assert!(self.lanes < self.width, "all lanes filled; finalize first");
        self.ctx.reset();
        program.execute(input, &mut self.ctx);
        let PendingPen { code, op, lhs, rhs } = self.ctx.pending_pen();
        let lane = self.lanes;
        self.codes[lane] = code;
        self.ops[lane] = op;
        self.lhs[lane] = lhs;
        self.rhs[lane] = rhs;
        self.lanes += 1;
        self.ctx.run_outcome()
    }

    /// Read-only view of the recorded, not-yet-finalized pending events as
    /// SoA slices `(codes, ops, lhs, rhs)`, in record order. This is the
    /// harvest the finalize consumes; the bench harness uses it to collect
    /// real event streams and re-finalize them under every ISA.
    pub fn pending_lanes(&self) -> (&[u8], &[Cmp], &[f64], &[f64]) {
        let lanes = self.lanes;
        (
            &self.codes[..lanes],
            &self.ops[..lanes],
            &self.lhs[..lanes],
            &self.rhs[..lanes],
        )
    }

    /// Resolves every recorded lane in one lockstep pass, appending one
    /// value per lane (in record order) to `values`, and clears the lanes.
    ///
    /// Delegates to [`resolve_pen_lanes_with`] on the context's ISA:
    /// chunks whose lanes agree on the pen code and comparison run the
    /// packed distance kernel over the SoA operand arrays; divergent
    /// chunks fall back to the scalar per-lane resolve. Either path
    /// computes exactly the `distance` call the eager path would have
    /// kept, bit for bit.
    pub fn finalize_into(&mut self, values: &mut Vec<f64>) {
        let epsilon = self.epsilon();
        let lanes = self.lanes;
        resolve_pen_lanes_with(
            self.isa,
            &self.codes[..lanes],
            &self.ops[..lanes],
            &self.lhs[..lanes],
            &self.rhs[..lanes],
            epsilon,
            values,
        );
        self.lanes = 0;
    }

    /// Evaluates `FOO_R` over a whole batch: points are packed into
    /// [`width`](Self::width)-wide chunks, each chunk recorded lane by
    /// lane and finalized in lockstep. One value per point is appended to
    /// `values` in input order; `values` is not cleared.
    ///
    /// # Panics
    ///
    /// Panics if lanes were recorded but not yet finalized.
    pub fn eval_batch<P: Program + ?Sized>(
        &mut self,
        program: &P,
        points: &[Vec<f64>],
        values: &mut Vec<f64>,
    ) {
        assert_eq!(self.lanes, 0, "eval_batch with unfinalized lanes pending");
        values.reserve(points.len());
        for chunk in points.chunks(self.width) {
            for point in chunk {
                self.record(program, point);
            }
            self.finalize_into(values);
        }
    }
}

impl Default for LaneCtx {
    fn default() -> LaneCtx {
        LaneCtx::new(BranchSet::new())
    }
}

/// Builds the per-site `pen` dispatch table for a saturation snapshot: one
/// [`pen_code`] byte per site, indexed by site id. Sites past the table's
/// end are [`pen_code::OPEN`] (a lookup should default to `OPEN`, exactly
/// like the deferred [`ExecCtx`] does).
///
/// This is the table an out-of-crate lane executor gathers from per
/// conditional; it matches the deferred context's internal table bit for
/// bit (same `|=` accumulation, so a site saturated on both sides lands on
/// [`pen_code::KEEP`]).
pub fn pen_code_table(saturated: &BranchSet) -> Vec<u8> {
    let mut codes = Vec::new();
    if let Some(max_site) = saturated.iter().map(|b| b.site).max() {
        codes.resize(max_site as usize + 1, pen_code::OPEN);
        for branch in saturated.iter() {
            codes[branch.site as usize] |= match branch.direction {
                Direction::True => pen_code::TRUE_SATURATED,
                Direction::False => pen_code::FALSE_SATURATED,
            };
        }
    }
    codes
}

/// Resolves one pending penalty event — the scalar counterpart of
/// [`resolve_pen_lanes`], bit-identical to the last live `pen` of an eager
/// execution.
///
/// # Panics
///
/// Panics if `code` is [`pen_code::KEEP`] (a kept event is never pending).
pub fn resolve_pen(code: u8, op: Cmp, lhs: f64, rhs: f64, epsilon: f64) -> f64 {
    PendingPen { code, op, lhs, rhs }.resolve(epsilon)
}

/// Resolves a structure-of-arrays batch of pending penalty events on the
/// process's active SIMD ISA ([`SimdIsa::active`]), appending one value
/// per event (in order) to `values`. See [`resolve_pen_lanes_with`].
///
/// # Panics
///
/// Panics if the slice lengths disagree or a code is [`pen_code::KEEP`].
pub fn resolve_pen_lanes(
    codes: &[u8],
    ops: &[Cmp],
    lhs: &[f64],
    rhs: &[f64],
    epsilon: f64,
    values: &mut Vec<f64>,
) {
    resolve_pen_lanes_with(SimdIsa::active(), codes, ops, lhs, rhs, epsilon, values);
}

/// Resolves a structure-of-arrays batch of pending penalty events with the
/// given ISA's kernels, appending one value per event (in order) to
/// `values`.
///
/// The batch is scanned for maximal *uniform runs* — consecutive lanes
/// carrying the same pen code and comparison operator, the common case
/// since a batch usually probes one program around one target. Each run
/// of at least [`MIN_LANE_BATCH`] lanes becomes a single packed
/// [`simd::distance_lanes`] kernel call over the operand slices, so the
/// non-inlinable `#[target_feature]` call cost amortizes over the whole
/// run (a full finalize group, or an entire harvested event stream).
/// Shorter or divergent runs resolve lane by lane. Both paths compute
/// exactly [`crate::distance`] on the recorded operands, so values are
/// bit-identical to scalar resolution whichever path (and whichever ISA)
/// runs.
///
/// # Panics
///
/// Panics if the slice lengths disagree or a code is [`pen_code::KEEP`].
pub fn resolve_pen_lanes_with(
    isa: SimdIsa,
    codes: &[u8],
    ops: &[Cmp],
    lhs: &[f64],
    rhs: &[f64],
    epsilon: f64,
    values: &mut Vec<f64>,
) {
    let n = codes.len();
    assert!(
        ops.len() == n && lhs.len() == n && rhs.len() == n,
        "SoA slice lengths disagree"
    );
    values.reserve(n);
    let mut start = 0;
    while start < n {
        let code = codes[start];
        let op = ops[start];
        let mut end = start + 1;
        while end < n && codes[end] == code && ops[end] == op {
            end += 1;
        }
        if code != pen_code::KEEP && end - start >= MIN_LANE_BATCH {
            let at = values.len();
            values.resize(at + (end - start), 0.0);
            let out = &mut values[at..];
            match code {
                pen_code::IDLE => out.fill(1.0),
                pen_code::OPEN => out.fill(0.0),
                pen_code::FALSE_SATURATED => {
                    simd::distance_lanes(isa, op, &lhs[start..end], &rhs[start..end], epsilon, out);
                }
                pen_code::TRUE_SATURATED => {
                    simd::distance_lanes(
                        isa,
                        op.negate(),
                        &lhs[start..end],
                        &rhs[start..end],
                        epsilon,
                        out,
                    );
                }
                _ => unreachable!(),
            }
        } else {
            for lane in start..end {
                values.push(resolve_pen(
                    codes[lane],
                    ops[lane],
                    lhs[lane],
                    rhs[lane],
                    epsilon,
                ));
            }
        }
        start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::BranchId;
    use crate::distance::DEFAULT_EPSILON;
    use crate::program::FnProgram;

    /// The paper's Fig. 3 program with `square` inlined.
    fn paper_example() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
        FnProgram::new("FOO", 1, 2, |input: &[f64], ctx: &mut ExecCtx| {
            let mut x = input[0];
            if ctx.branch(0, Cmp::Le, x, 1.0) {
                x += 2.5;
            }
            let y = x * x;
            if ctx.branch(1, Cmp::Eq, y, 4.0) {
                // target
            }
        })
    }

    fn snapshots() -> Vec<BranchSet> {
        vec![
            BranchSet::new(),
            [BranchId::false_of(1)].into_iter().collect(),
            [BranchId::true_of(0), BranchId::false_of(1)]
                .into_iter()
                .collect(),
            [
                BranchId::true_of(0),
                BranchId::false_of(0),
                BranchId::true_of(1),
                BranchId::false_of(1),
            ]
            .into_iter()
            .collect(),
        ]
    }

    #[test]
    fn lane_values_match_eager_execution_bit_for_bit() {
        let program = paper_example();
        for saturated in snapshots() {
            for isa in SimdIsa::supported() {
                let mut lane = LaneCtx::new(saturated.clone()).with_simd(isa);
                let points: Vec<Vec<f64>> = (0..23).map(|i| vec![i as f64 * 0.61 - 7.0]).collect();
                let mut values = Vec::new();
                lane.eval_batch(&program, &points, &mut values);
                assert_eq!(values.len(), points.len());
                for (point, value) in points.iter().zip(&values) {
                    let mut eager = ExecCtx::representing(saturated.clone());
                    program.execute(point, &mut eager);
                    assert_eq!(
                        value.to_bits(),
                        eager.representing_value().to_bits(),
                        "isa {isa}, snapshot {saturated:?}, point {point:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn deferred_context_matches_eager_on_specials() {
        let program = paper_example();
        let saturated: BranchSet = [BranchId::false_of(1)].into_iter().collect();
        let mut deferred = ExecCtx::representing(saturated.clone()).deferred_pen();
        for x in [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            1e300,
            5e-324,
        ] {
            deferred.reset();
            program.execute(&[x], &mut deferred);
            let mut eager = ExecCtx::representing(saturated.clone());
            program.execute(&[x], &mut eager);
            assert_eq!(
                deferred.representing_value().to_bits(),
                eager.representing_value().to_bits(),
                "x = {x}"
            );
        }
    }

    #[test]
    fn record_and_finalize_clear_the_lanes() {
        let program = paper_example();
        let mut lane = LaneCtx::new(BranchSet::new());
        assert!(lane.is_empty());
        lane.record(&program, &[0.5]);
        lane.record(&program, &[2.0]);
        assert_eq!(lane.lanes(), 2);
        let (codes, ops, lhs, rhs) = lane.pending_lanes();
        assert_eq!(codes.len(), 2);
        assert_eq!(ops.len(), 2);
        assert_eq!(lhs.len(), 2);
        assert_eq!(rhs.len(), 2);
        let mut values = Vec::new();
        lane.finalize_into(&mut values);
        assert_eq!(values, vec![0.0, 0.0]);
        assert!(lane.is_empty());
    }

    #[test]
    fn retarget_changes_the_target_snapshot() {
        let program = paper_example();
        let mut lane = LaneCtx::new(BranchSet::new());
        let mut values = Vec::new();
        lane.eval_batch(&program, &[vec![0.3]], &mut values);
        assert_eq!(values, vec![0.0]);
        lane.retarget([BranchId::false_of(1)].into_iter().collect());
        values.clear();
        lane.eval_batch(&program, &[vec![0.3]], &mut values);
        assert!(values[0] > 0.0);
    }

    #[test]
    fn partially_filled_last_chunk_is_finalized() {
        let program = paper_example();
        let mut lane = LaneCtx::new(BranchSet::new());
        let points: Vec<Vec<f64>> = (0..lane.width() + 3).map(|i| vec![i as f64]).collect();
        let mut values = Vec::new();
        lane.eval_batch(&program, &points, &mut values);
        assert_eq!(values.len(), lane.width() + 3);
    }

    #[test]
    fn effective_width_tracks_the_isa() {
        let lane = LaneCtx::new(BranchSet::new());
        assert_eq!(lane.width(), lane.simd_isa().lane_width());
        assert!(lane.width() <= LANE_WIDTH);
        for isa in SimdIsa::supported() {
            let lane = LaneCtx::new(BranchSet::new()).with_simd(isa);
            assert_eq!(lane.simd_isa(), isa);
            assert_eq!(lane.width(), isa.lane_width());
        }
    }

    #[test]
    #[should_panic(expected = "all lanes filled")]
    fn overfilling_the_lanes_panics() {
        let program = paper_example();
        let mut lane = LaneCtx::new(BranchSet::new());
        for i in 0..=lane.width() {
            lane.record(&program, &[i as f64]);
        }
    }

    #[test]
    fn custom_epsilon_reaches_the_finalize() {
        let program = paper_example();
        // Both branches of site 1 saturated on one side only matters with
        // an equality op; use a snapshot whose pen goes through distance.
        let saturated: BranchSet = [BranchId::true_of(1)].into_iter().collect();
        for epsilon in [DEFAULT_EPSILON, 0.25, 2.0] {
            let mut lane = LaneCtx::new(saturated.clone()).with_epsilon(epsilon);
            let mut values = Vec::new();
            lane.eval_batch(&program, &[vec![2.0]], &mut values);
            let mut eager = ExecCtx::representing(saturated.clone()).with_epsilon(epsilon);
            program.execute(&[2.0], &mut eager);
            assert_eq!(values[0].to_bits(), eager.representing_value().to_bits());
        }
    }

    #[test]
    fn explicit_isa_resolution_is_bit_identical_across_isas() {
        // A mixed stream of pending events (every code, every op, special
        // operands) resolves to the same bits under every supported ISA.
        let ops_pool = [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge];
        let operands = [0.0, -0.0, 1.0, f64::NAN, f64::INFINITY, -3.5, 1e300];
        let mut codes = Vec::new();
        let mut ops = Vec::new();
        let mut lhs = Vec::new();
        let mut rhs = Vec::new();
        let mut k = 0usize;
        for code in [
            pen_code::IDLE,
            pen_code::OPEN,
            pen_code::FALSE_SATURATED,
            pen_code::TRUE_SATURATED,
        ] {
            for &a in &operands {
                for &b in &operands {
                    codes.push(code);
                    ops.push(ops_pool[k % ops_pool.len()]);
                    lhs.push(a);
                    rhs.push(b);
                    k += 1;
                }
            }
        }
        let mut reference = Vec::new();
        resolve_pen_lanes_with(
            SimdIsa::Portable,
            &codes,
            &ops,
            &lhs,
            &rhs,
            DEFAULT_EPSILON,
            &mut reference,
        );
        for isa in SimdIsa::supported() {
            let mut values = Vec::new();
            resolve_pen_lanes_with(isa, &codes, &ops, &lhs, &rhs, DEFAULT_EPSILON, &mut values);
            assert_eq!(values.len(), reference.len());
            for (k, (v, r)) in values.iter().zip(&reference).enumerate() {
                assert_eq!(v.to_bits(), r.to_bits(), "{isa} lane {k}");
            }
        }
    }
}
