//! The lane backend: data-parallel evaluation of a representing function
//! over a batch of independent inputs.
//!
//! The candidates a minimizer submits in one batch — a Nelder–Mead simplex,
//! a compass probe star, a shard's start schedule — are independent, so
//! their evaluations can execute in lockstep. Programs under test are
//! native code (hand-instrumented Rust ports, or the FPIR interpreter), so
//! their *control flow* cannot be run one-instruction-per-lane the way a
//! SIMT interpreter would; what fuses across lanes instead is the
//! instrumentation itself, split into two phases:
//!
//! 1. **record** — each lane executes the program once through a shared
//!    deferred-penalty [`ExecCtx`] ([`ExecCtx::deferred_pen`]). Per
//!    conditional, the injected `r = pen(...)` assignment collapses to a
//!    single *gather* into a per-site pen-code table plus a mask-style
//!    overwrite of the lane's pending-event slot — no distance arithmetic,
//!    no coverage or trace bookkeeping. This exploits the algebra of
//!    Definition 4.2: `pen` either overwrites `r` with a value that does
//!    not depend on the previous `r`, or keeps `r`; so the final `r` is a
//!    function of the **last** event at a not-fully-saturated site alone,
//!    and every earlier distance computation is dead work. Per-lane
//!    divergence costs nothing here — lanes that branch differently simply
//!    record different pending events;
//! 2. **finalize** — the harvested pending events sit in structure-of-array
//!    lane buffers (`[f64; LANE_WIDTH]` operand arrays, one code byte per
//!    lane), and the one distance per lane that actually determines the
//!    value is computed for all lanes in a lockstep pass.
//!
//! Bit-exactness with the scalar path is non-negotiable and holds by
//! construction: the finalize performs exactly the [`distance`] call
//! (same operands, same `ε`, same operation order) the last live `pen` of
//! an eager execution performs, and dropping the overwritten earlier calls
//! cannot change the bits of the surviving one. The property suite
//! (`lane_properties` in `coverme-core`) pins this on generated programs,
//! snapshots, and NaN/inf inputs at every batch size.
//!
//! [`distance`]: crate::distance

use crate::branch::{BranchSet, Direction};
use crate::context::{pen_code, ExecCtx, PendingPen, RunOutcome};
use crate::distance::Cmp;
use crate::program::Program;

/// Number of evaluation lanes a [`LaneCtx`] packs per lockstep finalize.
///
/// Eight lanes of `f64` are one AVX-512 register or two AVX2 registers —
/// wide enough for the finalize loops to auto-vectorize, small enough that
/// a partially filled last chunk wastes little work. Batch producers that
/// size a candidate stream freely learn this width through
/// `Objective::preferred_batch` in `coverme-optim`; fixed-size sets (a
/// probe star, a simplex) are evaluated as-is in partially filled chunks.
pub const LANE_WIDTH: usize = 8;

/// Smallest batch for which the lane path beats the scalar fast path.
/// Below this, per-batch setup (harvest + finalize) outweighs the deferred
/// per-branch savings, so batch dispatchers fall back to scalar evaluation.
pub const MIN_LANE_BATCH: usize = 4;

/// The lane-parallel evaluation context. See the [module docs](self).
///
/// A `LaneCtx` is long-lived, like the objective engine's scalar context:
/// [`retarget`](Self::retarget) swaps the saturation snapshot per round
/// (one pen-code table rebuild), and recording reuses one deferred
/// [`ExecCtx`] across every lane of every batch.
#[derive(Debug, Clone)]
pub struct LaneCtx {
    /// The shared deferred-penalty recording context.
    ctx: ExecCtx,
    /// Pen-dispatch code per recorded lane ([`pen_code`] values).
    codes: [u8; LANE_WIDTH],
    /// Comparison operator per recorded lane.
    ops: [Cmp; LANE_WIDTH],
    /// Left comparison operand per recorded lane.
    lhs: [f64; LANE_WIDTH],
    /// Right comparison operand per recorded lane.
    rhs: [f64; LANE_WIDTH],
    /// Number of recorded, not-yet-finalized lanes.
    lanes: usize,
}

impl LaneCtx {
    /// Creates a lane context evaluating against the given saturation
    /// snapshot with the default `ε`.
    pub fn new(saturated: BranchSet) -> LaneCtx {
        LaneCtx {
            ctx: ExecCtx::representing(saturated).deferred_pen(),
            codes: [pen_code::IDLE; LANE_WIDTH],
            ops: [Cmp::Eq; LANE_WIDTH],
            lhs: [0.0; LANE_WIDTH],
            rhs: [0.0; LANE_WIDTH],
            lanes: 0,
        }
    }

    /// Overrides the `ε` used by the branch distances.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not strictly positive.
    pub fn with_epsilon(mut self, epsilon: f64) -> LaneCtx {
        self.ctx = self.ctx.with_epsilon(epsilon);
        self
    }

    /// The `ε` in use.
    pub fn epsilon(&self) -> f64 {
        self.ctx.epsilon()
    }

    /// The saturation snapshot the lanes evaluate against.
    pub fn saturated(&self) -> &BranchSet {
        self.ctx.saturated()
    }

    /// Replaces the saturation snapshot (one pen-code table rebuild, no
    /// per-evaluation cost).
    ///
    /// # Panics
    ///
    /// Panics if lanes were recorded but not yet finalized.
    pub fn retarget(&mut self, saturated: BranchSet) {
        assert_eq!(self.lanes, 0, "retarget with unfinalized lanes pending");
        self.ctx.retarget(saturated);
    }

    /// Number of recorded, not-yet-finalized lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Whether every lane slot is filled (the caller should finalize).
    pub fn is_full(&self) -> bool {
        self.lanes == LANE_WIDTH
    }

    /// Whether no lane is recorded.
    pub fn is_empty(&self) -> bool {
        self.lanes == 0
    }

    /// Records one lane: executes `program` on `input` through the deferred
    /// context and harvests the surviving pending event into the lane
    /// buffers. Returns how the execution ended so a dispatcher can handle
    /// aborted runs (substitute a sentinel value, skip memoization) — the
    /// lane itself is recorded either way, keeping lane/value indices
    /// aligned.
    ///
    /// # Panics
    ///
    /// Panics if all [`LANE_WIDTH`] lanes are already filled.
    pub fn record<P: Program + ?Sized>(&mut self, program: &P, input: &[f64]) -> RunOutcome {
        assert!(self.lanes < LANE_WIDTH, "all lanes filled; finalize first");
        self.ctx.reset();
        program.execute(input, &mut self.ctx);
        let PendingPen { code, op, lhs, rhs } = self.ctx.pending_pen();
        let lane = self.lanes;
        self.codes[lane] = code;
        self.ops[lane] = op;
        self.lhs[lane] = lhs;
        self.rhs[lane] = rhs;
        self.lanes += 1;
        self.ctx.run_outcome()
    }

    /// Resolves every recorded lane in one lockstep pass, appending one
    /// value per lane (in record order) to `values`, and clears the lanes.
    ///
    /// Delegates to [`resolve_pen_lanes`]: chunks whose lanes agree on the
    /// pen code and comparison run a branch-free elementwise distance
    /// kernel over the SoA operand arrays (the loops auto-vectorize);
    /// divergent chunks fall back to the scalar per-lane resolve. Either
    /// path computes exactly the `distance` call the eager path would have
    /// kept, bit for bit.
    pub fn finalize_into(&mut self, values: &mut Vec<f64>) {
        let epsilon = self.epsilon();
        let lanes = self.lanes;
        resolve_pen_lanes(
            &self.codes[..lanes],
            &self.ops[..lanes],
            &self.lhs[..lanes],
            &self.rhs[..lanes],
            epsilon,
            values,
        );
        self.lanes = 0;
    }

    /// Evaluates `FOO_R` over a whole batch: points are packed into
    /// [`LANE_WIDTH`]-wide chunks, each chunk recorded lane by lane and
    /// finalized in lockstep. One value per point is appended to `values`
    /// in input order; `values` is not cleared.
    ///
    /// # Panics
    ///
    /// Panics if lanes were recorded but not yet finalized.
    pub fn eval_batch<P: Program + ?Sized>(
        &mut self,
        program: &P,
        points: &[Vec<f64>],
        values: &mut Vec<f64>,
    ) {
        assert_eq!(self.lanes, 0, "eval_batch with unfinalized lanes pending");
        values.reserve(points.len());
        for chunk in points.chunks(LANE_WIDTH) {
            for point in chunk {
                self.record(program, point);
            }
            self.finalize_into(values);
        }
    }
}

impl Default for LaneCtx {
    fn default() -> LaneCtx {
        LaneCtx::new(BranchSet::new())
    }
}

/// Builds the per-site `pen` dispatch table for a saturation snapshot: one
/// [`pen_code`] byte per site, indexed by site id. Sites past the table's
/// end are [`pen_code::OPEN`] (a lookup should default to `OPEN`, exactly
/// like the deferred [`ExecCtx`] does).
///
/// This is the table an out-of-crate lane executor gathers from per
/// conditional; it matches the deferred context's internal table bit for
/// bit (same `|=` accumulation, so a site saturated on both sides lands on
/// [`pen_code::KEEP`]).
pub fn pen_code_table(saturated: &BranchSet) -> Vec<u8> {
    let mut codes = Vec::new();
    if let Some(max_site) = saturated.iter().map(|b| b.site).max() {
        codes.resize(max_site as usize + 1, pen_code::OPEN);
        for branch in saturated.iter() {
            codes[branch.site as usize] |= match branch.direction {
                Direction::True => pen_code::TRUE_SATURATED,
                Direction::False => pen_code::FALSE_SATURATED,
            };
        }
    }
    codes
}

/// Resolves one pending penalty event — the scalar counterpart of
/// [`resolve_pen_lanes`], bit-identical to the last live `pen` of an eager
/// execution.
///
/// # Panics
///
/// Panics if `code` is [`pen_code::KEEP`] (a kept event is never pending).
pub fn resolve_pen(code: u8, op: Cmp, lhs: f64, rhs: f64, epsilon: f64) -> f64 {
    PendingPen { code, op, lhs, rhs }.resolve(epsilon)
}

/// Resolves a structure-of-arrays batch of pending penalty events,
/// appending one value per event (in order) to `values`.
///
/// The batch is processed in [`LANE_WIDTH`]-wide chunks. A chunk whose
/// lanes all carry the same pen code and comparison operator — the common
/// case, since a batch usually probes one program around one target — runs
/// a single branch-free elementwise kernel over the operand slices, which
/// the compiler auto-vectorizes. Mixed chunks resolve lane by lane. Both
/// paths compute exactly [`crate::distance`] on the recorded operands, so
/// values are bit-identical to scalar resolution whichever path runs.
///
/// # Panics
///
/// Panics if the slice lengths disagree or a code is [`pen_code::KEEP`].
pub fn resolve_pen_lanes(
    codes: &[u8],
    ops: &[Cmp],
    lhs: &[f64],
    rhs: &[f64],
    epsilon: f64,
    values: &mut Vec<f64>,
) {
    let n = codes.len();
    assert!(
        ops.len() == n && lhs.len() == n && rhs.len() == n,
        "SoA slice lengths disagree"
    );
    values.reserve(n);
    let mut start = 0;
    while start < n {
        let end = (start + LANE_WIDTH).min(n);
        let code = codes[start];
        let op = ops[start];
        let uniform = codes[start..end].iter().all(|&c| c == code)
            && ops[start..end].iter().all(|&o| o == op);
        if uniform && code != pen_code::KEEP {
            let mut chunk = [0.0; LANE_WIDTH];
            let out = &mut chunk[..end - start];
            match code {
                pen_code::IDLE => out.fill(1.0),
                pen_code::OPEN => out.fill(0.0),
                pen_code::FALSE_SATURATED => {
                    distance_chunk(op, &lhs[start..end], &rhs[start..end], epsilon, out);
                }
                pen_code::TRUE_SATURATED => {
                    distance_chunk(
                        op.negate(),
                        &lhs[start..end],
                        &rhs[start..end],
                        epsilon,
                        out,
                    );
                }
                _ => unreachable!(),
            }
            values.extend_from_slice(out);
        } else {
            for lane in start..end {
                values.push(resolve_pen(
                    codes[lane],
                    ops[lane],
                    lhs[lane],
                    rhs[lane],
                    epsilon,
                ));
            }
        }
        start = end;
    }
}

/// Elementwise `distance(op, a[k], b[k], ε)` over one chunk, written as
/// straight-line select chains so the loops vectorize. Bit-exact with
/// [`crate::distance`]: the NaN rule is applied as a final select, and
/// `square`'s overflow saturation to `f64::MAX` is reproduced.
fn distance_chunk(op: Cmp, a: &[f64], b: &[f64], epsilon: f64, out: &mut [f64]) {
    // Ge/Gt are defined by operand swap (Definition 4.1); fold them onto
    // the Le/Lt kernels exactly as the scalar implementation does.
    match op {
        Cmp::Ge => return distance_chunk(Cmp::Le, b, a, epsilon, out),
        Cmp::Gt => return distance_chunk(Cmp::Lt, b, a, epsilon, out),
        _ => {}
    }
    let n = out.len();
    match op {
        Cmp::Eq => {
            for k in 0..n {
                let d = a[k] - b[k];
                let sq = d * d;
                let sq = if sq.is_infinite() { f64::MAX } else { sq };
                out[k] = if a[k].is_nan() || b[k].is_nan() {
                    f64::INFINITY
                } else {
                    sq
                };
            }
        }
        Cmp::Le => {
            for k in 0..n {
                let d = a[k] - b[k];
                let sq = d * d;
                let sq = if sq.is_infinite() { f64::MAX } else { sq };
                let v = if a[k] <= b[k] { 0.0 } else { sq };
                out[k] = if a[k].is_nan() || b[k].is_nan() {
                    f64::INFINITY
                } else {
                    v
                };
            }
        }
        Cmp::Lt => {
            for k in 0..n {
                let d = a[k] - b[k];
                let sq = d * d;
                let sq = if sq.is_infinite() { f64::MAX } else { sq };
                let v = if a[k] < b[k] { 0.0 } else { sq + epsilon };
                out[k] = if a[k].is_nan() || b[k].is_nan() {
                    f64::INFINITY
                } else {
                    v
                };
            }
        }
        Cmp::Ne => {
            // distance(Ne, NaN, _) is 0 — `a != b` already holds for NaN,
            // so the generic select covers the NaN rule too.
            for k in 0..n {
                out[k] = if a[k] != b[k] { 0.0 } else { epsilon };
            }
        }
        Cmp::Ge | Cmp::Gt => unreachable!("folded onto Le/Lt above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::BranchId;
    use crate::distance::DEFAULT_EPSILON;
    use crate::program::FnProgram;

    /// The paper's Fig. 3 program with `square` inlined.
    fn paper_example() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
        FnProgram::new("FOO", 1, 2, |input: &[f64], ctx: &mut ExecCtx| {
            let mut x = input[0];
            if ctx.branch(0, Cmp::Le, x, 1.0) {
                x += 2.5;
            }
            let y = x * x;
            if ctx.branch(1, Cmp::Eq, y, 4.0) {
                // target
            }
        })
    }

    fn snapshots() -> Vec<BranchSet> {
        vec![
            BranchSet::new(),
            [BranchId::false_of(1)].into_iter().collect(),
            [BranchId::true_of(0), BranchId::false_of(1)]
                .into_iter()
                .collect(),
            [
                BranchId::true_of(0),
                BranchId::false_of(0),
                BranchId::true_of(1),
                BranchId::false_of(1),
            ]
            .into_iter()
            .collect(),
        ]
    }

    #[test]
    fn lane_values_match_eager_execution_bit_for_bit() {
        let program = paper_example();
        for saturated in snapshots() {
            let mut lane = LaneCtx::new(saturated.clone());
            let points: Vec<Vec<f64>> = (0..23).map(|i| vec![i as f64 * 0.61 - 7.0]).collect();
            let mut values = Vec::new();
            lane.eval_batch(&program, &points, &mut values);
            assert_eq!(values.len(), points.len());
            for (point, value) in points.iter().zip(&values) {
                let mut eager = ExecCtx::representing(saturated.clone());
                program.execute(point, &mut eager);
                assert_eq!(
                    value.to_bits(),
                    eager.representing_value().to_bits(),
                    "snapshot {saturated:?}, point {point:?}"
                );
            }
        }
    }

    #[test]
    fn deferred_context_matches_eager_on_specials() {
        let program = paper_example();
        let saturated: BranchSet = [BranchId::false_of(1)].into_iter().collect();
        let mut deferred = ExecCtx::representing(saturated.clone()).deferred_pen();
        for x in [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            1e300,
            5e-324,
        ] {
            deferred.reset();
            program.execute(&[x], &mut deferred);
            let mut eager = ExecCtx::representing(saturated.clone());
            program.execute(&[x], &mut eager);
            assert_eq!(
                deferred.representing_value().to_bits(),
                eager.representing_value().to_bits(),
                "x = {x}"
            );
        }
    }

    #[test]
    fn record_and_finalize_clear_the_lanes() {
        let program = paper_example();
        let mut lane = LaneCtx::new(BranchSet::new());
        assert!(lane.is_empty());
        lane.record(&program, &[0.5]);
        lane.record(&program, &[2.0]);
        assert_eq!(lane.lanes(), 2);
        let mut values = Vec::new();
        lane.finalize_into(&mut values);
        assert_eq!(values, vec![0.0, 0.0]);
        assert!(lane.is_empty());
    }

    #[test]
    fn retarget_changes_the_target_snapshot() {
        let program = paper_example();
        let mut lane = LaneCtx::new(BranchSet::new());
        let mut values = Vec::new();
        lane.eval_batch(&program, &[vec![0.3]], &mut values);
        assert_eq!(values, vec![0.0]);
        lane.retarget([BranchId::false_of(1)].into_iter().collect());
        values.clear();
        lane.eval_batch(&program, &[vec![0.3]], &mut values);
        assert!(values[0] > 0.0);
    }

    #[test]
    fn partially_filled_last_chunk_is_finalized() {
        let program = paper_example();
        let mut lane = LaneCtx::new(BranchSet::new());
        let points: Vec<Vec<f64>> = (0..LANE_WIDTH + 3).map(|i| vec![i as f64]).collect();
        let mut values = Vec::new();
        lane.eval_batch(&program, &points, &mut values);
        assert_eq!(values.len(), LANE_WIDTH + 3);
    }

    #[test]
    #[should_panic(expected = "all lanes filled")]
    fn overfilling_the_lanes_panics() {
        let program = paper_example();
        let mut lane = LaneCtx::new(BranchSet::new());
        for i in 0..=LANE_WIDTH {
            lane.record(&program, &[i as f64]);
        }
    }

    #[test]
    fn custom_epsilon_reaches_the_finalize() {
        let program = paper_example();
        // Both branches of site 1 saturated on one side only matters with
        // an equality op; use a snapshot whose pen goes through distance.
        let saturated: BranchSet = [BranchId::true_of(1)].into_iter().collect();
        for epsilon in [DEFAULT_EPSILON, 0.25, 2.0] {
            let mut lane = LaneCtx::new(saturated.clone()).with_epsilon(epsilon);
            let mut values = Vec::new();
            lane.eval_batch(&program, &[vec![2.0]], &mut values);
            let mut eager = ExecCtx::representing(saturated.clone()).with_epsilon(epsilon);
            program.execute(&[2.0], &mut eager);
            assert_eq!(values[0].to_bits(), eager.representing_value().to_bits());
        }
    }
}
