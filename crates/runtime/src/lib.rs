//! Instrumentation runtime for branch-coverage testing of floating-point code.
//!
//! The CoverMe approach (Fu & Su, PLDI 2017) instruments the program under
//! test `FOO` by injecting, immediately before every conditional statement
//! `l_i` with condition `a op b`, the assignment `r = pen(l_i, op, a, b)`.
//! The *representing function* `FOO_R` then sets `r = 1`, runs the
//! instrumented program and returns `r`. This crate provides everything that
//! instrumented execution needs, independent of how the instrumentation is
//! achieved (the `coverme-fpir` crate rewrites ASTs of a C-like mini
//! language; the `coverme-fdlibm` crate uses hand-instrumented Rust ports):
//!
//! * [`Cmp`] and [`distance`] — the branch-distance family `d_ε(op, a, b)`
//!   of Definition 4.1,
//! * [`pen`] — the penalty function of Definition 4.2,
//! * [`BranchId`]/[`BranchSet`] — identities and sets of branches,
//! * [`ExecCtx`] — the per-execution context that records coverage, the
//!   taken-branch trace, and (in representing mode) the value of `r`,
//! * [`Program`] — the trait every testable program implements,
//! * [`CoverageMap`] — accumulated branch and block coverage, the stand-in
//!   for Gcov in the evaluation harnesses.
//!
//! # Example: instrumenting a function by hand
//!
//! ```
//! use coverme_runtime::{Cmp, ExecCtx, FnProgram, Program};
//!
//! // The program of Fig. 3 in the paper:
//! //   l0: if (x <= 1) { x += 2.5; }
//! //       y = square(x);
//! //   l1: if (y == 4)  { ... }
//! let foo = FnProgram::new("FOO", 1, 2, |input: &[f64], ctx: &mut ExecCtx| {
//!     let mut x = input[0];
//!     if ctx.branch(0, Cmp::Le, x, 1.0) {
//!         x += 2.5;
//!     }
//!     let y = x * x;
//!     if ctx.branch(1, Cmp::Eq, y, 4.0) {
//!         // target branch
//!     }
//! });
//!
//! let mut ctx = ExecCtx::observe();
//! foo.execute(&[0.7], &mut ctx);
//! assert_eq!(ctx.trace().len(), 2);
//! ```

// `unsafe` is denied crate-wide and allowed in exactly one module: the
// feature-gated SIMD intrinsic kernels of `simd`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod branch;
pub mod context;
pub mod coverage;
pub mod distance;
pub mod lane;
pub mod pen;
pub mod program;
pub mod simd;
pub mod trace;

pub use backend::{BackendMode, ExecBackend, InterpBackend, LaneEval};
pub use branch::{BranchId, BranchSet, Direction, SiteId};
pub use context::{pen_code, ExecCtx, ExecMode, RunOutcome};
pub use coverage::{CoverageMap, CoverageSummary};
pub use distance::{distance, Cmp, DEFAULT_EPSILON};
pub use lane::{
    pen_code_table, resolve_pen, resolve_pen_lanes, resolve_pen_lanes_with, LaneCtx, LANE_WIDTH,
    MIN_LANE_BATCH,
};
pub use pen::{pen, SiteSaturation};
pub use program::{fingerprint_bytes, fingerprint_seed, native_fingerprint, FnProgram, Program};
pub use simd::{SimdIsa, SIMD_ENV_VAR};
pub use trace::{TakenBranch, Trace};
