//! Execution traces: the ordered list of branch decisions taken by one run.
//!
//! Traces serve three consumers:
//!
//! * the CoverMe driver's *infeasible branch heuristic* (Sect. 5.3 of the
//!   paper) needs the **last** conditional a minimizing input passed through,
//! * the dynamic descendant analysis used for saturation of native (non-IR)
//!   programs learns "control flow can reach `b'` after `b`" facts from
//!   traces,
//! * the AFL-style baseline hashes consecutive pairs of decisions into its
//!   edge-coverage bitmap.

use crate::branch::{BranchId, Direction, SiteId};
use crate::distance::Cmp;

/// One branch decision made during an execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TakenBranch {
    /// The conditional site that was evaluated.
    pub site: SiteId,
    /// Which side was taken.
    pub direction: Direction,
    /// The comparison operator at the site.
    pub op: Cmp,
    /// Left operand value at the moment of the comparison.
    pub lhs: f64,
    /// Right operand value at the moment of the comparison.
    pub rhs: f64,
}

impl TakenBranch {
    /// The branch that was taken.
    pub fn branch(&self) -> BranchId {
        BranchId {
            site: self.site,
            direction: self.direction,
        }
    }

    /// The branch that was *not* taken at this site during this execution.
    pub fn untaken_branch(&self) -> BranchId {
        self.branch().sibling()
    }
}

/// The ordered sequence of branch decisions of a single execution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    events: Vec<TakenBranch>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends a decision to the trace.
    pub fn push(&mut self, event: TakenBranch) {
        self.events.push(event);
    }

    /// Number of decisions recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no decision was recorded (straight-line execution).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The last decision of the run, if any. This is the "last conditional"
    /// the infeasible-branch heuristic inspects.
    pub fn last(&self) -> Option<&TakenBranch> {
        self.events.last()
    }

    /// Iterates over the decisions in execution order.
    pub fn iter(&self) -> std::slice::Iter<'_, TakenBranch> {
        self.events.iter()
    }

    /// Set of branches covered by this trace (unordered, deduplicated).
    pub fn covered_branches(&self) -> impl Iterator<Item = BranchId> + '_ {
        self.events.iter().map(TakenBranch::branch)
    }

    /// Iterates over consecutive `(from, to)` branch pairs — the edges an
    /// AFL-style fuzzer counts. The function entry is modelled as an implicit
    /// predecessor of the first decision by pairing it with `None`.
    pub fn edges(&self) -> impl Iterator<Item = (Option<BranchId>, BranchId)> + '_ {
        let firsts = std::iter::once(None).chain(self.events.iter().map(|e| Some(e.branch())));
        firsts.zip(self.events.iter().map(TakenBranch::branch))
    }

    /// Clears the trace for reuse.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TakenBranch;
    type IntoIter = std::slice::Iter<'a, TakenBranch>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(site: SiteId, taken: bool) -> TakenBranch {
        TakenBranch {
            site,
            direction: Direction::from_outcome(taken),
            op: Cmp::Le,
            lhs: 0.0,
            rhs: 1.0,
        }
    }

    #[test]
    fn push_and_len() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(event(0, true));
        t.push(event(1, false));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn last_is_the_final_decision() {
        let mut t = Trace::new();
        t.push(event(0, true));
        t.push(event(3, false));
        let last = t.last().unwrap();
        assert_eq!(last.site, 3);
        assert_eq!(last.direction, Direction::False);
        assert_eq!(last.untaken_branch(), BranchId::true_of(3));
    }

    #[test]
    fn covered_branches_map_events() {
        let mut t = Trace::new();
        t.push(event(0, true));
        t.push(event(1, false));
        t.push(event(0, true));
        let covered: Vec<BranchId> = t.covered_branches().collect();
        assert_eq!(
            covered,
            vec![
                BranchId::true_of(0),
                BranchId::false_of(1),
                BranchId::true_of(0)
            ]
        );
    }

    #[test]
    fn edges_include_entry_edge() {
        let mut t = Trace::new();
        t.push(event(0, true));
        t.push(event(1, true));
        let edges: Vec<_> = t.edges().collect();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0], (None, BranchId::true_of(0)));
        assert_eq!(edges[1], (Some(BranchId::true_of(0)), BranchId::true_of(1)));
    }

    #[test]
    fn clear_resets_the_trace() {
        let mut t = Trace::new();
        t.push(event(0, true));
        t.clear();
        assert!(t.is_empty());
        assert!(t.last().is_none());
    }

    #[test]
    fn trace_iterates_in_order() {
        let mut t = Trace::new();
        for site in 0..5 {
            t.push(event(site, site % 2 == 0));
        }
        let sites: Vec<SiteId> = (&t).into_iter().map(|e| e.site).collect();
        assert_eq!(sites, vec![0, 1, 2, 3, 4]);
    }
}
