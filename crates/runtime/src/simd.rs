//! Runtime SIMD dispatch for the lane kernels.
//!
//! The lane backend's finalize (one branch distance per lane over
//! structure-of-array operand buffers, [`crate::lane`]) and the FPIR tape's
//! straight-line SoA block kernels are the two genuinely data-parallel hot
//! loops of the system. Stable rustc has no `core::simd`, so this module
//! provides hand-written SSE2/AVX2 intrinsic kernels behind runtime
//! [`is_x86_feature_detected!`] dispatch, plus a portable scalar fallback
//! that is the semantic reference on every architecture.
//!
//! # Dispatch
//!
//! The active ISA is resolved in priority order:
//!
//! 1. a process-wide forced ISA installed by [`SimdIsa::force`] (the CLIs'
//!    `--simd` flag),
//! 2. the `COVERME_SIMD` environment variable (`portable|sse2|avx2`,
//!    empty = unset; read once per process),
//! 3. the best ISA the CPU supports ([`SimdIsa::detect`]).
//!
//! Long-lived evaluation structures ([`crate::LaneCtx`], the exec
//! backends) snapshot the active ISA at construction and can be overridden
//! per instance, so tests exercise every path without racing on global
//! state.
//!
//! # Bit-exactness
//!
//! Every kernel computes exactly the scalar formula on each lane: IEEE 754
//! add/sub/mul/div are correctly rounded in both scalar and packed form,
//! the compare-and-select chains mirror the scalar branch structure, and
//! NaN handling uses unordered compares that match the scalar `is_nan`
//! rules. The differential suites (`lane_properties`, `tape_properties`)
//! pin `portable == sse2 == avx2` bit for bit over generated corpora
//! including NaN/inf operands.

// Intrinsic calls are the one place this crate needs `unsafe`. Every
// `unsafe` block here is a feature-gated intrinsic call on slices whose
// bounds the safe wrappers check.
#![allow(unsafe_code)]

use crate::distance::Cmp;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// The environment variable that forces a SIMD ISA (`portable|sse2|avx2`;
/// unset or empty means "auto-detect").
pub const SIMD_ENV_VAR: &str = "COVERME_SIMD";

/// A SIMD instruction-set choice for the lane kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdIsa {
    /// Scalar Rust loops — the reference semantics, available everywhere.
    Portable,
    /// 128-bit SSE2 kernels (x86-64 baseline, 2 doubles per op).
    Sse2,
    /// 256-bit AVX2 kernels (4 doubles per op), detected at runtime.
    Avx2,
}

/// Forced process-wide ISA: 0 = unset, else `discriminant + 1`.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// The `COVERME_SIMD` value, parsed once per process.
static FROM_ENV: OnceLock<Option<SimdIsa>> = OnceLock::new();

impl SimdIsa {
    /// Every ISA, in increasing width order.
    pub const ALL: [SimdIsa; 3] = [SimdIsa::Portable, SimdIsa::Sse2, SimdIsa::Avx2];

    /// Stable lowercase label (CLI flags, report JSON).
    pub fn label(self) -> &'static str {
        match self {
            SimdIsa::Portable => "portable",
            SimdIsa::Sse2 => "sse2",
            SimdIsa::Avx2 => "avx2",
        }
    }

    /// Parses a CLI-style label (the inverse of [`label`](Self::label)).
    pub fn parse(s: &str) -> Option<SimdIsa> {
        match s {
            "portable" => Some(SimdIsa::Portable),
            "sse2" => Some(SimdIsa::Sse2),
            "avx2" => Some(SimdIsa::Avx2),
            _ => None,
        }
    }

    /// Whether this machine can execute the ISA's kernels.
    pub fn is_supported(self) -> bool {
        match self {
            SimdIsa::Portable => true,
            #[cfg(target_arch = "x86_64")]
            SimdIsa::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            SimdIsa::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// The ISAs this machine supports, in increasing width order.
    pub fn supported() -> Vec<SimdIsa> {
        SimdIsa::ALL
            .into_iter()
            .filter(|isa| isa.is_supported())
            .collect()
    }

    /// The widest ISA the CPU supports.
    pub fn detect() -> SimdIsa {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") {
                SimdIsa::Avx2
            } else {
                SimdIsa::Sse2
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        SimdIsa::Portable
    }

    /// The lane width the finalize packs under this ISA: how many `f64`
    /// evaluations are resolved per lockstep chunk. Portable and SSE2 keep
    /// the historical width of 8; AVX2 widens to 16 (four 256-bit
    /// registers per operand array, enough to hide the select-chain
    /// latency).
    pub fn lane_width(self) -> usize {
        match self {
            SimdIsa::Portable | SimdIsa::Sse2 => 8,
            SimdIsa::Avx2 => 16,
        }
    }

    /// Parses [`SIMD_ENV_VAR`]. `Ok(None)` when unset or empty; an error
    /// message (for CLI usage errors) when the value is not a known label.
    pub fn from_env() -> Result<Option<SimdIsa>, String> {
        match std::env::var(SIMD_ENV_VAR) {
            Ok(value) if value.is_empty() => Ok(None),
            Ok(value) => SimdIsa::parse(&value)
                .map(Some)
                .ok_or_else(|| format!("{SIMD_ENV_VAR}={value}: expected portable, sse2 or avx2")),
            Err(_) => Ok(None),
        }
    }

    /// Forces the process-wide active ISA (the CLIs' `--simd` knob).
    /// Errors when the machine cannot execute the ISA.
    pub fn force(isa: SimdIsa) -> Result<(), String> {
        if !isa.is_supported() {
            return Err(format!(
                "SIMD ISA '{}' is not supported on this machine",
                isa.label()
            ));
        }
        FORCED.store(isa as u8 + 1, Ordering::Relaxed);
        Ok(())
    }

    /// The currently forced ISA, if any.
    pub fn forced() -> Option<SimdIsa> {
        match FORCED.load(Ordering::Relaxed) {
            1 => Some(SimdIsa::Portable),
            2 => Some(SimdIsa::Sse2),
            3 => Some(SimdIsa::Avx2),
            _ => None,
        }
    }

    /// Resolves the active ISA: forced, else `COVERME_SIMD`, else
    /// [`detect`](Self::detect). An environment value naming an ISA this
    /// machine cannot run falls back to detection (the CLIs reject it
    /// with a usage error before getting here).
    pub fn active() -> SimdIsa {
        if let Some(isa) = SimdIsa::forced() {
            return isa;
        }
        let from_env = *FROM_ENV.get_or_init(|| SimdIsa::from_env().ok().flatten());
        match from_env {
            Some(isa) if isa.is_supported() => isa,
            _ => SimdIsa::detect(),
        }
    }
}

impl std::fmt::Display for SimdIsa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Elementwise branch distance `d_ε(op, a[k], b[k])` (Definition 4.1) over
/// SoA operand slices, dispatched to the chosen ISA's kernel. All three
/// ISAs produce bit-identical output; `Ge`/`Gt` are folded onto `Le`/`Lt`
/// by operand swap exactly like the scalar implementation.
///
/// # Panics
///
/// Panics if the slice lengths disagree, or (debug only) if `isa` is not
/// supported on this machine.
pub fn distance_lanes(isa: SimdIsa, op: Cmp, a: &[f64], b: &[f64], epsilon: f64, out: &mut [f64]) {
    // Definition 4.1 defines Ge/Gt by operand swap; fold them first so the
    // kernels only see Eq/Ne/Le/Lt.
    match op {
        Cmp::Ge => return distance_lanes(isa, Cmp::Le, b, a, epsilon, out),
        Cmp::Gt => return distance_lanes(isa, Cmp::Lt, b, a, epsilon, out),
        _ => {}
    }
    let n = out.len();
    assert!(a.len() == n && b.len() == n, "SoA slice lengths disagree");
    debug_assert!(isa.is_supported(), "unsupported ISA {isa:?}");
    match isa {
        SimdIsa::Portable => portable::distance(op, a, b, epsilon, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline.
        SimdIsa::Sse2 => unsafe { x86::distance_sse2(op, a, b, epsilon, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `is_supported` (checked by `force`/`with_simd` at ISA
        // selection time, re-asserted above in debug builds) verified AVX2.
        SimdIsa::Avx2 => unsafe { x86::distance_avx2(op, a, b, epsilon, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => portable::distance(op, a, b, epsilon, out),
    }
}

/// An elementwise binary vector operation over `f64` lanes. Only the four
/// IEEE arithmetic ops appear here — they are correctly rounded, so every
/// ISA produces identical bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VecBin {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
}

/// Elementwise `out[k] = a[k] <op> b[k]` dispatched to the ISA's kernel.
/// Bit-identical across ISAs (IEEE basic operations are exactly rounded).
///
/// # Panics
///
/// Panics if the slice lengths disagree.
pub fn vec_bin(isa: SimdIsa, op: VecBin, a: &[f64], b: &[f64], out: &mut [f64]) {
    let n = out.len();
    assert!(a.len() == n && b.len() == n, "SoA slice lengths disagree");
    match isa {
        SimdIsa::Portable => portable::bin(op, a, b, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline.
        SimdIsa::Sse2 => unsafe { x86::bin_sse2(op, a, b, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 availability established at ISA selection time.
        SimdIsa::Avx2 => unsafe { x86::bin_avx2(op, a, b, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => portable::bin(op, a, b, out),
    }
}

/// Elementwise IEEE negate (`out[k] = -a[k]`, a sign-bit flip — also on
/// NaN), dispatched to the ISA's kernel.
///
/// # Panics
///
/// Panics if the slice lengths disagree.
pub fn vec_neg(isa: SimdIsa, a: &[f64], out: &mut [f64]) {
    let n = out.len();
    assert!(a.len() == n, "SoA slice lengths disagree");
    match isa {
        SimdIsa::Portable => portable::neg(a, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline.
        SimdIsa::Sse2 => unsafe { x86::neg_sse2(a, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 availability established at ISA selection time.
        SimdIsa::Avx2 => unsafe { x86::neg_avx2(a, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => portable::neg(a, out),
    }
}

/// The scalar reference kernels. These are the exact loops the pre-SIMD
/// lane backend ran; the intrinsic kernels must match them bit for bit.
mod portable {
    use super::VecBin;
    use crate::distance::Cmp;

    /// Elementwise Definition 4.1 distance, written as straight-line
    /// select chains (the NaN rule applied as a final select, `square`'s
    /// overflow saturation to `f64::MAX` reproduced).
    pub fn distance(op: Cmp, a: &[f64], b: &[f64], epsilon: f64, out: &mut [f64]) {
        let n = out.len();
        match op {
            Cmp::Eq => {
                for k in 0..n {
                    let d = a[k] - b[k];
                    let sq = d * d;
                    let sq = if sq.is_infinite() { f64::MAX } else { sq };
                    out[k] = if a[k].is_nan() || b[k].is_nan() {
                        f64::INFINITY
                    } else {
                        sq
                    };
                }
            }
            Cmp::Le => {
                for k in 0..n {
                    let d = a[k] - b[k];
                    let sq = d * d;
                    let sq = if sq.is_infinite() { f64::MAX } else { sq };
                    let v = if a[k] <= b[k] { 0.0 } else { sq };
                    out[k] = if a[k].is_nan() || b[k].is_nan() {
                        f64::INFINITY
                    } else {
                        v
                    };
                }
            }
            Cmp::Lt => {
                for k in 0..n {
                    let d = a[k] - b[k];
                    let sq = d * d;
                    let sq = if sq.is_infinite() { f64::MAX } else { sq };
                    let v = if a[k] < b[k] { 0.0 } else { sq + epsilon };
                    out[k] = if a[k].is_nan() || b[k].is_nan() {
                        f64::INFINITY
                    } else {
                        v
                    };
                }
            }
            Cmp::Ne => {
                // distance(Ne, NaN, _) is 0 — `a != b` already holds for
                // NaN, so the generic select covers the NaN rule too.
                for k in 0..n {
                    out[k] = if a[k] != b[k] { 0.0 } else { epsilon };
                }
            }
            Cmp::Ge | Cmp::Gt => unreachable!("folded onto Le/Lt by the dispatcher"),
        }
    }

    pub fn bin(op: VecBin, a: &[f64], b: &[f64], out: &mut [f64]) {
        match op {
            VecBin::Add => {
                for k in 0..out.len() {
                    out[k] = a[k] + b[k];
                }
            }
            VecBin::Sub => {
                for k in 0..out.len() {
                    out[k] = a[k] - b[k];
                }
            }
            VecBin::Mul => {
                for k in 0..out.len() {
                    out[k] = a[k] * b[k];
                }
            }
            VecBin::Div => {
                for k in 0..out.len() {
                    out[k] = a[k] / b[k];
                }
            }
        }
    }

    pub fn neg(a: &[f64], out: &mut [f64]) {
        for k in 0..out.len() {
            out[k] = -a[k];
        }
    }
}

/// The x86-64 intrinsic kernels. Each processes full vectors and hands the
/// tail lanes to the portable kernel (bit-identical by construction, so
/// mixing widths within one slice is invisible).
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{portable, VecBin};
    use crate::distance::Cmp;
    use core::arch::x86_64::*;

    /// `mask ? yes : no` per lane; SSE2 has no `blendv`, so the classic
    /// and/andnot/or idiom (compare masks are all-ones or all-zeros).
    #[inline(always)]
    unsafe fn select_sse2(mask: __m128d, yes: __m128d, no: __m128d) -> __m128d {
        _mm_or_pd(_mm_and_pd(mask, yes), _mm_andnot_pd(mask, no))
    }

    /// # Safety
    /// Caller must ensure SSE2 (x86-64 baseline) and equal slice lengths.
    #[target_feature(enable = "sse2")]
    pub unsafe fn distance_sse2(op: Cmp, a: &[f64], b: &[f64], epsilon: f64, out: &mut [f64]) {
        let n = out.len();
        let inf = _mm_set1_pd(f64::INFINITY);
        let max = _mm_set1_pd(f64::MAX);
        let zero = _mm_setzero_pd();
        let eps = _mm_set1_pd(epsilon);
        let mut k = 0;
        while k + 2 <= n {
            let va = _mm_loadu_pd(a.as_ptr().add(k));
            let vb = _mm_loadu_pd(b.as_ptr().add(k));
            let v = if op == Cmp::Ne {
                // `a != b` (true for NaN, matching the scalar rule) selects
                // 0.0; equal lanes get ε.
                _mm_andnot_pd(_mm_cmpneq_pd(va, vb), eps)
            } else {
                let d = _mm_sub_pd(va, vb);
                let sq = _mm_mul_pd(d, d);
                // square() saturation: sq can only overflow to +inf.
                let sq = select_sse2(_mm_cmpeq_pd(sq, inf), max, sq);
                let nan = _mm_cmpunord_pd(va, vb);
                let v = match op {
                    Cmp::Eq => sq,
                    Cmp::Le => _mm_andnot_pd(_mm_cmple_pd(va, vb), sq),
                    Cmp::Lt => select_sse2(_mm_cmplt_pd(va, vb), zero, _mm_add_pd(sq, eps)),
                    _ => unreachable!("dispatcher folds Ge/Gt and handles Ne"),
                };
                select_sse2(nan, inf, v)
            };
            _mm_storeu_pd(out.as_mut_ptr().add(k), v);
            k += 2;
        }
        if k < n {
            portable::distance(op, &a[k..n], &b[k..n], epsilon, &mut out[k..n]);
        }
    }

    #[inline(always)]
    unsafe fn select_avx(mask: __m256d, yes: __m256d, no: __m256d) -> __m256d {
        _mm256_blendv_pd(no, yes, mask)
    }

    /// # Safety
    /// Caller must ensure AVX2 is available and slice lengths are equal.
    #[target_feature(enable = "avx2")]
    pub unsafe fn distance_avx2(op: Cmp, a: &[f64], b: &[f64], epsilon: f64, out: &mut [f64]) {
        let n = out.len();
        let inf = _mm256_set1_pd(f64::INFINITY);
        let max = _mm256_set1_pd(f64::MAX);
        let zero = _mm256_setzero_pd();
        let eps = _mm256_set1_pd(epsilon);
        let mut k = 0;
        while k + 4 <= n {
            let va = _mm256_loadu_pd(a.as_ptr().add(k));
            let vb = _mm256_loadu_pd(b.as_ptr().add(k));
            let v = if op == Cmp::Ne {
                let neq = _mm256_cmp_pd::<_CMP_NEQ_UQ>(va, vb);
                _mm256_andnot_pd(neq, eps)
            } else {
                let d = _mm256_sub_pd(va, vb);
                let sq = _mm256_mul_pd(d, d);
                let sq = select_avx(_mm256_cmp_pd::<_CMP_EQ_OQ>(sq, inf), max, sq);
                let nan = _mm256_cmp_pd::<_CMP_UNORD_Q>(va, vb);
                let v = match op {
                    Cmp::Eq => sq,
                    Cmp::Le => _mm256_andnot_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(va, vb), sq),
                    Cmp::Lt => select_avx(
                        _mm256_cmp_pd::<_CMP_LT_OQ>(va, vb),
                        zero,
                        _mm256_add_pd(sq, eps),
                    ),
                    _ => unreachable!("dispatcher folds Ge/Gt and handles Ne"),
                };
                select_avx(nan, inf, v)
            };
            _mm256_storeu_pd(out.as_mut_ptr().add(k), v);
            k += 4;
        }
        if k < n {
            portable::distance(op, &a[k..n], &b[k..n], epsilon, &mut out[k..n]);
        }
    }

    /// # Safety
    /// Caller must ensure SSE2 (x86-64 baseline) and equal slice lengths.
    #[target_feature(enable = "sse2")]
    pub unsafe fn bin_sse2(op: VecBin, a: &[f64], b: &[f64], out: &mut [f64]) {
        let n = out.len();
        let mut k = 0;
        while k + 2 <= n {
            let va = _mm_loadu_pd(a.as_ptr().add(k));
            let vb = _mm_loadu_pd(b.as_ptr().add(k));
            let v = match op {
                VecBin::Add => _mm_add_pd(va, vb),
                VecBin::Sub => _mm_sub_pd(va, vb),
                VecBin::Mul => _mm_mul_pd(va, vb),
                VecBin::Div => _mm_div_pd(va, vb),
            };
            _mm_storeu_pd(out.as_mut_ptr().add(k), v);
            k += 2;
        }
        if k < n {
            portable::bin(op, &a[k..n], &b[k..n], &mut out[k..n]);
        }
    }

    /// # Safety
    /// Caller must ensure AVX2 is available and slice lengths are equal.
    #[target_feature(enable = "avx2")]
    pub unsafe fn bin_avx2(op: VecBin, a: &[f64], b: &[f64], out: &mut [f64]) {
        let n = out.len();
        let mut k = 0;
        while k + 4 <= n {
            let va = _mm256_loadu_pd(a.as_ptr().add(k));
            let vb = _mm256_loadu_pd(b.as_ptr().add(k));
            let v = match op {
                VecBin::Add => _mm256_add_pd(va, vb),
                VecBin::Sub => _mm256_sub_pd(va, vb),
                VecBin::Mul => _mm256_mul_pd(va, vb),
                VecBin::Div => _mm256_div_pd(va, vb),
            };
            _mm256_storeu_pd(out.as_mut_ptr().add(k), v);
            k += 4;
        }
        if k < n {
            portable::bin(op, &a[k..n], &b[k..n], &mut out[k..n]);
        }
    }

    /// # Safety
    /// Caller must ensure SSE2 (x86-64 baseline) and equal slice lengths.
    #[target_feature(enable = "sse2")]
    pub unsafe fn neg_sse2(a: &[f64], out: &mut [f64]) {
        let n = out.len();
        let sign = _mm_set1_pd(-0.0);
        let mut k = 0;
        while k + 2 <= n {
            let v = _mm_xor_pd(_mm_loadu_pd(a.as_ptr().add(k)), sign);
            _mm_storeu_pd(out.as_mut_ptr().add(k), v);
            k += 2;
        }
        if k < n {
            portable::neg(&a[k..n], &mut out[k..n]);
        }
    }

    /// # Safety
    /// Caller must ensure AVX2 is available and slice lengths are equal.
    #[target_feature(enable = "avx2")]
    pub unsafe fn neg_avx2(a: &[f64], out: &mut [f64]) {
        let n = out.len();
        let sign = _mm256_set1_pd(-0.0);
        let mut k = 0;
        while k + 4 <= n {
            let v = _mm256_xor_pd(_mm256_loadu_pd(a.as_ptr().add(k)), sign);
            _mm256_storeu_pd(out.as_mut_ptr().add(k), v);
            k += 4;
        }
        if k < n {
            portable::neg(&a[k..n], &mut out[k..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{distance, DEFAULT_EPSILON};

    /// Operand pool covering every special-value interaction the distance
    /// kernels select on: NaN, ±inf (inf−inf produces NaN from non-NaN
    /// operands), overflow squares, ±0, denormals.
    fn pool() -> Vec<f64> {
        vec![
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            -0.0,
            1.0,
            -1.0,
            1e300,
            -1e300,
            5e-324,
            f64::MAX,
            2.5,
            -7.25,
        ]
    }

    #[test]
    fn labels_round_trip_and_reject_unknowns() {
        for isa in SimdIsa::ALL {
            assert_eq!(SimdIsa::parse(isa.label()), Some(isa));
            assert_eq!(isa.to_string(), isa.label());
        }
        assert_eq!(SimdIsa::parse("avx512"), None);
        assert_eq!(SimdIsa::parse(""), None);
    }

    #[test]
    fn portable_is_always_supported_and_detected_isa_is_supported() {
        assert!(SimdIsa::Portable.is_supported());
        assert!(SimdIsa::detect().is_supported());
        assert!(SimdIsa::supported().contains(&SimdIsa::Portable));
        // Widths: the AVX2 finalize packs twice the historical width.
        assert_eq!(SimdIsa::Portable.lane_width(), 8);
        assert_eq!(SimdIsa::Sse2.lane_width(), 8);
        assert_eq!(SimdIsa::Avx2.lane_width(), 16);
    }

    #[test]
    fn every_supported_isa_matches_the_scalar_distance_bit_for_bit() {
        let pool = pool();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for &x in &pool {
            for &y in &pool {
                a.push(x);
                b.push(y);
            }
        }
        for isa in SimdIsa::supported() {
            for op in [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge] {
                for epsilon in [DEFAULT_EPSILON, 0.25, 2.0] {
                    let mut out = vec![0.0; a.len()];
                    distance_lanes(isa, op, &a, &b, epsilon, &mut out);
                    for k in 0..a.len() {
                        let expect = distance(op, a[k], b[k], epsilon);
                        assert_eq!(
                            out[k].to_bits(),
                            expect.to_bits(),
                            "{isa} {op:?} d({}, {}) = {} want {}",
                            a[k],
                            b[k],
                            out[k],
                            expect
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn odd_lengths_exercise_the_vector_tail() {
        // Lengths around the vector widths so every kernel runs both its
        // packed loop and its scalar tail.
        let pool = pool();
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17] {
            let a: Vec<f64> = (0..len).map(|k| pool[k % pool.len()]).collect();
            let b: Vec<f64> = (0..len).map(|k| pool[(k * 5 + 3) % pool.len()]).collect();
            for isa in SimdIsa::supported() {
                let mut out = vec![0.0; len];
                distance_lanes(isa, Cmp::Le, &a, &b, DEFAULT_EPSILON, &mut out);
                let mut reference = vec![0.0; len];
                distance_lanes(
                    SimdIsa::Portable,
                    Cmp::Le,
                    &a,
                    &b,
                    DEFAULT_EPSILON,
                    &mut reference,
                );
                for k in 0..len {
                    assert_eq!(
                        out[k].to_bits(),
                        reference[k].to_bits(),
                        "{isa} len {len} k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn vector_arithmetic_matches_scalar_bit_for_bit() {
        let pool = pool();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for &x in &pool {
            for &y in &pool {
                a.push(x);
                b.push(y);
            }
        }
        // An odd extra lane so the tail path runs too.
        a.push(3.5);
        b.push(-0.0);
        for isa in SimdIsa::supported() {
            for op in [VecBin::Add, VecBin::Sub, VecBin::Mul, VecBin::Div] {
                let mut out = vec![0.0; a.len()];
                vec_bin(isa, op, &a, &b, &mut out);
                for k in 0..a.len() {
                    let expect = match op {
                        VecBin::Add => a[k] + b[k],
                        VecBin::Sub => a[k] - b[k],
                        VecBin::Mul => a[k] * b[k],
                        VecBin::Div => a[k] / b[k],
                    };
                    assert_eq!(
                        out[k].to_bits(),
                        expect.to_bits(),
                        "{isa} {op:?} on ({}, {})",
                        a[k],
                        b[k]
                    );
                }
            }
            let mut out = vec![0.0; a.len()];
            vec_neg(isa, &a, &mut out);
            for k in 0..a.len() {
                assert_eq!(out[k].to_bits(), (-a[k]).to_bits(), "{isa} neg {}", a[k]);
            }
        }
    }

    #[test]
    fn env_parse_accepts_known_labels_only() {
        // Direct parse-level checks; the env var itself is process-global
        // state the CLI owns, so tests only pin the parsing rules.
        assert_eq!(SimdIsa::parse("portable"), Some(SimdIsa::Portable));
        assert_eq!(SimdIsa::parse("sse2"), Some(SimdIsa::Sse2));
        assert_eq!(SimdIsa::parse("avx2"), Some(SimdIsa::Avx2));
        assert_eq!(SimdIsa::parse("AVX2"), None);
    }
}
