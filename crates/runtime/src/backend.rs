//! The execution-backend layer: how representing-function evaluations are
//! actually carried out.
//!
//! Historically the execution strategy was smeared across three places —
//! the scalar fast path executed the program directly against a long-lived
//! [`ExecCtx`], the lane path went through [`LaneCtx`], and the objective
//! engine hard-coded the dispatch between them (an inline
//! `MIN_LANE_BATCH` branch). [`ExecBackend`] makes that choice an explicit,
//! swappable layer:
//!
//! * [`InterpBackend`] reproduces the historical behavior exactly: scalar
//!   evaluations call [`Program::execute`] (whatever executor the program
//!   embeds — the fdlibm ports run native Rust, `coverme-fpir` programs run
//!   their tree-walking interpreter), and batches go through the
//!   deferred-penalty [`LaneCtx`] record/finalize protocol.
//! * A program can provide its own backend through
//!   [`Program::backend`](crate::Program::backend) — the FPIR front end
//!   lowers its AST to a flat instruction tape and returns a tape backend
//!   whose lane path runs all lanes through the tape in lockstep.
//!
//! Whatever the backend, the contract is **bit-exactness**: values,
//! coverage, traces, [`RunOutcome`] classification and cache visibility
//! must be indistinguishable from [`Program::execute`] under an eager
//! [`ExecCtx`]. The backend seam is a throughput knob, never a semantic
//! one.

use crate::branch::BranchSet;
use crate::context::{ExecCtx, RunOutcome};
use crate::lane::{LaneCtx, MIN_LANE_BATCH};
use crate::program::Program;
use crate::simd::SimdIsa;

/// Which execution backend an evaluation pipeline should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendMode {
    /// Let the program pick: programs that carry a compiled form (the FPIR
    /// tape) use it, everything else runs the interpreter/native backend.
    #[default]
    Auto,
    /// Force the historical backend: [`Program::execute`] per evaluation,
    /// [`LaneCtx`] for batches. Every program supports this.
    Interp,
    /// Force the compiled tape backend. Programs without a tape (native
    /// fdlibm ports, hand-written closures) fall back to
    /// [`BackendMode::Interp`].
    Tape,
}

impl BackendMode {
    /// Stable lowercase label (CLI flags, JSON artifacts).
    pub fn label(self) -> &'static str {
        match self {
            BackendMode::Auto => "auto",
            BackendMode::Interp => "interp",
            BackendMode::Tape => "tape",
        }
    }

    /// Parses a CLI-style label (the inverse of [`label`](Self::label)).
    pub fn parse(s: &str) -> Option<BackendMode> {
        match s {
            "auto" => Some(BackendMode::Auto),
            "interp" => Some(BackendMode::Interp),
            "tape" => Some(BackendMode::Tape),
            _ => None,
        }
    }
}

impl std::fmt::Display for BackendMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Value and classification of one lane of a batched evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneEval {
    /// The resolved representing-function value. Meaningless (and discarded
    /// by consumers) when `outcome` is not [`RunOutcome::Done`].
    pub value: f64,
    /// How the lane's execution ended.
    pub outcome: RunOutcome,
}

/// An execution strategy for representing-function evaluations.
///
/// Implementations must be observably identical to executing the program
/// through [`Program::execute`]: same values (bit-for-bit), same coverage
/// and trace on recording contexts, same [`RunOutcome`] classification.
pub trait ExecBackend: std::fmt::Debug + Send {
    /// Stable backend name recorded in reports and bench artifacts.
    fn name(&self) -> &'static str;

    /// Number of evaluations the batched path processes in lockstep — a
    /// property of the backend's SIMD ISA ([`SimdIsa::lane_width`]).
    fn lane_width(&self) -> usize {
        self.simd_isa().lane_width()
    }

    /// The SIMD ISA the backend's lane finalize dispatches to. Recorded in
    /// reports so artifacts say which kernels produced them.
    fn simd_isa(&self) -> SimdIsa;

    /// Overrides the backend's SIMD ISA (the `--simd`/`COVERME_SIMD`
    /// knob, resolved per engine instance). Called only between batches,
    /// never with lanes in flight.
    ///
    /// # Panics
    ///
    /// Implementations panic if the machine cannot execute `isa` — CLI
    /// front ends validate with [`SimdIsa::is_supported`] first.
    fn set_simd(&mut self, isa: SimdIsa);

    /// Smallest batch for which the lane path beats scalar evaluation;
    /// dispatchers fall back to scalar calls below it.
    fn min_batch(&self) -> usize {
        MIN_LANE_BATCH
    }

    /// Sets the `ε` used by branch distances. Called once when the backend
    /// is installed into an evaluation pipeline.
    fn set_epsilon(&mut self, epsilon: f64);

    /// Points the backend at a new saturation snapshot. Called on round
    /// boundaries, never with lanes in flight.
    fn retarget(&mut self, saturated: &BranchSet);

    /// Executes `program` on `input` against `ctx` — the scalar/full path.
    /// `ctx` may be in any mode (eager representing, observe, …); the
    /// backend must report branches through it exactly as
    /// [`Program::execute`] would.
    fn run(&mut self, program: &dyn Program, input: &[f64], ctx: &mut ExecCtx);

    /// Evaluates the representing function at `points[i]` for every `i` in
    /// `indices`, appending one [`LaneEval`] per index (in order) to `out`.
    /// This is the deferred-penalty batch path: no coverage, no trace, just
    /// the value and the run classification.
    fn run_lanes(
        &mut self,
        program: &dyn Program,
        points: &[Vec<f64>],
        indices: &[usize],
        out: &mut Vec<LaneEval>,
    );

    /// Clones the backend into a box (manual object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn ExecBackend>;
}

impl Clone for Box<dyn ExecBackend> {
    fn clone(&self) -> Box<dyn ExecBackend> {
        self.clone_box()
    }
}

/// The historical backend: [`Program::execute`] for scalar evaluations,
/// the deferred-penalty [`LaneCtx`] for batches. Works for every program.
#[derive(Debug, Clone)]
pub struct InterpBackend {
    lane: LaneCtx,
    /// Per-chunk outcome scratch, aligned with the lane record order.
    outcomes: Vec<RunOutcome>,
    /// Per-chunk value scratch the finalize writes into.
    values: Vec<f64>,
}

impl InterpBackend {
    /// Creates the backend against the empty saturation snapshot.
    pub fn new() -> InterpBackend {
        InterpBackend {
            lane: LaneCtx::new(BranchSet::new()),
            outcomes: Vec::new(),
            values: Vec::new(),
        }
    }
}

impl Default for InterpBackend {
    fn default() -> InterpBackend {
        InterpBackend::new()
    }
}

impl ExecBackend for InterpBackend {
    fn name(&self) -> &'static str {
        "interp"
    }

    fn simd_isa(&self) -> SimdIsa {
        self.lane.simd_isa()
    }

    fn set_simd(&mut self, isa: SimdIsa) {
        let lane = std::mem::take(&mut self.lane);
        self.lane = lane.with_simd(isa);
    }

    fn set_epsilon(&mut self, epsilon: f64) {
        let lane = std::mem::take(&mut self.lane);
        self.lane = lane.with_epsilon(epsilon);
    }

    fn retarget(&mut self, saturated: &BranchSet) {
        self.lane.retarget(saturated.clone());
    }

    fn run(&mut self, program: &dyn Program, input: &[f64], ctx: &mut ExecCtx) {
        program.execute(input, ctx);
    }

    fn run_lanes(
        &mut self,
        program: &dyn Program,
        points: &[Vec<f64>],
        indices: &[usize],
        out: &mut Vec<LaneEval>,
    ) {
        out.reserve(indices.len());
        for chunk in indices.chunks(self.lane.width()) {
            self.outcomes.clear();
            for &index in chunk {
                let outcome = self.lane.record(program, &points[index]);
                self.outcomes.push(outcome);
            }
            self.values.clear();
            self.lane.finalize_into(&mut self.values);
            debug_assert_eq!(self.values.len(), self.outcomes.len());
            for (&value, &outcome) in self.values.iter().zip(&self.outcomes) {
                out.push(LaneEval { value, outcome });
            }
        }
    }

    fn clone_box(&self) -> Box<dyn ExecBackend> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::BranchId;
    use crate::distance::{Cmp, DEFAULT_EPSILON};
    use crate::program::FnProgram;

    fn paper_example() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
        FnProgram::new("FOO", 1, 2, |input: &[f64], ctx: &mut ExecCtx| {
            let mut x = input[0];
            if ctx.branch(0, Cmp::Le, x, 1.0) {
                x += 2.5;
            }
            let y = x * x;
            if ctx.branch(1, Cmp::Eq, y, 4.0) {
                // target
            }
        })
    }

    #[test]
    fn mode_labels_round_trip() {
        for mode in [BackendMode::Auto, BackendMode::Interp, BackendMode::Tape] {
            assert_eq!(BackendMode::parse(mode.label()), Some(mode));
            assert_eq!(mode.to_string(), mode.label());
        }
        assert_eq!(BackendMode::parse("nope"), None);
        assert_eq!(BackendMode::default(), BackendMode::Auto);
    }

    #[test]
    fn interp_backend_lanes_match_eager_execution() {
        let program = paper_example();
        let saturated: BranchSet = [BranchId::false_of(1)].into_iter().collect();
        let mut backend = InterpBackend::new();
        backend.set_epsilon(DEFAULT_EPSILON);
        backend.retarget(&saturated);
        assert_eq!(backend.name(), "interp");
        assert_eq!(backend.lane_width(), backend.simd_isa().lane_width());
        assert_eq!(backend.min_batch(), MIN_LANE_BATCH);

        let points: Vec<Vec<f64>> = (0..19).map(|i| vec![i as f64 * 0.61 - 7.0]).collect();
        let indices: Vec<usize> = (0..points.len()).collect();
        let mut evals = Vec::new();
        backend.run_lanes(&paper_example(), &points, &indices, &mut evals);
        assert_eq!(evals.len(), points.len());
        for (point, eval) in points.iter().zip(&evals) {
            let mut eager = ExecCtx::representing(saturated.clone());
            program.execute(point, &mut eager);
            assert_eq!(eval.value.to_bits(), eager.representing_value().to_bits());
            assert_eq!(eval.outcome, RunOutcome::Done);
        }
    }

    #[test]
    fn interp_backend_run_reports_through_the_ctx() {
        let program = paper_example();
        let mut backend = InterpBackend::new();
        let mut ctx = ExecCtx::observe();
        backend.run(&program, &[2.0], &mut ctx);
        assert!(ctx.covered().contains(BranchId::false_of(0)));
        assert!(ctx.covered().contains(BranchId::true_of(1)));
    }

    #[test]
    fn boxed_backends_clone() {
        let backend: Box<dyn ExecBackend> = Box::new(InterpBackend::new());
        let clone = backend.clone();
        assert_eq!(clone.name(), "interp");
    }
}
