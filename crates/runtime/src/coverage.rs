//! Accumulated coverage, the stand-in for Gcov in the evaluation.
//!
//! A [`CoverageMap`] aggregates the branches covered across any number of
//! executions of one program and reports the branch-coverage percentage the
//! paper's tables use. It also derives a *block coverage* figure (entry
//! block plus one block per branch arm) which the harnesses use as the
//! line-coverage proxy for natively ported benchmarks; the `coverme-fpir`
//! interpreter reports true statement coverage instead.

use crate::branch::{BranchId, BranchSet};
use crate::context::ExecCtx;

/// Accumulated branch coverage for one program.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageMap {
    num_sites: usize,
    covered: BranchSet,
    executions: usize,
}

impl CoverageMap {
    /// Creates an empty map for a program with `num_sites` conditionals.
    pub fn new(num_sites: usize) -> CoverageMap {
        CoverageMap {
            num_sites,
            covered: BranchSet::with_sites(num_sites),
            executions: 0,
        }
    }

    /// Number of conditional sites of the program.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// Total number of branches (`2 ·` sites), the denominator of the
    /// branch-coverage percentage, matching what Gcov reports for a function
    /// whose conditionals are all two-way.
    pub fn total_branches(&self) -> usize {
        self.num_sites * 2
    }

    /// Number of executions recorded so far.
    pub fn executions(&self) -> usize {
        self.executions
    }

    /// Records the coverage of one finished execution context.
    ///
    /// Returns the number of branches that were covered for the first time.
    pub fn record(&mut self, ctx: &ExecCtx) -> usize {
        self.record_set(ctx.covered())
    }

    /// Records a pre-computed covered set (used when contexts are consumed).
    pub fn record_set(&mut self, covered: &BranchSet) -> usize {
        self.executions += 1;
        self.covered.union_with(covered)
    }

    /// Merges another map for the same program: unions the covered branches
    /// and sums the execution counts. Used when independent searches of one
    /// program (e.g. the shards of `coverme::shard`) are combined into one
    /// result.
    ///
    /// Returns the number of branches that were new to `self`.
    ///
    /// # Panics
    ///
    /// Panics if the two maps disagree on the number of conditional sites.
    pub fn merge_from(&mut self, other: &CoverageMap) -> usize {
        assert_eq!(
            self.num_sites, other.num_sites,
            "cannot merge coverage maps of different programs"
        );
        self.executions += other.executions;
        self.covered.union_with(&other.covered)
    }

    /// The set of covered branches.
    pub fn covered(&self) -> &BranchSet {
        &self.covered
    }

    /// Number of covered branches.
    pub fn covered_count(&self) -> usize {
        self.covered.len()
    }

    /// Whether a specific branch has been covered.
    pub fn is_covered(&self, branch: BranchId) -> bool {
        self.covered.contains(branch)
    }

    /// Whether every branch of the program has been covered.
    pub fn is_fully_covered(&self) -> bool {
        self.covered_count() >= self.total_branches()
    }

    /// Branch coverage in percent (0–100), the figure of Tables 2 and 3.
    pub fn branch_coverage_percent(&self) -> f64 {
        if self.total_branches() == 0 {
            100.0
        } else {
            100.0 * self.covered_count() as f64 / self.total_branches() as f64
        }
    }

    /// Block coverage in percent: the entry block plus one block per branch
    /// arm. Used as the line-coverage proxy for natively ported benchmarks
    /// (Table 5); documented as a substitution in `DESIGN.md`.
    pub fn block_coverage_percent(&self) -> f64 {
        let total = 1 + self.total_branches();
        let covered = 1 + self.covered_count();
        100.0 * covered as f64 / total as f64
    }

    /// Iterates over the branches that have not been covered yet.
    pub fn uncovered_branches(&self) -> impl Iterator<Item = BranchId> + '_ {
        (0..self.num_sites as u32).flat_map(move |site| {
            [BranchId::true_of(site), BranchId::false_of(site)]
                .into_iter()
                .filter(|b| !self.covered.contains(*b))
        })
    }

    /// Produces a summary row for the table harnesses.
    pub fn summary(&self, program_name: &str) -> CoverageSummary {
        CoverageSummary {
            program: program_name.to_string(),
            total_branches: self.total_branches(),
            covered_branches: self.covered_count(),
            branch_percent: self.branch_coverage_percent(),
            block_percent: self.block_coverage_percent(),
            executions: self.executions,
        }
    }
}

/// A printable per-program coverage summary row.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageSummary {
    /// Program (benchmark) name.
    pub program: String,
    /// Total number of branches.
    pub total_branches: usize,
    /// Number of branches covered.
    pub covered_branches: usize,
    /// Branch coverage in percent.
    pub branch_percent: f64,
    /// Block coverage (line-coverage proxy) in percent.
    pub block_percent: f64,
    /// Number of executions that produced this coverage.
    pub executions: usize,
}

impl std::fmt::Display for CoverageSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {}/{} branches ({:.1}%)",
            self.program, self.covered_branches, self.total_branches, self.branch_percent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Cmp;

    fn run(ctx: &mut ExecCtx, x: f64) {
        if ctx.branch(0, Cmp::Le, x, 1.0) {
            // then
        }
        if ctx.branch(1, Cmp::Gt, x, 10.0) {
            // then
        }
    }

    #[test]
    fn empty_map_reports_zero_coverage() {
        let map = CoverageMap::new(2);
        assert_eq!(map.total_branches(), 4);
        assert_eq!(map.covered_count(), 0);
        assert_eq!(map.branch_coverage_percent(), 0.0);
        assert!(!map.is_fully_covered());
    }

    #[test]
    fn branchless_program_is_trivially_covered() {
        let map = CoverageMap::new(0);
        assert_eq!(map.branch_coverage_percent(), 100.0);
        assert!(map.is_fully_covered());
    }

    #[test]
    fn record_accumulates_across_executions() {
        let mut map = CoverageMap::new(2);
        let mut ctx = ExecCtx::observe();
        run(&mut ctx, 0.0); // 0T, 1F
        assert_eq!(map.record(&ctx), 2);
        assert_eq!(map.branch_coverage_percent(), 50.0);

        let mut ctx = ExecCtx::observe();
        run(&mut ctx, 20.0); // 0F, 1T
        assert_eq!(map.record(&ctx), 2);
        assert!(map.is_fully_covered());
        assert_eq!(map.branch_coverage_percent(), 100.0);
        assert_eq!(map.executions(), 2);
    }

    #[test]
    fn recording_same_coverage_twice_adds_nothing() {
        let mut map = CoverageMap::new(2);
        let mut ctx = ExecCtx::observe();
        run(&mut ctx, 0.0);
        map.record(&ctx);
        let mut ctx2 = ExecCtx::observe();
        run(&mut ctx2, 0.5);
        assert_eq!(map.record(&ctx2), 0);
    }

    #[test]
    fn merge_from_unions_coverage_and_sums_executions() {
        let mut a = CoverageMap::new(2);
        let mut ctx = ExecCtx::observe();
        run(&mut ctx, 0.0); // 0T, 1F
        a.record(&ctx);

        let mut b = CoverageMap::new(2);
        let mut ctx = ExecCtx::observe();
        run(&mut ctx, 20.0); // 0F, 1T
        b.record(&ctx);
        let mut ctx = ExecCtx::observe();
        run(&mut ctx, 30.0); // 0F, 1T again
        b.record(&ctx);

        assert_eq!(a.merge_from(&b), 2);
        assert!(a.is_fully_covered());
        assert_eq!(a.executions(), 3);
        // Merging again adds executions but no branches.
        assert_eq!(a.merge_from(&b), 0);
        assert_eq!(a.executions(), 5);
    }

    #[test]
    #[should_panic(expected = "different programs")]
    fn merge_from_rejects_mismatched_site_counts() {
        let mut a = CoverageMap::new(2);
        let b = CoverageMap::new(3);
        a.merge_from(&b);
    }

    #[test]
    fn uncovered_branches_lists_the_complement() {
        let mut map = CoverageMap::new(2);
        let mut ctx = ExecCtx::observe();
        run(&mut ctx, 0.0); // covers 0T and 1F
        map.record(&ctx);
        let uncovered: Vec<BranchId> = map.uncovered_branches().collect();
        assert_eq!(uncovered, vec![BranchId::false_of(0), BranchId::true_of(1)]);
    }

    #[test]
    fn block_coverage_is_between_branch_and_full() {
        let mut map = CoverageMap::new(2);
        let mut ctx = ExecCtx::observe();
        run(&mut ctx, 0.0);
        map.record(&ctx);
        // 2 of 4 branches, so blocks are 3 of 5.
        assert!((map.block_coverage_percent() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn summary_row_reflects_the_map() {
        let mut map = CoverageMap::new(2);
        let mut ctx = ExecCtx::observe();
        run(&mut ctx, 0.0);
        map.record(&ctx);
        let summary = map.summary("toy");
        assert_eq!(summary.program, "toy");
        assert_eq!(summary.covered_branches, 2);
        assert_eq!(summary.total_branches, 4);
        assert_eq!(summary.executions, 1);
        assert!(summary.to_string().contains("50.0%"));
    }
}
