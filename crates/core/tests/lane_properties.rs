//! Property-based tests for the lane-parallel evaluation backend
//! (`coverme_runtime::lane` behind `coverme::objective::ObjectiveEngine`).
//!
//! The lane backend's contract:
//!
//! * the lane path agrees **bit for bit** with the scalar engine path on
//!   any program, any saturation snapshot, and any batch size — including
//!   NaN/inf inputs and operands, and sites masked out because both of
//!   their branches are saturated (`pen` case (c), where only the deferral
//!   algebra keeps the previous event alive);
//! * batch grouping is semantically invisible: one batch of `n` points,
//!   `n` scalar calls, and any chunked split produce identical values;
//! * the memoization cache composes with lanes: a batch evaluated after
//!   some of its points are already cached (partial hits, any interleaving)
//!   returns the same values and serves the cached points without
//!   re-executing.
//!
//! Programs are generated from the same straight-line family the shard and
//! objective property suites use, extended with special-value injection so
//! comparisons see NaN and ±inf operands.

// `x - x` / `0/0` idioms deliberately materialize NaN from a runtime value,
// the same way the Fdlibm ports do.
#![allow(clippy::eq_op)]

use proptest::prelude::*;

use coverme::objective::ObjectiveEngine;
use coverme::{BranchId, BranchSet, Cmp, ExecCtx, FnProgram, Objective, RepresentingFunction};
use coverme_runtime::{LaneCtx, SimdIsa, DEFAULT_EPSILON, LANE_WIDTH};

/// Specification of one conditional site of a generated program.
#[derive(Debug, Clone)]
struct SiteSpec {
    op: Cmp,
    /// The condition compares `coeff * x + offset` against `constant`.
    coeff: f64,
    offset: f64,
    constant: f64,
    /// Whether taking the true branch perturbs `x` before later sites.
    mutates: bool,
    /// Whether taking the false branch poisons `x` with `0/0` (NaN), so
    /// downstream comparisons exercise the NaN distance paths.
    poisons: bool,
}

/// A generated straight-line program over one double input with data flow
/// between sites, including NaN-producing paths.
fn build_program(specs: Vec<SiteSpec>) -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
    let num_sites = specs.len();
    FnProgram::new(
        "lane-gen",
        1,
        num_sites,
        move |input: &[f64], ctx: &mut ExecCtx| {
            let mut x = input[0];
            for (site, spec) in specs.iter().enumerate() {
                let lhs = spec.coeff * x + spec.offset;
                if ctx.branch(site as u32, spec.op, lhs, spec.constant) {
                    if spec.mutates {
                        x = x * 0.5 + 1.0;
                    }
                } else if spec.poisons {
                    x = (x - x) / (x - x);
                }
            }
        },
    )
}

fn cmp_strategy() -> impl Strategy<Value = Cmp> {
    prop_oneof![
        Just(Cmp::Eq),
        Just(Cmp::Ne),
        Just(Cmp::Lt),
        Just(Cmp::Le),
        Just(Cmp::Gt),
        Just(Cmp::Ge),
    ]
}

fn site_strategy() -> impl Strategy<Value = SiteSpec> {
    (
        cmp_strategy(),
        -3.0..3.0f64,
        -10.0..10.0f64,
        -10.0..10.0f64,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(op, coeff, offset, constant, mutates, poisons)| SiteSpec {
            op,
            coeff,
            offset,
            constant,
            mutates,
            poisons,
        })
}

fn program_strategy() -> impl Strategy<Value = Vec<SiteSpec>> {
    prop::collection::vec(site_strategy(), 1..6)
}

/// Input points: finite values plus the IEEE specials (roughly 4:6 odds of
/// a special per draw, picked by discriminant since the vendored proptest
/// subset has no weighted `prop_oneof!`).
fn point_strategy() -> impl Strategy<Value = f64> {
    (0..10u8, -50.0..50.0f64).prop_map(|(kind, finite)| match kind {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        4 => 1e300,
        5 => 5e-324,
        _ => finite,
    })
}

/// A saturation snapshot over `num_sites` conditionals, derived from a
/// random bitmask (two bits per site). Masks with both bits set per site
/// exercise the `pen` keep-previous case — the "masked" sites of the lane
/// backend's deferral.
fn snapshot_from_mask(num_sites: usize, mask: u64) -> BranchSet {
    let mut snapshot = BranchSet::with_sites(num_sites);
    for site in 0..num_sites {
        if mask & (1 << (2 * site)) != 0 {
            snapshot.insert(BranchId::true_of(site as u32));
        }
        if mask & (1 << (2 * site + 1)) != 0 {
            snapshot.insert(BranchId::false_of(site as u32));
        }
    }
    snapshot
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lane evaluation equals scalar evaluation bit for bit at every batch
    /// size from 1 to 32, on any snapshot, with special-value inputs.
    #[test]
    fn lane_path_matches_scalar_path_at_every_batch_size(
        specs in program_strategy(),
        mask in 0..4096u64,
        xs in prop::collection::vec(point_strategy(), 1..32),
    ) {
        let num_sites = specs.len();
        let program = build_program(specs);
        let snapshot = snapshot_from_mask(num_sites, mask);
        let points: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();

        // Uncached engines so every lane value comes from a lane execution.
        let mut lane_engine = ObjectiveEngine::new(&program, DEFAULT_EPSILON).with_cache(false);
        lane_engine.retarget(&snapshot);
        let mut lane_values = Vec::new();
        lane_engine.eval_lanes(&points, &mut lane_values);
        prop_assert_eq!(lane_values.len(), points.len());

        let mut scalar_engine = ObjectiveEngine::new(&program, DEFAULT_EPSILON).with_cache(false);
        scalar_engine.retarget(&snapshot);
        for (point, lane_value) in points.iter().zip(&lane_values) {
            let scalar = scalar_engine.eval_scalar(point);
            prop_assert_eq!(
                scalar.to_bits(), lane_value.to_bits(),
                "lane {} vs scalar {} at {:?}", lane_value, scalar, point
            );
        }

        // The raw LaneCtx agrees too (no engine, no cache in the way).
        let mut raw = LaneCtx::new(snapshot.clone()).with_epsilon(DEFAULT_EPSILON);
        let mut raw_values = Vec::new();
        raw.eval_batch(&program, &points, &mut raw_values);
        for (raw_value, lane_value) in raw_values.iter().zip(&lane_values) {
            prop_assert_eq!(raw_value.to_bits(), lane_value.to_bits());
        }
    }

    /// Chunking is invisible: any split of the same point stream produces
    /// the values of the unsplit batch, in order.
    #[test]
    fn chunked_and_unchunked_batches_agree(
        specs in program_strategy(),
        mask in 0..4096u64,
        xs in prop::collection::vec(point_strategy(), 2..24),
        chunk in 1..9usize,
    ) {
        let num_sites = specs.len();
        let program = build_program(specs);
        let snapshot = snapshot_from_mask(num_sites, mask);
        let points: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();

        let fresh = || {
            let mut engine = ObjectiveEngine::new(&program, DEFAULT_EPSILON);
            engine.retarget(&snapshot);
            engine
        };
        let mut whole = Vec::new();
        fresh().eval_lanes(&points, &mut whole);
        let mut chunked = Vec::new();
        let mut chunked_engine = fresh();
        for piece in points.chunks(chunk) {
            // Dispatch through the Objective seam: small chunks take the
            // scalar path, large ones the lane path — the values must not
            // care.
            chunked_engine.eval_batch(piece, &mut chunked);
        }
        prop_assert_eq!(whole.len(), chunked.len());
        for (a, b) in whole.iter().zip(&chunked) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Fully saturated ("masked") sites keep the previous event alive
    /// across the deferral: a snapshot that saturates both branches of
    /// every site yields exactly 1.0 (the accumulator's initial value) on
    /// the lane path, matching the eager path.
    #[test]
    fn fully_masked_snapshots_preserve_the_initial_accumulator(
        specs in program_strategy(),
        xs in prop::collection::vec(point_strategy(), 1..16),
    ) {
        let num_sites = specs.len();
        let program = build_program(specs);
        let mut snapshot = BranchSet::with_sites(num_sites);
        for site in 0..num_sites {
            snapshot.insert(BranchId::true_of(site as u32));
            snapshot.insert(BranchId::false_of(site as u32));
        }
        let mut engine = ObjectiveEngine::new(&program, DEFAULT_EPSILON).with_cache(false);
        engine.retarget(&snapshot);
        let points: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let mut values = Vec::new();
        engine.eval_lanes(&points, &mut values);
        for (point, value) in points.iter().zip(&values) {
            let foo_r = RepresentingFunction::new(&program, snapshot.clone());
            prop_assert_eq!(value.to_bits(), foo_r.eval(point).to_bits());
            prop_assert_eq!(*value, 1.0);
        }
    }

    /// ISA sweep: every SIMD dispatch this machine supports — portable,
    /// and SSE2/AVX2 where present — finalizes the same batch to the same
    /// bits, on random snapshots and on the fully-masked snapshot, with
    /// special-value inputs. The vector kernels trade speed, never
    /// semantics; the engine's `simd()` override and the raw `LaneCtx`
    /// must both honor that.
    #[test]
    fn every_simd_isa_finalizes_bit_identically(
        specs in program_strategy(),
        mask in 0..4096u64,
        xs in prop::collection::vec(point_strategy(), 1..32),
        fully_masked in any::<bool>(),
    ) {
        let num_sites = specs.len();
        let program = build_program(specs);
        let snapshot = if fully_masked {
            let mut s = BranchSet::with_sites(num_sites);
            for site in 0..num_sites {
                s.insert(BranchId::true_of(site as u32));
                s.insert(BranchId::false_of(site as u32));
            }
            s
        } else {
            snapshot_from_mask(num_sites, mask)
        };
        let points: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();

        let eval_under = |isa: SimdIsa| {
            let mut engine = ObjectiveEngine::new(&program, DEFAULT_EPSILON)
                .with_cache(false)
                .simd(isa);
            engine.retarget(&snapshot);
            let mut values = Vec::new();
            engine.eval_lanes(&points, &mut values);
            values
        };
        let isas = SimdIsa::supported();
        prop_assert!(isas.contains(&SimdIsa::Portable));
        let reference = eval_under(SimdIsa::Portable);
        prop_assert_eq!(reference.len(), points.len());
        for &isa in &isas {
            let values = eval_under(isa);
            for (index, (r, v)) in reference.iter().zip(&values).enumerate() {
                prop_assert_eq!(
                    r.to_bits(), v.to_bits(),
                    "{} diverged from portable at point {} ({} vs {})",
                    isa, index, v, r
                );
            }
            // The raw LaneCtx path (no engine, no cache) agrees too.
            let mut raw = LaneCtx::new(snapshot.clone())
                .with_epsilon(DEFAULT_EPSILON)
                .with_simd(isa);
            let mut raw_values = Vec::new();
            raw.eval_batch(&program, &points, &mut raw_values);
            for (r, v) in reference.iter().zip(&raw_values) {
                prop_assert_eq!(r.to_bits(), v.to_bits());
            }
        }
    }

    /// The memo cache is ISA-blind: entries warmed by an engine pinned to
    /// one ISA are hits — with the same bits — for the identical points
    /// evaluated under any other ISA, because the cached values themselves
    /// are bit-identical.
    #[test]
    fn cache_entries_warmed_under_one_isa_serve_every_other(
        specs in program_strategy(),
        mask in 0..4096u64,
        xs in prop::collection::vec(-50.0..50.0f64, 4..16),
    ) {
        let num_sites = specs.len();
        let program = build_program(specs);
        let snapshot = snapshot_from_mask(num_sites, mask);
        let points: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();

        let mut reference = ObjectiveEngine::new(&program, DEFAULT_EPSILON)
            .with_cache(false)
            .simd(SimdIsa::Portable);
        reference.retarget(&snapshot);

        for &isa in &SimdIsa::supported() {
            // One cached engine per ISA: the scalar warm-up fills the memo
            // cache, the lane batch must agree with the uncached portable
            // engine bit for bit while serving hits.
            let mut cached = ObjectiveEngine::new(&program, DEFAULT_EPSILON)
                .with_cache(true)
                .simd(isa);
            cached.retarget(&snapshot);
            for point in &points {
                cached.eval_scalar(point);
            }
            let hits_before = cached.telemetry().cache_hits;
            let mut values = Vec::new();
            cached.eval_lanes(&points, &mut values);
            for (point, value) in points.iter().zip(&values) {
                prop_assert_eq!(
                    reference.eval_scalar(point).to_bits(),
                    value.to_bits(),
                    "cached {} engine diverged at {:?}", isa, point
                );
            }
            prop_assert!(cached.telemetry().cache_hits > hits_before);
        }
    }

    /// Cache interaction: a lane batch evaluated after an arbitrary prefix
    /// of its points was already evaluated (and therefore cached) returns
    /// the same values, and the cached points are served as hits without
    /// re-execution.
    #[test]
    fn lane_batches_after_partial_cache_hits_agree(
        specs in program_strategy(),
        mask in 0..4096u64,
        xs in prop::collection::vec(-50.0..50.0f64, 4..20),
        warm in 0..20usize,
    ) {
        let num_sites = specs.len();
        let program = build_program(specs);
        let snapshot = snapshot_from_mask(num_sites, mask);
        let points: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let warm = warm.min(points.len());

        let mut engine = ObjectiveEngine::new(&program, DEFAULT_EPSILON).with_cache(true);
        engine.retarget(&snapshot);
        // Warm the cache with a prefix through the scalar path.
        let mut warmed = Vec::new();
        for point in &points[..warm] {
            warmed.push(engine.eval_scalar(point));
        }
        let evals_before = engine.telemetry().evals;
        let hits_before = engine.telemetry().cache_hits;

        // Now the whole batch through the lane path.
        let mut values = Vec::new();
        engine.eval_lanes(&points, &mut values);
        let telemetry = engine.telemetry();

        // Values agree with an entirely uncached engine.
        let mut reference = ObjectiveEngine::new(&program, DEFAULT_EPSILON).with_cache(false);
        reference.retarget(&snapshot);
        for (point, value) in points.iter().zip(&values) {
            prop_assert_eq!(reference.eval_scalar(point).to_bits(), value.to_bits());
        }
        // And the warmed prefix matches what the scalar warm-up returned.
        for (value, warmed_value) in values.iter().zip(&warmed) {
            prop_assert_eq!(value.to_bits(), warmed_value.to_bits());
        }
        // Direct-mapped collisions may evict warmed entries (and duplicate
        // points within the batch re-execute), so hits are bounded by the
        // warmed prefix, and every non-hit was a real execution.
        let batch_hits = telemetry.cache_hits - hits_before;
        prop_assert!(batch_hits <= warm as u64);
        prop_assert_eq!(
            telemetry.evals - evals_before,
            points.len() as u64 - batch_hits
        );
    }
}

/// A deterministic end-to-end cross-check on a real Fdlibm benchmark: the
/// lane path, the scalar path, and the pre-engine legacy path agree on
/// `ieee754_pow` (the suite's most branch-dense function) against a
/// half-saturated snapshot, on a grid that includes special values.
#[test]
fn lane_path_matches_legacy_on_pow() {
    let benchmark = coverme_fdlibm::by_name("pow").expect("pow is in the suite");
    let num_sites = coverme_runtime::Program::num_sites(&benchmark);
    let mut saturated = BranchSet::with_sites(num_sites);
    for site in (0..num_sites).step_by(2) {
        saturated.insert(BranchId::true_of(site as u32));
    }
    let mut grid: Vec<Vec<f64>> = Vec::new();
    let specials = [
        0.0,
        -0.0,
        1.0,
        -1.0,
        0.5,
        2.0,
        1e300,
        f64::NAN,
        f64::INFINITY,
    ];
    for &x in &specials {
        for &y in &specials {
            grid.push(vec![x, y]);
        }
    }
    let mut engine = ObjectiveEngine::new(&benchmark, DEFAULT_EPSILON).with_cache(false);
    engine.retarget(&saturated);
    let mut values = Vec::new();
    engine.eval_lanes(&grid, &mut values);
    for (point, value) in grid.iter().zip(&values) {
        let mut ctx = ExecCtx::representing(saturated.clone());
        coverme_runtime::Program::execute(&benchmark, point, &mut ctx);
        assert_eq!(
            value.to_bits(),
            ctx.representing_value().to_bits(),
            "lane diverged from legacy on pow at {point:?}"
        );
    }
    // Partial last lane groups (the grid is not a LANE_WIDTH multiple)
    // still produce one value per point.
    assert!(!grid.len().is_multiple_of(LANE_WIDTH));
    assert_eq!(values.len(), grid.len());
}
