//! Property-based tests for the shard-merge invariants of `coverme::shard`.
//!
//! The sharded search promises (module docs of `coverme::shard`):
//!
//! * identical reports for identical `(seed, shards)` — bitwise determinism
//!   regardless of scheduling,
//! * coverage monotone in the shard count: splitting the same `n_start`
//!   budget never covers fewer branches than the unsharded search,
//! * the merged snapshot is the union of the shard snapshots: covered
//!   branches and coverage maps union exactly, infeasible verdicts union
//!   minus what real coverage refuted.
//!
//! These are checked on randomly generated straight-line programs (affine
//! conditions over one input, with data flow between sites), not just the
//! hand-picked examples of the unit tests.

use proptest::prelude::*;

use coverme::shard::{merge_shards, run_shard};
use coverme::{CoverMe, CoverMeConfig};
use coverme_runtime::{BranchSet, Cmp, CoverageMap, ExecCtx, FnProgram, Program};

/// Specification of one conditional site of a generated program.
#[derive(Debug, Clone)]
struct SiteSpec {
    op: Cmp,
    /// The condition compares `coeff * x + offset` against `constant`.
    coeff: f64,
    offset: f64,
    constant: f64,
    /// Whether taking the true branch perturbs `x` before later sites.
    mutates: bool,
}

/// A generated straight-line program: a sequence of conditionals over a
/// single double input, with the true branches feeding modified values to
/// later sites.
fn build_program(specs: Vec<SiteSpec>) -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
    let num_sites = specs.len();
    FnProgram::new(
        "generated",
        1,
        num_sites,
        move |input: &[f64], ctx: &mut ExecCtx| {
            let mut x = input[0];
            for (site, spec) in specs.iter().enumerate() {
                let lhs = spec.coeff * x + spec.offset;
                if ctx.branch(site as u32, spec.op, lhs, spec.constant) && spec.mutates {
                    x = x * 0.5 + 1.0;
                }
            }
        },
    )
}

fn cmp_strategy() -> impl Strategy<Value = Cmp> {
    prop_oneof![
        Just(Cmp::Eq),
        Just(Cmp::Ne),
        Just(Cmp::Lt),
        Just(Cmp::Le),
        Just(Cmp::Gt),
        Just(Cmp::Ge),
    ]
}

fn site_strategy() -> impl Strategy<Value = SiteSpec> {
    (
        cmp_strategy(),
        -3.0..3.0f64,
        -10.0..10.0f64,
        -10.0..10.0f64,
        any::<bool>(),
    )
        .prop_map(|(op, coeff, offset, constant, mutates)| SiteSpec {
            op,
            coeff,
            offset,
            constant,
            mutates,
        })
}

fn program_strategy() -> impl Strategy<Value = Vec<SiteSpec>> {
    prop::collection::vec(site_strategy(), 1..5)
}

fn config(seed: u64, shards: usize) -> CoverMeConfig {
    CoverMeConfig::default()
        .with_n_start(48)
        .with_n_iter(5)
        .with_seed(seed)
        .with_shards(shards)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bitwise determinism: for a fixed `(seed, shards)` the merged report
    /// is identical run to run — generated inputs, covered set, and round
    /// records all match.
    #[test]
    fn identical_reports_for_identical_seed_and_shards(
        specs in program_strategy(),
        seed in 0..1000u64,
        shards in 1..5usize,
    ) {
        let program = build_program(specs);
        let a = CoverMe::new(config(seed, shards)).run(&program);
        let b = CoverMe::new(config(seed, shards)).run(&program);
        prop_assert_eq!(&a.inputs, &b.inputs);
        prop_assert_eq!(a.coverage.covered(), b.coverage.covered());
        prop_assert_eq!(&a.infeasible, &b.infeasible);
        prop_assert_eq!(a.rounds.len(), b.rounds.len());
        prop_assert_eq!(a.evaluations, b.evaluations);
    }

    /// Sequential and thread-per-shard execution merge to the same report.
    #[test]
    fn parallel_execution_matches_sequential(
        specs in program_strategy(),
        seed in 0..1000u64,
        shards in 2..5usize,
    ) {
        let program = build_program(specs);
        let sequential = CoverMe::new(config(seed, shards)).run(&program);
        let parallel = CoverMe::new(config(seed, shards)).run_parallel(&program);
        prop_assert_eq!(&sequential.inputs, &parallel.inputs);
        prop_assert_eq!(sequential.coverage.covered(), parallel.coverage.covered());
        prop_assert_eq!(sequential.evaluations, parallel.evaluations);
    }

    /// Coverage is monotone in the shard count: a sharded run over the same
    /// total `n_start` never covers fewer branches than the unsharded run.
    #[test]
    fn coverage_monotone_in_shard_count(
        specs in program_strategy(),
        seed in 0..1000u64,
    ) {
        let program = build_program(specs);
        let unsharded = CoverMe::new(config(seed, 1)).run(&program);
        for shards in 2..=4usize {
            let sharded = CoverMe::new(config(seed, shards)).run(&program);
            prop_assert!(
                sharded.coverage.covered_count() >= unsharded.coverage.covered_count(),
                "{} shards covered {} < unsharded {}",
                shards,
                sharded.coverage.covered_count(),
                unsharded.coverage.covered_count()
            );
        }
    }

    /// The merged snapshot is the union of the shard snapshots: covered
    /// branches union exactly (tracker and coverage map agree), and every
    /// surviving infeasible verdict came from some shard and is not refuted
    /// by merged coverage.
    #[test]
    fn merged_saturation_is_union_of_shard_snapshots(
        specs in program_strategy(),
        seed in 0..1000u64,
        shards in 2..5usize,
    ) {
        let program = build_program(specs);
        let cfg = config(seed, shards);
        let outcomes: Vec<_> = (0..shards).map(|i| run_shard(&cfg, &program, i)).collect();

        let mut covered_union = BranchSet::with_sites(program.num_sites());
        let mut infeasible_union = BranchSet::with_sites(program.num_sites());
        for outcome in &outcomes {
            covered_union.union_with(outcome.tracker.covered());
            infeasible_union.union_with(outcome.tracker.infeasible());
        }

        let merged = merge_shards(program.name(), outcomes);
        prop_assert_eq!(merged.tracker.covered(), &covered_union);
        prop_assert_eq!(merged.report.coverage.covered(), &covered_union);
        for branch in merged.tracker.infeasible().iter() {
            prop_assert!(infeasible_union.contains(branch), "verdict from nowhere");
            prop_assert!(!covered_union.contains(branch), "refuted verdict survived");
        }
        // The report's infeasible list is the merged tracker's.
        prop_assert_eq!(
            merged.report.infeasible.len(),
            merged.tracker.infeasible().len()
        );
    }

    /// The representative inputs selected by the merge reproduce the merged
    /// coverage when replayed — the report's coverage is still defined over
    /// its generated input set `X`.
    #[test]
    fn merged_inputs_replay_to_merged_coverage(
        specs in program_strategy(),
        seed in 0..1000u64,
        shards in 2..5usize,
    ) {
        let program = build_program(specs);
        let report = CoverMe::new(config(seed, shards)).run(&program);
        let mut check = CoverageMap::new(program.num_sites());
        for input in &report.inputs {
            let mut ctx = ExecCtx::observe();
            program.execute(input, &mut ctx);
            check.record(&ctx);
        }
        prop_assert_eq!(check.covered_count(), report.coverage.covered_count());
    }
}
