//! End-to-end tests for the persistent corpus: cold campaigns record,
//! repeat campaigns warm-start, and the warm start is *sound* — identical
//! final coverage, strictly cheaper, and fully absent when no corpus is
//! attached.
//!
//! The eval savings come from two mechanisms layered in
//! `CorpusStore::warm_start_for` / `SearchState::replay_warm_start`:
//!
//! 1. **Input replay** — representative winners from the prior run are
//!    re-executed first, so coverage starts where the last run ended.
//! 2. **Schedule credit** — when the prior run *exhausted* the same
//!    deterministic schedule (same [`CoverMeConfig::search_key`]) and the
//!    replay reproduces its exact covered-branch count, the remaining
//!    rounds are provably redundant and the search finishes immediately.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use coverme::corpus::CorpusStore;
use coverme::{Campaign, CampaignConfig, CampaignReport, CoverMeConfig};
use coverme_runtime::{Cmp, ExecCtx, FnProgram};

/// A scratch corpus directory, removed on drop.
struct ScratchCorpus {
    root: PathBuf,
    store: Arc<CorpusStore>,
}

impl ScratchCorpus {
    fn new(tag: &str) -> ScratchCorpus {
        let root = std::env::temp_dir().join(format!(
            "coverme-corpus-warm-start-{}-{}",
            std::process::id(),
            tag
        ));
        let _ = fs::remove_dir_all(&root);
        let store = Arc::new(CorpusStore::open(&root).expect("open corpus"));
        ScratchCorpus { root, store }
    }
}

impl Drop for ScratchCorpus {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// A two-function inventory with genuine search work: each function has
/// an equality branch the sampler must hunt for and an unreachable
/// branch that forces the schedule to run to exhaustion on a cold start.
type ToyBody = Box<dyn Fn(&[f64], &mut ExecCtx) + Sync>;

fn inventory() -> Vec<FnProgram<ToyBody>> {
    vec![
        FnProgram::new(
            "needle",
            1,
            3,
            Box::new(|input: &[f64], ctx: &mut ExecCtx| {
                let x = input[0];
                ctx.branch(0, Cmp::Le, x, 0.0);
                ctx.branch(1, Cmp::Eq, x * 2.0, 5.0);
                // Unreachable: |x| is never negative.
                ctx.branch(2, Cmp::Lt, x.abs(), -1.0);
            }) as ToyBody,
        ),
        FnProgram::new(
            "ledge",
            1,
            3,
            Box::new(|input: &[f64], ctx: &mut ExecCtx| {
                let x = input[0];
                if ctx.branch(0, Cmp::Ge, x, 100.0) {
                    ctx.branch(1, Cmp::Eq, x, 256.0);
                }
                ctx.branch(2, Cmp::Lt, x * x, -1.0);
            }) as ToyBody,
        ),
    ]
}

fn campaign_config(store: Option<Arc<CorpusStore>>) -> CampaignConfig {
    let base = CoverMeConfig::new().with_n_start(12).with_seed(11);
    let config = CampaignConfig::new().with_base(base).with_workers(2);
    match store {
        Some(store) => config.with_corpus(store),
        None => config,
    }
}

fn coverage_by_function(report: &CampaignReport) -> Vec<(String, usize, usize)> {
    report
        .results
        .iter()
        .map(|result| {
            let report = result.report.as_ref().expect("function ran");
            (
                result.name.clone(),
                report.coverage.covered_count(),
                report.evaluations,
            )
        })
        .collect()
}

#[test]
fn repeat_campaigns_warm_start_with_identical_coverage_and_fewer_evals() {
    let scratch = ScratchCorpus::new("repeat");
    let programs = inventory();

    let cold = Campaign::new(campaign_config(Some(scratch.store.clone()))).run(&programs);
    assert_eq!(cold.total_warm_replayed(), 0, "first run must be cold");
    assert!(!cold.corpus_warm_start());

    let warm = Campaign::new(campaign_config(Some(scratch.store.clone()))).run(&programs);
    assert!(warm.corpus_warm_start(), "second run must warm-start");
    assert!(warm.total_warm_replayed() > 0);

    // Identical final coverage, function by function…
    let cold_cov = coverage_by_function(&cold);
    let warm_cov = coverage_by_function(&warm);
    for ((name, cold_covered, cold_evals), (_, warm_covered, warm_evals)) in
        cold_cov.iter().zip(&warm_cov)
    {
        assert_eq!(
            cold_covered, warm_covered,
            "{name}: warm start changed final coverage"
        );
        assert!(
            *warm_evals < *cold_evals,
            "{name}: warm run must be cheaper ({warm_evals} vs {cold_evals})"
        );
    }

    // …and at least the 30% suite-level saving the corpus promises. (In
    // practice the schedule credit makes this nearly 100%: both searches
    // exhausted their schedules cold, so the warm runs only replay.)
    assert!(
        warm.total_evaluations() * 10 <= cold.total_evaluations() * 7,
        "warm run must save >= 30% of evaluations ({} vs {})",
        warm.total_evaluations(),
        cold.total_evaluations()
    );

    // Third run: the recorded warm entry must carry the exhaustion verdict
    // forward, so repeats stay warm indefinitely, not just once.
    let third = Campaign::new(campaign_config(Some(scratch.store.clone()))).run(&programs);
    assert!(third.corpus_warm_start(), "third run must stay warm");
    assert_eq!(coverage_by_function(&third), warm_cov);
}

#[test]
fn changing_the_search_key_voids_the_schedule_credit_but_keeps_replay() {
    let scratch = ScratchCorpus::new("rekey");
    let programs = inventory();

    // Blame is disabled so the unreachable branches can never saturate:
    // after a warm replay the search is provably *not* done, and the only
    // way to finish with zero rounds is the schedule credit itself.
    let keyed_config = |seed: u64| {
        CampaignConfig::new()
            .with_base(
                CoverMeConfig::new()
                    .with_n_start(12)
                    .with_seed(seed)
                    .with_infeasible_policy(coverme::InfeasiblePolicy::Disabled),
            )
            .with_workers(2)
            .with_corpus(scratch.store.clone())
    };

    let cold = Campaign::new(keyed_config(11)).run(&programs);

    // Same seed → same search key → the credit applies: replay only.
    let same_key = Campaign::new(keyed_config(11)).run(&programs);
    assert!(same_key.corpus_warm_start());
    for result in &same_key.results {
        let report = result.report.as_ref().expect("function ran");
        assert!(
            report.rounds.is_empty(),
            "{}: a same-key repeat must take the schedule credit",
            result.name
        );
    }

    // A different seed is a different schedule: the corpus still replays
    // winners (coverage head start) but must not take the credit — the
    // new schedule's rounds have never run, so they must run now.
    let rekeyed = Campaign::new(keyed_config(12)).run(&programs);
    assert!(rekeyed.corpus_warm_start(), "winners still replay");
    for (result, cold_result) in rekeyed.results.iter().zip(&cold.results) {
        let report = result.report.as_ref().expect("function ran");
        let cold_report = cold_result.report.as_ref().expect("function ran");
        assert!(
            report.coverage.covered_count() >= cold_report.coverage.covered_count(),
            "{}: replayed winners must not lose coverage",
            result.name
        );
        assert!(
            !report.rounds.is_empty(),
            "{}: a rekeyed run must actually search (no schedule credit)",
            result.name
        );
    }
}

#[test]
fn corpus_less_campaigns_are_untouched_by_a_populated_corpus() {
    let scratch = ScratchCorpus::new("offswitch");
    let programs = inventory();

    // Populate the corpus, then run with the knob off: same coverage and
    // evals as a never-corpused run, and no warm-start marks anywhere.
    Campaign::new(campaign_config(Some(scratch.store.clone()))).run(&programs);
    let off = Campaign::new(campaign_config(None)).run(&programs);
    let off_again = Campaign::new(campaign_config(None)).run(&programs);

    assert_eq!(off.total_warm_replayed(), 0);
    assert!(!off.corpus_warm_start());
    assert_eq!(coverage_by_function(&off), coverage_by_function(&off_again));
    assert_eq!(off.total_evaluations(), off_again.total_evaluations());
}
