//! Property-based tests for the epoch-resumable search state machine and
//! the cross-shard saturation sync layer (`coverme::driver::SearchState`,
//! `coverme::sync`).
//!
//! The refactor promises:
//!
//! * `sync_epochs = 0` is **bit-identical to the pre-sync path**: the
//!   `SearchState`-based `run_shard` reproduces the historical
//!   run-to-completion shard loop exactly (checked against a reference
//!   reimplementation of that loop on generated programs);
//! * pausing at any round boundary is free: any slicing of a shard's
//!   schedule through `run_rounds` produces the same outcome as one
//!   run-to-exhaustion call;
//! * saturation-delta application is commutative and idempotent, so the
//!   barrier rendezvous may apply deltas in any arrival order;
//! * synced results are deterministic per `(seed, shards, sync_epochs)` at
//!   any worker count — the sequential driver, the thread-per-shard
//!   barrier driver and the campaign's event-driven scheduler all agree;
//! * on the generated corpus, coverage with sync on is a superset of
//!   coverage with sync off at equal budget. (This is an empirical pin of
//!   the easy-program regime, not a theorem — a larger snapshot changes
//!   the minimizer's trajectory, and on hard fdlibm functions an
//!   individual branch can go either way. The vendored proptest RNG is
//!   deterministic per test, so the pin cannot flake.)
//!
//! Programs are the same randomly generated straight-line conditionals the
//! shard-merge suite uses.

use proptest::prelude::*;

use coverme::driver::{EpochOutcome, SearchState};
use coverme::shard::run_shard;
use coverme::{
    Campaign, CampaignConfig, CoverMe, CoverMeConfig, InfeasiblePolicy, ObjectiveEngine,
    RoundOutcome, RoundRecord, SaturationTracker, ShardOutcome, WarmStart,
};
use coverme_optim::rng::SplitMix64;
use coverme_optim::BasinHopping;
use coverme_runtime::{Cmp, ExecCtx, FnProgram, Program};

/// Specification of one conditional site of a generated program.
#[derive(Debug, Clone)]
struct SiteSpec {
    op: Cmp,
    /// The condition compares `coeff * x + offset` against `constant`.
    coeff: f64,
    offset: f64,
    constant: f64,
    /// Whether taking the true branch perturbs `x` before later sites.
    mutates: bool,
}

/// A generated straight-line program: a sequence of conditionals over a
/// single double input, with the true branches feeding modified values to
/// later sites.
fn build_program(specs: Vec<SiteSpec>) -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
    let num_sites = specs.len();
    FnProgram::new(
        "generated",
        1,
        num_sites,
        move |input: &[f64], ctx: &mut ExecCtx| {
            let mut x = input[0];
            for (site, spec) in specs.iter().enumerate() {
                let lhs = spec.coeff * x + spec.offset;
                if ctx.branch(site as u32, spec.op, lhs, spec.constant) && spec.mutates {
                    x = x * 0.5 + 1.0;
                }
            }
        },
    )
}

fn cmp_strategy() -> impl Strategy<Value = Cmp> {
    prop_oneof![
        Just(Cmp::Eq),
        Just(Cmp::Ne),
        Just(Cmp::Lt),
        Just(Cmp::Le),
        Just(Cmp::Gt),
        Just(Cmp::Ge),
    ]
}

fn site_strategy() -> impl Strategy<Value = SiteSpec> {
    (
        cmp_strategy(),
        -3.0..3.0f64,
        -10.0..10.0f64,
        -10.0..10.0f64,
        any::<bool>(),
    )
        .prop_map(|(op, coeff, offset, constant, mutates)| SiteSpec {
            op,
            coeff,
            offset,
            constant,
            mutates,
        })
}

fn program_strategy() -> impl Strategy<Value = Vec<SiteSpec>> {
    prop::collection::vec(site_strategy(), 1..5)
}

fn config(seed: u64, shards: usize, sync_epochs: usize) -> CoverMeConfig {
    CoverMeConfig::default()
        .with_n_start(48)
        .with_n_iter(5)
        .with_seed(seed)
        .with_shards(shards)
        .with_sync_epochs(sync_epochs)
}

/// A reference reimplementation of the pre-`SearchState` shard loop (the
/// PR 4 path): the run-to-completion round loop written directly against
/// the public engine/minimizer/tracker API. Kept `polish`-free — the
/// polish helper is internal — so comparisons run both sides with polish
/// disabled.
fn reference_shard_rounds<P: Program>(
    config: &CoverMeConfig,
    program: &P,
    shard_index: usize,
) -> (Vec<RoundRecord>, usize, Vec<Vec<f64>>) {
    assert!(!config.polish, "reference loop does not implement polish");
    let shards = config.shards.max(1);
    let mut tracker = SaturationTracker::new(program.num_sites());
    let mut coverage = coverme_runtime::CoverageMap::new(program.num_sites());
    let mut engine = ObjectiveEngine::new(program, config.epsilon).cache_mode(config.cache);
    let mut start_rng = SplitMix64::new(config.seed ^ 0x5EED_0001);
    let schedule: Vec<Vec<f64>> =
        config
            .starting_points
            .sample_batch(&mut start_rng, program.arity(), config.n_start);
    let mut rounds = Vec::new();
    let mut inputs = Vec::new();
    let mut evaluations = 0usize;
    for round in (shard_index..config.n_start).step_by(shards) {
        if tracker.all_saturated() {
            break;
        }
        let x0 = schedule[round].clone();
        let snapshot = tracker.saturated_set();
        let saturated_before = snapshot.len();
        engine.retarget(&snapshot);
        let hopper = BasinHopping::new()
            .iterations(config.n_iter)
            .local_method(config.local_method)
            .perturbation(config.perturbation)
            .temperature(1.0)
            .seed(
                config
                    .seed
                    .wrapping_add(round as u64)
                    .wrapping_mul(0x9E37_79B9),
            )
            .target_value(config.zero_threshold);
        let result = hopper.minimize_objective(&mut engine, &x0);
        evaluations += result.stats.evaluations;
        let minimum_point = result.x.clone();
        let evaluation = engine.eval_full(&minimum_point);
        evaluations += 1;
        let outcome = if evaluation.value <= config.zero_threshold {
            let newly = coverage.record_set(&evaluation.covered);
            tracker.record_trace(&evaluation.trace);
            inputs.push(minimum_point.clone());
            if newly > 0 {
                RoundOutcome::NewInput
            } else {
                RoundOutcome::RedundantInput
            }
        } else {
            match config.infeasible_policy {
                InfeasiblePolicy::LastConditional => {
                    if let Some(last) = evaluation.trace.last() {
                        let blamed = last.untaken_branch();
                        tracker.mark_infeasible(blamed);
                        RoundOutcome::DeemedInfeasible(blamed)
                    } else {
                        RoundOutcome::NoProgress
                    }
                }
                InfeasiblePolicy::Generalized => {
                    if let Some(last) = evaluation.trace.last() {
                        let anchor = last.untaken_branch();
                        if tracker.covered().contains(anchor)
                            || tracker.infeasible().contains(anchor)
                        {
                            let blamed = tracker.blame_uncovered_path(&evaluation.trace);
                            RoundOutcome::DeemedInfeasiblePath(anchor, blamed.len())
                        } else {
                            tracker.mark_infeasible(anchor);
                            RoundOutcome::DeemedInfeasible(anchor)
                        }
                    } else {
                        RoundOutcome::NoProgress
                    }
                }
                InfeasiblePolicy::Disabled => RoundOutcome::NoProgress,
            }
        };
        rounds.push(RoundRecord {
            round,
            start: x0,
            minimum: minimum_point,
            value: evaluation.value,
            evaluations: result.stats.evaluations,
            saturated_before,
            outcome,
        });
    }
    (rounds, evaluations, inputs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `sync_epochs = 0` (the default) is the PR 4 path, bit for bit: the
    /// `SearchState`-backed `run_shard` produces exactly the rounds,
    /// evaluation counts and accepted inputs of the historical
    /// run-to-completion loop.
    #[test]
    fn sync_off_matches_the_presync_reference_loop(
        specs in program_strategy(),
        seed in 0..1000u64,
        shards in 1..4usize,
    ) {
        let program = build_program(specs);
        let cfg = config(seed, shards, 0).with_polish(false);
        for shard in 0..shards {
            let outcome = run_shard(&cfg, &program, shard);
            let (rounds, evaluations, inputs) =
                reference_shard_rounds(&cfg, &program, shard);
            prop_assert_eq!(&outcome.rounds, &rounds, "shard {}", shard);
            prop_assert_eq!(outcome.evaluations, evaluations);
            let accepted: Vec<Vec<f64>> =
                outcome.accepted.iter().map(|a| a.input.clone()).collect();
            prop_assert_eq!(accepted, inputs);
        }
    }

    /// Pausing is free: cutting a shard's schedule into arbitrary
    /// `run_rounds` slices produces the same outcome as one
    /// run-to-exhaustion call — rounds, inputs, coverage, evaluations.
    #[test]
    fn run_rounds_slicing_is_behavior_free(
        specs in program_strategy(),
        seed in 0..1000u64,
        chunks in prop::collection::vec(1..7usize, 1..32),
    ) {
        let program = build_program(specs);
        let cfg = config(seed, 1, 0);
        let whole = run_shard(&cfg, &program, 0);

        let mut state = SearchState::new(&cfg, &program, 0);
        let mut chunk_iter = chunks.iter().cycle();
        loop {
            let outcome = state.run_rounds(*chunk_iter.next().expect("cycle"));
            if outcome.is_finished() {
                break;
            }
        }
        let sliced = state.finish();
        prop_assert_eq!(&sliced.rounds, &whole.rounds);
        prop_assert_eq!(&sliced.coverage, &whole.coverage);
        prop_assert_eq!(sliced.evaluations, whole.evaluations);
        prop_assert_eq!(&sliced.tracker, &whole.tracker);
    }

    /// Saturation-delta application is commutative and idempotent on the
    /// trackers real searches produce, so the rendezvous may apply deltas
    /// in any arrival order.
    #[test]
    fn deltas_from_real_searches_commute(
        specs in program_strategy(),
        seed in 0..1000u64,
    ) {
        let program = build_program(specs);
        let cfg = config(seed, 3, 0);
        let outcomes: Vec<ShardOutcome> =
            (0..3).map(|i| run_shard(&cfg, &program, i)).collect();
        let deltas: Vec<_> = outcomes.iter().map(|o| o.tracker.delta()).collect();

        let apply_in = |order: &[usize]| {
            let mut tracker = SaturationTracker::new(program.num_sites());
            for &i in order {
                tracker.apply_delta(&deltas[i]);
            }
            tracker
        };
        let abc = apply_in(&[0, 1, 2]);
        prop_assert_eq!(&abc, &apply_in(&[2, 1, 0]));
        prop_assert_eq!(&abc, &apply_in(&[1, 2, 0]));
        // Idempotent: a second pass of every delta changes nothing.
        let mut again = abc.clone();
        for delta in &deltas {
            prop_assert!(!again.apply_delta(delta), "stale delta mutated state");
        }
        prop_assert_eq!(&again, &abc);
    }

    /// Synced searches are deterministic per `(seed, shards, sync_epochs)`
    /// at any worker count: the sequential sync driver, the
    /// thread-per-shard barrier driver, and the campaign's event-driven
    /// scheduler at several worker counts all produce the same report.
    #[test]
    fn synced_results_deterministic_at_any_worker_count(
        specs in program_strategy(),
        seed in 0..1000u64,
        shards in 2..4usize,
        sync_epochs in 2..5usize,
    ) {
        let program = build_program(specs.clone());
        let cfg = config(seed, shards, sync_epochs);
        let sequential = CoverMe::new(cfg.clone()).run(&program);
        let parallel = CoverMe::new(cfg.clone()).run_parallel(&program);
        prop_assert_eq!(&sequential.inputs, &parallel.inputs);
        prop_assert_eq!(&sequential.coverage, &parallel.coverage);
        prop_assert_eq!(sequential.evaluations, parallel.evaluations);
        prop_assert_eq!(&sequential.rounds, &parallel.rounds);

        // The campaign derives its own per-function seed, so compare the
        // campaign against itself across worker counts.
        let programs = vec![build_program(specs)];
        let run_campaign = |workers: usize| {
            Campaign::new(
                CampaignConfig::new()
                    .with_base(cfg.clone())
                    .with_workers(workers),
            )
            .run(&programs)
        };
        let one = run_campaign(1);
        for workers in [2usize, 5] {
            let many = run_campaign(workers);
            let (a, b) = (
                one.results[0].report.as_ref().expect("ran"),
                many.results[0].report.as_ref().expect("ran"),
            );
            prop_assert_eq!(&a.inputs, &b.inputs, "workers = {}", workers);
            prop_assert_eq!(&a.coverage, &b.coverage);
            prop_assert_eq!(a.evaluations, b.evaluations);
        }
    }

    /// A corpus warm start replays inside each shard's first `run_rounds`
    /// slice, before any scheduled round: synced warm runs remain
    /// deterministic across the sequential and the thread-per-shard
    /// barrier drivers, and the per-epoch evaluation ledger still covers
    /// every evaluation — replayed ones included.
    #[test]
    fn warm_started_synced_runs_stay_deterministic(
        specs in program_strategy(),
        seed in 0..1000u64,
        shards in 2..4usize,
        sync_epochs in 2..5usize,
    ) {
        let program = build_program(specs);
        // Harvest replay material from a cold run of a different schedule
        // (different seed → different search key, so no schedule credit:
        // this pins the pure replay path under sync).
        let donor = CoverMe::new(config(seed ^ 0x55, shards, sync_epochs)).run(&program);
        let warm = WarmStart {
            inputs: donor.inputs.clone(),
            infeasible: donor.infeasible.clone(),
            prior_coverage: None,
        };
        let cfg = config(seed, shards, sync_epochs).with_warm_start(warm);
        let sequential = CoverMe::new(cfg.clone()).run(&program);
        let parallel = CoverMe::new(cfg).run_parallel(&program);
        prop_assert_eq!(&sequential.inputs, &parallel.inputs);
        prop_assert_eq!(&sequential.coverage, &parallel.coverage);
        prop_assert_eq!(sequential.evaluations, parallel.evaluations);
        prop_assert_eq!(sequential.warm_replayed, parallel.warm_replayed);
        prop_assert!(sequential.warm_replayed > 0 || donor.inputs.is_empty());
        for report in [&sequential, &parallel] {
            let ledger: usize = report.epochs.iter().map(|e| e.evaluations).sum();
            prop_assert_eq!(ledger, report.evaluations);
        }
    }

    /// On the generated corpus, coverage with sync on is a superset of
    /// coverage with sync off at equal budget — the directed-search
    /// feedback does not lose branches the blind run finds on these
    /// easily-saturable programs. (An empirical pin, deterministic thanks
    /// to the vendored proptest RNG; see the module docs for why this is
    /// not a theorem on hard programs.)
    #[test]
    fn sync_on_coverage_is_a_superset_at_equal_budget(
        specs in program_strategy(),
        seed in 0..1000u64,
        shards in 2..4usize,
        sync_epochs in 2..5usize,
    ) {
        let program = build_program(specs);
        let blind = CoverMe::new(config(seed, shards, 0)).run(&program);
        let synced = CoverMe::new(config(seed, shards, sync_epochs)).run(&program);
        for branch in blind.coverage.covered().iter() {
            prop_assert!(
                synced.coverage.covered().contains(branch),
                "sync lost branch {} (blind covered {}, synced covered {})",
                branch,
                blind.coverage.covered_count(),
                synced.coverage.covered_count()
            );
        }
    }
}

/// The sync layer's early-exit guarantee, pinned outside proptest: a shard
/// whose absorbed union saturates everything spends zero further
/// evaluations (see also `coverme::sync` unit tests).
#[test]
fn absorbed_saturation_exits_before_any_work() {
    let program = FnProgram::new("FOO", 1, 2, |input: &[f64], ctx: &mut ExecCtx| {
        let mut x = input[0];
        if ctx.branch(0, Cmp::Le, x, 1.0) {
            x += 2.5;
        }
        if ctx.branch(1, Cmp::Eq, x * x, 4.0) {
            // target
        }
    });
    let cfg = config(7, 2, 4);
    let mut donor = SearchState::new(&cfg, &program, 0);
    donor.run_to_exhaustion();
    assert!(donor.tracker().all_saturated());
    let mut receiver = SearchState::new(&cfg, &program, 1);
    receiver.absorb_delta(&donor.extract_delta());
    assert_eq!(receiver.run_rounds(usize::MAX), EpochOutcome::Saturated);
    assert_eq!(receiver.evaluations(), 0);
    let outcome = receiver.finish();
    assert!(outcome.rounds.is_empty());
    // The telemetry still records the delta that ended the search.
    assert_eq!(outcome.epochs.len(), 1);
    assert_eq!(outcome.epochs[0].deltas_absorbed, 1);
}
