//! Property-based tests for the eval-budget economics layer: the bandit
//! campaign scheduler (`SchedulerPolicy::Bandit`), the global evaluation
//! budget (`CoverMeConfig::budget`), delta-gated adaptive sync
//! (`CoverMeConfig::adaptive_sync`), and generalized infeasibility blame
//! (`InfeasiblePolicy::Generalized`).
//!
//! The PR promises:
//!
//! * the bandit is **deterministic per `(seed, budget)`** — the allocator
//!   decides only at round barriers from completed-work telemetry, so the
//!   worker count cannot change a single grant, input, or covered branch;
//! * the bandit **conserves the pool**: the sum of granted evaluations
//!   never exceeds the global budget, and no function spends more than it
//!   was granted;
//! * the new knobs at their defaults (`scheduler = fixed`,
//!   `adaptive_sync = off`, no budget) are **bit-identical to the
//!   pre-budget path**: a campaign constructed through the new
//!   configuration surface reproduces both a knob-free campaign and a
//!   standalone `CoverMe::run` per function, exactly;
//! * saturation deltas from searches running **generalized blame** stay
//!   commutative and idempotent, so sync rendezvous and shard merges
//!   remain arrival-order-free under the new policy;
//! * **adaptive sync stays deterministic**: the sequential driver and the
//!   thread-per-shard barrier driver agree on every output with the gate
//!   and the densify heuristic enabled.
//!
//! Programs are the same randomly generated straight-line conditionals the
//! sync suite uses.

use proptest::prelude::*;

use coverme::{
    Campaign, CampaignConfig, CampaignReport, CoverMe, CoverMeConfig, InfeasiblePolicy,
    SaturationTracker, SchedulerPolicy, ShardOutcome,
};
use coverme_runtime::{Cmp, ExecCtx, FnProgram, Program};

/// Specification of one conditional site of a generated program.
#[derive(Debug, Clone)]
struct SiteSpec {
    op: Cmp,
    /// The condition compares `coeff * x + offset` against `constant`.
    coeff: f64,
    offset: f64,
    constant: f64,
    /// Whether taking the true branch perturbs `x` before later sites.
    mutates: bool,
}

/// A generated straight-line program over a single double input.
fn build_program(name: String, specs: Vec<SiteSpec>) -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
    let num_sites = specs.len();
    FnProgram::new(
        name,
        1,
        num_sites,
        move |input: &[f64], ctx: &mut ExecCtx| {
            let mut x = input[0];
            for (site, spec) in specs.iter().enumerate() {
                let lhs = spec.coeff * x + spec.offset;
                if ctx.branch(site as u32, spec.op, lhs, spec.constant) && spec.mutates {
                    x = x * 0.5 + 1.0;
                }
            }
        },
    )
}

/// A generated inventory: one program per spec list, named by position.
fn build_inventory(suite: Vec<Vec<SiteSpec>>) -> Vec<FnProgram<impl Fn(&[f64], &mut ExecCtx)>> {
    suite
        .into_iter()
        .enumerate()
        .map(|(index, specs)| build_program(format!("fn_{index}"), specs))
        .collect()
}

fn cmp_strategy() -> impl Strategy<Value = Cmp> {
    prop_oneof![
        Just(Cmp::Eq),
        Just(Cmp::Ne),
        Just(Cmp::Lt),
        Just(Cmp::Le),
        Just(Cmp::Gt),
        Just(Cmp::Ge),
    ]
}

fn site_strategy() -> impl Strategy<Value = SiteSpec> {
    (
        cmp_strategy(),
        -3.0..3.0f64,
        -10.0..10.0f64,
        -10.0..10.0f64,
        any::<bool>(),
    )
        .prop_map(|(op, coeff, offset, constant, mutates)| SiteSpec {
            op,
            coeff,
            offset,
            constant,
            mutates,
        })
}

fn suite_strategy() -> impl Strategy<Value = Vec<Vec<SiteSpec>>> {
    prop::collection::vec(prop::collection::vec(site_strategy(), 1..5), 2..5)
}

fn base_config(seed: u64) -> CoverMeConfig {
    CoverMeConfig::default()
        .with_n_start(32)
        .with_n_iter(4)
        .with_seed(seed)
}

/// The scheduling-independent content of a report, for equality checks.
type Fingerprint = Vec<(String, Option<(Vec<Vec<f64>>, usize, usize)>)>;

fn fingerprint(report: &CampaignReport) -> Fingerprint {
    report
        .results
        .iter()
        .map(|r| {
            (
                r.name.clone(),
                r.report
                    .as_ref()
                    .map(|t| (t.inputs.clone(), t.coverage.covered_count(), t.evaluations)),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The bandit's grant history and search results are a pure function
    /// of `(seed, budget)` — never of the worker count.
    #[test]
    fn bandit_deterministic_at_any_worker_count(
        suite in suite_strategy(),
        seed in 0..1000u64,
        pool in 5_000..60_000usize,
    ) {
        let programs = build_inventory(suite);
        let run = |workers: usize| {
            Campaign::new(
                CampaignConfig::new()
                    .base(
                        base_config(seed)
                            .with_scheduler(SchedulerPolicy::Bandit)
                            .with_budget(pool),
                    )
                    .with_workers(workers),
            )
            .run(&programs)
        };
        let one = run(1);
        for workers in [2usize, 4] {
            let many = run(workers);
            prop_assert_eq!(
                fingerprint(&one),
                fingerprint(&many),
                "workers = {}",
                workers
            );
            for (a, b) in one.results.iter().zip(&many.results) {
                prop_assert_eq!(a.budget, b.budget, "{} grant history", a.name);
                prop_assert_eq!(a.status, b.status, "{} status", a.name);
            }
        }
    }

    /// The pool is conserved: granted totals never exceed the budget, and
    /// no function spends evaluations it was not granted.
    #[test]
    fn bandit_conserves_the_global_budget(
        suite in suite_strategy(),
        seed in 0..1000u64,
        pool in 2_000..40_000usize,
    ) {
        let programs = build_inventory(suite);
        let report = Campaign::new(
            CampaignConfig::new()
                .base(
                    base_config(seed)
                        .with_scheduler(SchedulerPolicy::Bandit)
                        .with_budget(pool),
                )
                .with_workers(2),
        )
        .run(&programs);
        let granted_total: usize = report
            .results
            .iter()
            .map(|r| r.budget.expect("bandit attaches a ledger").granted)
            .sum();
        prop_assert!(
            granted_total <= pool,
            "granted {} exceeds the pool {}",
            granted_total,
            pool
        );
        for result in &report.results {
            let ledger = result.budget.expect("bandit attaches a ledger");
            let evals = result.report.as_ref().map_or(0, |r| r.evaluations);
            // The ledger is settled against actual spend; only a final
            // round in flight while the pool ran completely dry may leave
            // spend above the granted total.
            prop_assert!(
                evals <= ledger.granted || granted_total == pool,
                "{} spent {} of {} granted with pool to spare",
                result.name,
                evals,
                ledger.granted
            );
            prop_assert!(ledger.grants > 0 || ledger.granted == 0);
        }
    }

    /// The new knobs at their defaults reproduce the pre-budget campaign
    /// and the standalone per-function search, bit for bit: fixed
    /// scheduling plus non-adaptive sync is the exact code path earlier
    /// releases ran.
    #[test]
    fn default_knobs_are_bit_identical_to_the_prebudget_path(
        suite in suite_strategy(),
        seed in 0..1000u64,
    ) {
        let programs = build_inventory(suite);
        let knobless = Campaign::new(
            CampaignConfig::new().with_base(base_config(seed)).with_workers(2),
        )
        .run(&programs);
        let explicit = Campaign::new(
            CampaignConfig::new()
                .base(
                    base_config(seed)
                        .with_scheduler(SchedulerPolicy::Fixed)
                        .with_adaptive_sync(false),
                )
                .with_workers(2),
        )
        .run(&programs);
        prop_assert_eq!(fingerprint(&knobless), fingerprint(&explicit));
        // And no ledger appears on the fixed path — the report shape is
        // unchanged, not just its values.
        prop_assert!(explicit.results.iter().all(|r| r.budget.is_none()));
        prop_assert_eq!(explicit.scheduler, SchedulerPolicy::Fixed);
    }

    /// Deltas from searches running generalized infeasibility blame stay
    /// commutative and idempotent, so every rendezvous and merge stays
    /// arrival-order-free under the new policy.
    #[test]
    fn generalized_blame_deltas_commute(
        specs in prop::collection::vec(site_strategy(), 1..5),
        seed in 0..1000u64,
    ) {
        let program = build_program("generated".to_string(), specs);
        let cfg = base_config(seed)
            .with_shards(3)
            .with_infeasible_policy(InfeasiblePolicy::Generalized);
        let outcomes: Vec<ShardOutcome> = (0..3)
            .map(|i| coverme::shard::run_shard(&cfg, &program, i))
            .collect();
        let deltas: Vec<_> = outcomes.iter().map(|o| o.tracker.delta()).collect();

        let apply_in = |order: &[usize]| {
            let mut tracker = SaturationTracker::new(program.num_sites());
            for &i in order {
                tracker.apply_delta(&deltas[i]);
            }
            tracker
        };
        let abc = apply_in(&[0, 1, 2]);
        prop_assert_eq!(&abc, &apply_in(&[2, 1, 0]));
        prop_assert_eq!(&abc, &apply_in(&[1, 2, 0]));
        // Idempotent: a second pass of every delta changes nothing.
        let mut again = abc.clone();
        for delta in &deltas {
            prop_assert!(!again.apply_delta(delta), "stale delta mutated state");
        }
        prop_assert_eq!(&again, &abc);
    }

    /// Adaptive sync (gate + densify) stays deterministic: the sequential
    /// driver and the thread-per-shard barrier driver agree on every
    /// output with the new cadence heuristics enabled.
    #[test]
    fn adaptive_sync_deterministic_across_drivers(
        specs in prop::collection::vec(site_strategy(), 1..5),
        seed in 0..1000u64,
        shards in 2..4usize,
        sync_epochs in 2..5usize,
    ) {
        let program = build_program("generated".to_string(), specs);
        let cfg = base_config(seed)
            .with_shards(shards)
            .with_sync_epochs(sync_epochs)
            .with_adaptive_sync(true);
        let sequential = CoverMe::new(cfg.clone()).run(&program);
        let parallel = CoverMe::new(cfg).run_parallel(&program);
        prop_assert_eq!(&sequential.inputs, &parallel.inputs);
        prop_assert_eq!(&sequential.coverage, &parallel.coverage);
        prop_assert_eq!(sequential.evaluations, parallel.evaluations);
        prop_assert_eq!(sequential.barriers_skipped, parallel.barriers_skipped);
        prop_assert_eq!(&sequential.rounds, &parallel.rounds);
    }
}
