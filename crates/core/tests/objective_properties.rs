//! Property-based tests for the objective engine (`coverme::objective`).
//!
//! The engine's contract (module docs):
//!
//! * the scalar fast path, the batch entry point, and the legacy
//!   full-`Evaluation` path agree **bit for bit** on the same inputs, for
//!   any saturation snapshot;
//! * memoization never changes anything observable: a CoverMe search with
//!   the cache on produces the identical report — inputs, coverage,
//!   infeasible verdicts, round records, evaluation counts — as with the
//!   cache off;
//! * retargeting invalidates exactly when it must: after any sequence of
//!   snapshot swaps, cached values still equal freshly computed ones.
//!
//! Checked on randomly generated straight-line programs (affine conditions
//! over one input, with data flow between sites), the same family
//! `tests/shard_properties.rs` uses.

use proptest::prelude::*;

use coverme::objective::{CacheMode, ObjectiveEngine};
use coverme::{
    BranchId, BranchSet, Cmp, CoverMe, CoverMeConfig, ExecCtx, FnProgram, Objective,
    RepresentingFunction,
};
use coverme_runtime::DEFAULT_EPSILON;

/// Specification of one conditional site of a generated program.
#[derive(Debug, Clone)]
struct SiteSpec {
    op: Cmp,
    /// The condition compares `coeff * x + offset` against `constant`.
    coeff: f64,
    offset: f64,
    constant: f64,
    /// Whether taking the true branch perturbs `x` before later sites.
    mutates: bool,
}

/// A generated straight-line program: a sequence of conditionals over a
/// single double input, with the true branches feeding modified values to
/// later sites.
fn build_program(specs: Vec<SiteSpec>) -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
    let num_sites = specs.len();
    FnProgram::new(
        "generated",
        1,
        num_sites,
        move |input: &[f64], ctx: &mut ExecCtx| {
            let mut x = input[0];
            for (site, spec) in specs.iter().enumerate() {
                let lhs = spec.coeff * x + spec.offset;
                if ctx.branch(site as u32, spec.op, lhs, spec.constant) && spec.mutates {
                    x = x * 0.5 + 1.0;
                }
            }
        },
    )
}

fn cmp_strategy() -> impl Strategy<Value = Cmp> {
    prop_oneof![
        Just(Cmp::Eq),
        Just(Cmp::Ne),
        Just(Cmp::Lt),
        Just(Cmp::Le),
        Just(Cmp::Gt),
        Just(Cmp::Ge),
    ]
}

fn site_strategy() -> impl Strategy<Value = SiteSpec> {
    (
        cmp_strategy(),
        -3.0..3.0f64,
        -10.0..10.0f64,
        -10.0..10.0f64,
        any::<bool>(),
    )
        .prop_map(|(op, coeff, offset, constant, mutates)| SiteSpec {
            op,
            coeff,
            offset,
            constant,
            mutates,
        })
}

fn program_strategy() -> impl Strategy<Value = Vec<SiteSpec>> {
    prop::collection::vec(site_strategy(), 1..5)
}

/// A saturation snapshot over `num_sites` conditionals, derived from a
/// random bitmask (two bits per site: true branch, false branch).
fn snapshot_from_mask(num_sites: usize, mask: u64) -> BranchSet {
    let mut snapshot = BranchSet::with_sites(num_sites);
    for site in 0..num_sites {
        if mask & (1 << (2 * site)) != 0 {
            snapshot.insert(BranchId::true_of(site as u32));
        }
        if mask & (1 << (2 * site + 1)) != 0 {
            snapshot.insert(BranchId::false_of(site as u32));
        }
    }
    snapshot
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The three evaluation paths — engine scalar, engine batch, legacy
    /// full `Evaluation` — agree bit for bit on the same inputs, for any
    /// saturation snapshot.
    #[test]
    fn scalar_batch_and_full_paths_agree_bit_for_bit(
        specs in program_strategy(),
        mask in 0..256u64,
        points in prop::collection::vec(-50.0..50.0f64, 1..12),
    ) {
        let num_sites = specs.len();
        let program = build_program(specs);
        let snapshot = snapshot_from_mask(num_sites, mask);

        let foo_r = RepresentingFunction::new(&program, snapshot.clone());
        let mut scalar_engine = ObjectiveEngine::new(&program, DEFAULT_EPSILON);
        scalar_engine.retarget(&snapshot);
        let mut batch_engine = ObjectiveEngine::new(&program, DEFAULT_EPSILON);
        batch_engine.retarget(&snapshot);

        let batch: Vec<Vec<f64>> = points.iter().map(|&x| vec![x]).collect();
        let mut batched = Vec::new();
        batch_engine.eval_batch(&batch, &mut batched);
        prop_assert_eq!(batched.len(), batch.len());

        for (point, batched_value) in batch.iter().zip(&batched) {
            let scalar = scalar_engine.eval_scalar(point);
            let full = batch_engine.eval_full(point);
            let legacy_fast = foo_r.eval(point);
            let legacy_full = foo_r.eval_full(point);
            prop_assert_eq!(scalar.to_bits(), batched_value.to_bits());
            prop_assert_eq!(scalar.to_bits(), full.value.to_bits());
            prop_assert_eq!(scalar.to_bits(), legacy_fast.to_bits());
            prop_assert_eq!(scalar.to_bits(), legacy_full.value.to_bits());
            // The full paths agree on coverage and trace too.
            prop_assert_eq!(&full.covered, &legacy_full.covered);
            prop_assert_eq!(&full.trace, &legacy_full.trace);
        }
    }

    /// Memoization is invisible to the search: a full CoverMe run with the
    /// cache on equals the run with the cache off in everything except the
    /// hit counter — same generated inputs, same coverage, same infeasible
    /// verdicts, same per-round records, same evaluation counts.
    #[test]
    fn cache_never_changes_search_results_or_coverage(
        specs in program_strategy(),
        seed in 0..1000u64,
        shards in 1..4usize,
    ) {
        let program = build_program(specs);
        let base = CoverMeConfig::default().with_n_start(48).with_n_iter(5).with_seed(seed).with_shards(shards);
        let cached = CoverMe::new(base.clone().with_cache(CacheMode::On)).run(&program);
        let uncached = CoverMe::new(base.with_cache(CacheMode::Off)).run(&program);
        prop_assert_eq!(&cached.inputs, &uncached.inputs);
        prop_assert_eq!(cached.coverage.covered(), uncached.coverage.covered());
        prop_assert_eq!(&cached.infeasible, &uncached.infeasible);
        prop_assert_eq!(&cached.rounds, &uncached.rounds);
        prop_assert_eq!(cached.evaluations, uncached.evaluations);
        prop_assert_eq!(uncached.cache_hits, 0);
    }

    /// Retargeting through an arbitrary sequence of snapshots never leaves
    /// a stale value behind: after every swap, the engine's answers equal
    /// a freshly built representing function's.
    #[test]
    fn retargeting_never_serves_stale_values(
        specs in program_strategy(),
        masks in prop::collection::vec(0..256u64, 2..6),
        x in -50.0..50.0f64,
    ) {
        let num_sites = specs.len();
        let program = build_program(specs);
        let mut engine = ObjectiveEngine::new(&program, DEFAULT_EPSILON);
        for mask in masks {
            let snapshot = snapshot_from_mask(num_sites, mask);
            engine.retarget(&snapshot);
            let fresh = RepresentingFunction::new(&program, snapshot);
            // Probe twice: the second answer may come from the cache.
            prop_assert_eq!(engine.eval_scalar(&[x]).to_bits(), fresh.eval(&[x]).to_bits());
            prop_assert_eq!(engine.eval_scalar(&[x]).to_bits(), fresh.eval(&[x]).to_bits());
        }
    }
}

/// Telemetry bookkeeping stays consistent on real searches: calls split
/// exactly into executions and cache hits, and the report's counters match
/// what the engine saw.
#[test]
fn search_telemetry_is_internally_consistent() {
    let program = {
        let specs = vec![
            SiteSpec {
                op: Cmp::Le,
                coeff: 1.0,
                offset: 0.0,
                constant: 1.0,
                mutates: true,
            },
            SiteSpec {
                op: Cmp::Eq,
                coeff: 1.0,
                offset: 2.0,
                constant: 4.0,
                mutates: false,
            },
        ];
        build_program(specs)
    };
    let report = CoverMe::new(CoverMeConfig::default().with_n_start(40).with_seed(5)).run(&program);
    assert!(report.evaluations > 0);
    assert!(report.cache_hits <= report.evaluations);
    // Per-round evaluation counts never exceed the total.
    let per_round: usize = report.rounds.iter().map(|r| r.evaluations).sum();
    assert!(per_round <= report.evaluations);
}
