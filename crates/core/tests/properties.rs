//! Property-based tests for the core CoverMe invariants.
//!
//! The central soundness claims of the paper are conditions C1 and C2 on the
//! representing function (Sect. 3.2, Theorem 4.3). These tests check them on
//! randomly generated programs rather than the hand-picked examples used in
//! unit tests.

use proptest::prelude::*;

use coverme::{RepresentingFunction, SaturationTracker};
use coverme_runtime::{BranchId, BranchSet, Cmp, ExecCtx, FnProgram, Program};

/// Specification of one conditional site of a generated program.
#[derive(Debug, Clone)]
struct SiteSpec {
    op: Cmp,
    /// The condition compares `coeff * x + offset` against `constant`.
    coeff: f64,
    offset: f64,
    constant: f64,
    /// Whether taking the true branch perturbs `x` before later sites.
    mutates: bool,
}

/// A generated straight-line program: a sequence of conditionals over a
/// single double input. Each site's condition is an affine comparison, and
/// the true branch may feed a modified value to later sites, giving the
/// programs genuine (if simple) data flow between conditionals.
fn build_program(specs: Vec<SiteSpec>) -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
    let num_sites = specs.len();
    FnProgram::new(
        "generated",
        1,
        num_sites,
        move |input: &[f64], ctx: &mut ExecCtx| {
            let mut x = input[0];
            for (site, spec) in specs.iter().enumerate() {
                let lhs = spec.coeff * x + spec.offset;
                if ctx.branch(site as u32, spec.op, lhs, spec.constant) && spec.mutates {
                    x = x * 0.5 + 1.0;
                }
            }
        },
    )
}

fn cmp_strategy() -> impl Strategy<Value = Cmp> {
    prop_oneof![
        Just(Cmp::Eq),
        Just(Cmp::Ne),
        Just(Cmp::Lt),
        Just(Cmp::Le),
        Just(Cmp::Gt),
        Just(Cmp::Ge),
    ]
}

fn site_strategy() -> impl Strategy<Value = SiteSpec> {
    (
        cmp_strategy(),
        -3.0..3.0f64,
        -10.0..10.0f64,
        -10.0..10.0f64,
        any::<bool>(),
    )
        .prop_map(|(op, coeff, offset, constant, mutates)| SiteSpec {
            op,
            coeff,
            offset,
            constant,
            mutates,
        })
}

fn program_strategy() -> impl Strategy<Value = Vec<SiteSpec>> {
    prop::collection::vec(site_strategy(), 1..6)
}

/// An arbitrary saturation snapshot over the program's branches.
#[allow(dead_code)]
fn snapshot_strategy(num_sites: usize) -> impl Strategy<Value = BranchSet> {
    prop::collection::vec(any::<bool>(), num_sites * 2).prop_map(move |bits| {
        let mut set = BranchSet::with_sites(num_sites);
        for (index, bit) in bits.into_iter().enumerate() {
            if bit {
                set.insert(BranchId::from_index(index));
            }
        }
        set
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// C1: the representing function is non-negative for every input and
    /// every saturation snapshot.
    #[test]
    fn representing_function_is_non_negative(
        specs in program_strategy(),
        snapshot_bits in prop::collection::vec(any::<bool>(), 12),
        x in -1000.0..1000.0f64,
    ) {
        let num_sites = specs.len();
        let program = build_program(specs);
        let mut snapshot = BranchSet::with_sites(num_sites);
        for (index, bit) in snapshot_bits.iter().take(num_sites * 2).enumerate() {
            if *bit {
                snapshot.insert(BranchId::from_index(index));
            }
        }
        let foo_r = RepresentingFunction::new(&program, snapshot);
        prop_assert!(foo_r.eval(&[x]) >= 0.0);
    }

    /// C2 (⇒ direction): whenever the representing function evaluates to
    /// zero, the input covers a branch outside the saturation snapshot —
    /// unless the snapshot already contains every branch the path visits.
    #[test]
    fn zero_value_implies_new_branch(
        specs in program_strategy(),
        x in -1000.0..1000.0f64,
    ) {
        let num_sites = specs.len();
        let program = build_program(specs);
        // Build the snapshot from an actual execution so that it corresponds
        // to a reachable partial saturation, then check a fresh input.
        let mut tracker = SaturationTracker::new(num_sites);
        let mut ctx = ExecCtx::observe();
        program.execute(&[0.0], &mut ctx);
        tracker.record_trace(ctx.trace());
        let snapshot = tracker.saturated_set();

        let foo_r = RepresentingFunction::new(&program, snapshot.clone());
        let eval = foo_r.eval_full(&[x]);
        if eval.value == 0.0 {
            // The paper's guarantee: x saturates (hence covers) a branch not
            // already saturated, unless every branch is saturated (in which
            // case FOO_R is identically 1, contradicting value == 0).
            let covers_new = eval.covered.iter().any(|b| !snapshot.contains(b));
            prop_assert!(covers_new, "zero of FOO_R at {x} covered nothing new");
        }
    }

    /// The value returned by `eval` matches the value recorded by
    /// `eval_full`, for any input (they run the same instrumented program).
    #[test]
    fn eval_and_eval_full_agree(
        specs in program_strategy(),
        x in -1000.0..1000.0f64,
    ) {
        let num_sites = specs.len();
        let program = build_program(specs);
        let snapshot = BranchSet::with_sites(num_sites);
        let foo_r = RepresentingFunction::new(&program, snapshot);
        prop_assert_eq!(foo_r.eval(&[x]), foo_r.eval_full(&[x]).value);
    }

    /// Determinism: the same input always takes the same path.
    #[test]
    fn execution_is_deterministic(
        specs in program_strategy(),
        x in -1000.0..1000.0f64,
    ) {
        let program = build_program(specs);
        let mut a = ExecCtx::observe();
        let mut b = ExecCtx::observe();
        program.execute(&[x], &mut a);
        program.execute(&[x], &mut b);
        prop_assert_eq!(a.trace(), b.trace());
        prop_assert_eq!(a.covered(), b.covered());
    }

    /// Saturation is monotone: recording more traces never unsaturates a
    /// branch (with a fixed descendant relation this holds because coverage
    /// only grows; with dynamic learning a branch can temporarily appear
    /// saturated and later gain descendants, so we check the weaker property
    /// that the *covered* set is monotone and saturation is sound w.r.t. the
    /// final descendant knowledge).
    #[test]
    fn coverage_is_monotone_under_traces(
        specs in program_strategy(),
        inputs in prop::collection::vec(-100.0..100.0f64, 1..8),
    ) {
        let num_sites = specs.len();
        let program = build_program(specs);
        let mut tracker = SaturationTracker::new(num_sites);
        let mut previous_covered = 0;
        for x in inputs {
            let mut ctx = ExecCtx::observe();
            program.execute(&[x], &mut ctx);
            tracker.record_trace(ctx.trace());
            let covered_now = tracker.covered().len();
            prop_assert!(covered_now >= previous_covered);
            previous_covered = covered_now;
        }
        // Soundness: every saturated branch is covered or deemed infeasible.
        for branch in tracker.saturated_set().iter() {
            prop_assert!(tracker.covered().contains(branch));
        }
    }

    /// Any snapshot-independent statement: with an empty snapshot the
    /// representing function is identically zero (case (a) of Def. 4.2 at
    /// every site), for every generated program.
    #[test]
    fn empty_snapshot_gives_identically_zero(
        specs in program_strategy(),
        x in -1000.0..1000.0f64,
    ) {
        let program = build_program(specs);
        let foo_r = RepresentingFunction::new(&program, BranchSet::new());
        prop_assert_eq!(foo_r.eval(&[x]), 0.0);
    }

    /// With a fully saturated snapshot the representing function is
    /// identically one (the `r = 1` initialization shows through).
    #[test]
    fn full_snapshot_gives_identically_one(
        specs in program_strategy(),
        x in -1000.0..1000.0f64,
    ) {
        let num_sites = specs.len();
        let program = build_program(specs);
        let mut snapshot = BranchSet::with_sites(num_sites);
        for site in 0..num_sites as u32 {
            snapshot.insert(BranchId::true_of(site));
            snapshot.insert(BranchId::false_of(site));
        }
        let foo_r = RepresentingFunction::new(&program, snapshot);
        prop_assert_eq!(foo_r.eval(&[x]), 1.0);
    }
}
