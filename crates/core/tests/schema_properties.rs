//! Property tests for the versioned report envelope (`report::schema`):
//! the one JSON surface the run report, campaign report, corpus store and
//! serve protocol all share.
//!
//! Three families of invariants:
//!
//! * **Round trips** — any [`JsonValue`] written compactly parses back to
//!   the same value, and hostile text never panics the parser (it returns
//!   a positioned [`JsonError`] instead).
//! * **Envelopes** — documents open under exactly their own schema id;
//!   any other id (wrong kind or wrong version) is refused.
//! * **Corpus-off pins** — with no corpus attached, run and campaign
//!   documents are deterministic (up to wall-clock members) and contain
//!   none of the corpus members (`corpus_warm_start`, `warm_replayed`),
//!   which keeps them shape-identical to the pre-corpus emitters.

use proptest::prelude::*;

use coverme::report::schema::{
    self, open_envelope, JsonValue, CAMPAIGN_REPORT, CORPUS_ENTRY, RUN_REPORT, SERVE_PROTOCOL,
};
use coverme::{Campaign, CampaignConfig, CoverMe, CoverMeConfig};
use coverme_runtime::{ExecCtx, FnProgram};

// ---------------------------------------------------------------------------
// JsonValue round trips
// ---------------------------------------------------------------------------

/// Finite numbers only: the writers collapse NaN/∞ to `0` by design, so
/// non-finite values do not round-trip (and never occur in documents).
fn number_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e9..1e9f64,
        (-1_000_000i64..1_000_000).prop_map(|n| n as f64),
        prop_oneof![
            Just(0.0),
            Just(-0.0),
            Just(f64::MIN_POSITIVE),
            Just(1e300),
            Just(-1e-300),
            Just(0.1),
            Just(2.0_f64.powi(53)),
        ],
    ]
}

/// Strings across the escaping space: printable ASCII plus characters
/// that exercise escapes — quotes, backslashes, C0 controls, multibyte
/// UTF-8 and astral-plane characters.
fn string_strategy() -> impl Strategy<Value = String> {
    let escape_chars = prop_oneof![
        (32u8..127).prop_map(|b| b as char),
        Just('"'),
        Just('\\'),
        Just('\n'),
        Just('\t'),
        Just('\u{1}'),
        Just('é'),
        Just('中'),
        Just('\u{1F600}'),
        Just('/'),
    ];
    prop::collection::vec(escape_chars, 0..12).prop_map(|chars| chars.into_iter().collect())
}

/// Depth-limited recursive [`JsonValue`] strategy (the vendored proptest
/// subset has no `prop_recursive`, so recursion is explicit).
fn json_strategy(depth: usize) -> Box<dyn Strategy<Value = JsonValue>> {
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        number_strategy().prop_map(JsonValue::Number),
        string_strategy().prop_map(JsonValue::String),
    ];
    if depth == 0 {
        return proptest::boxed(leaf);
    }
    proptest::boxed(prop_oneof![
        leaf,
        prop::collection::vec(json_strategy(depth - 1), 0..5).prop_map(JsonValue::Array),
        prop::collection::vec((string_strategy(), json_strategy(depth - 1)), 0..5)
            .prop_map(JsonValue::Object),
    ])
}

/// Arbitrary byte soup rendered as (possibly invalid-JSON) text.
fn hostile_text_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..64)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

proptest! {
    /// write → parse is the identity on every document the writers can
    /// produce, and the round trip is a fixpoint (stable formatting).
    #[test]
    fn compact_json_round_trips(value in json_strategy(3)) {
        let text = value.to_compact();
        let parsed = schema::parse(&text).expect("own output parses");
        prop_assert_eq!(&parsed, &value);
        prop_assert_eq!(parsed.to_compact(), text);
    }

    /// The parser never panics on hostile bytes: any outcome is a value
    /// or a positioned error (1-based line/column).
    #[test]
    fn hostile_text_yields_positioned_errors_not_panics(text in hostile_text_strategy()) {
        match schema::parse(&text) {
            Ok(_) => {}
            Err(error) => {
                prop_assert!(error.line >= 1);
                prop_assert!(error.column >= 1);
                prop_assert!(!error.message.is_empty());
            }
        }
    }

    /// A document opens under its own schema id and refuses every other
    /// registered id — kind and version are both part of the contract.
    #[test]
    fn envelopes_accept_their_own_schema_and_refuse_others(which in 0usize..4) {
        let ids = [RUN_REPORT, CAMPAIGN_REPORT, CORPUS_ENTRY, SERVE_PROTOCOL];
        let id = ids[which];
        let doc = JsonValue::Object(vec![
            ("schema".to_string(), JsonValue::String(id.label())),
            ("payload".to_string(), JsonValue::Number(7.0)),
        ])
        .to_compact();
        let envelope = open_envelope(&doc).expect("well-formed envelope");
        prop_assert!(envelope.is(id));
        prop_assert!(envelope.expect(id).is_ok());
        for other in ids.iter().filter(|other| !other.matches(&id.label())) {
            prop_assert!(envelope.expect(*other).is_err());
        }
    }
}

// ---------------------------------------------------------------------------
// Corpus-off document pins
// ---------------------------------------------------------------------------

/// Replaces wall-clock-derived members (`wall_time_s`, `*_per_second`)
/// with `null`, recursively: everything else in a report document is a
/// deterministic function of the search, and the pins below assert
/// exactly that.
fn scrub_timings(value: &mut JsonValue) {
    match value {
        JsonValue::Array(items) => items.iter_mut().for_each(scrub_timings),
        JsonValue::Object(members) => {
            for (key, member) in members.iter_mut() {
                if key.contains("wall_time") || key.contains("per_second") {
                    *member = JsonValue::Null;
                } else {
                    scrub_timings(member);
                }
            }
        }
        _ => {}
    }
}

fn parse_scrubbed(doc: &str) -> JsonValue {
    let mut value = schema::parse(doc).expect("document parses");
    scrub_timings(&mut value);
    value
}

/// A tiny deterministic program: two conditional sites over one input.
fn toy_program() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
    FnProgram::new("toy", 1, 2, |input: &[f64], ctx: &mut ExecCtx| {
        let x = input[0];
        if ctx.branch(0, coverme_runtime::Cmp::Le, x, 1.0) {
            ctx.branch(1, coverme_runtime::Cmp::Eq, x, 0.25);
        }
    })
}

fn toy_config() -> CoverMeConfig {
    CoverMeConfig::new().with_n_start(8).with_seed(7)
}

/// With no corpus attached, the run document is deterministic byte for
/// byte, carries none of the corpus members, and opens as
/// `coverme-run-report/2` — i.e. it is exactly what the pre-corpus
/// emitter produced.
#[test]
fn corpus_off_run_documents_are_pinned() {
    let first = CoverMe::new(toy_config()).run(&toy_program());
    let second = CoverMe::new(toy_config()).run(&toy_program());
    let first_doc = first.to_run_json("toy", "toy.fpir");
    assert_eq!(
        parse_scrubbed(&first_doc),
        parse_scrubbed(&second.to_run_json("toy", "toy.fpir")),
        "corpus-off run documents must be deterministic up to wall time"
    );
    assert_eq!(first.warm_replayed, 0);
    assert!(!first_doc.contains("corpus_warm_start"));
    assert!(!first_doc.contains("warm_replayed"));
    let envelope = open_envelope(&first_doc).expect("document parses");
    assert!(envelope.expect(RUN_REPORT).is_ok());

    // The corpus members appear exactly when a warm start replayed
    // something — the only branch the emitter grew for the corpus.
    let mut warmed = first;
    warmed.warm_replayed = 3;
    let warm_doc = warmed.to_run_json("toy", "toy.fpir");
    assert!(warm_doc.contains("\"corpus_warm_start\": true"));
    assert!(warm_doc.contains("\"warm_replayed\": 3"));
    assert!(open_envelope(&warm_doc)
        .expect("warm document parses")
        .expect(RUN_REPORT)
        .is_ok());
}

/// Same pin for the campaign surface: no corpus → no corpus members, a
/// deterministic document, and the `coverme-campaign-report/5` envelope.
#[test]
fn corpus_off_campaign_documents_are_pinned() {
    let config = CampaignConfig::new()
        .with_base(toy_config())
        .with_workers(2);
    let inventory = vec![toy_program()];
    let first = Campaign::new(config.clone()).run(&inventory).to_json();
    let second = Campaign::new(config).run(&inventory).to_json();
    assert_eq!(
        parse_scrubbed(&first),
        parse_scrubbed(&second),
        "corpus-off campaign documents must be deterministic up to wall time"
    );
    assert!(!first.contains("corpus_warm_start"));
    assert!(!first.contains("warm_replayed"));
    let envelope = open_envelope(&first).expect("document parses");
    assert!(envelope.expect(CAMPAIGN_REPORT).is_ok());
}
