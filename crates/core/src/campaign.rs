//! Parallel coverage campaigns: one CoverMe search per program under test,
//! fanned out across worker threads.
//!
//! The paper evaluates CoverMe one Fdlibm function at a time; reproducing a
//! whole table is embarrassingly parallel because every function is searched
//! independently. A [`Campaign`] runs one [`CoverMe`] search per inventory
//! entry on a pool of scoped worker threads ([`std::thread::scope`]) and
//! aggregates the outcomes into a [`CampaignReport`] with per-function and
//! suite-level branch/block coverage — the shape the Table 2/3/5 harnesses
//! in `coverme-bench` consume.
//!
//! Three properties the runner guarantees:
//!
//! * **Determinism across thread counts.** Every function's seed is derived
//!   from the campaign seed and the *function name* (never from scheduling),
//!   and results are reported in inventory order, so a budget-less campaign
//!   produces identical searches whether it runs on 1 worker or 64.
//! * **Graceful budget expiry.** With a wall-clock budget set, workers stop
//!   claiming functions once the deadline passes and in-flight searches have
//!   their own time budget clamped to the time remaining; functions never
//!   started are reported as skipped rather than blocking the campaign.
//! * **Work stealing.** Functions are claimed from a shared atomic cursor,
//!   so a slow function (e.g. `ieee754_pow` with its 114 branches) does not
//!   serialize the suite behind it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use coverme_runtime::Program;

use crate::driver::{CoverMe, CoverMeConfig};
use crate::report::TestReport;

/// Configuration of a parallel campaign.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CampaignConfig {
    /// Template CoverMe configuration applied to every function. Its `seed`
    /// acts as the campaign master seed; each function runs with a seed
    /// derived from it and the function's name.
    pub base: CoverMeConfig,
    /// Number of worker threads. `0` (the default) autodetects: the
    /// machine's available parallelism, but at least two workers.
    pub workers: usize,
    /// Optional wall-clock budget for the whole campaign. Searches not
    /// started before the budget expires are skipped; the report still
    /// contains one entry per inventory function.
    pub time_budget: Option<Duration>,
}

impl CampaignConfig {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the template CoverMe configuration.
    pub fn base(mut self, base: CoverMeConfig) -> Self {
        self.base = base;
        self
    }

    /// Sets the worker-thread count (`0` autodetects, minimum two).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the campaign wall-clock budget.
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// The worker count this configuration resolves to for `inventory_len`
    /// functions: the explicit count, or autodetected parallelism (≥ 2),
    /// never more than there are functions.
    pub fn effective_workers(&self, inventory_len: usize) -> usize {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .max(2)
        } else {
            self.workers
        };
        requested.clamp(1, inventory_len.max(1))
    }
}

/// The outcome of one function of the campaign.
#[derive(Debug, Clone)]
pub struct FunctionResult {
    /// The program's name, as reported by [`Program::name`].
    pub name: String,
    /// The search report, or `None` if the campaign budget expired before
    /// this function's search started.
    pub report: Option<TestReport>,
}

impl FunctionResult {
    /// Branch coverage in percent, if the search ran.
    pub fn branch_coverage_percent(&self) -> Option<f64> {
        self.report.as_ref().map(TestReport::branch_coverage_percent)
    }

    /// Whether the search ran (was not skipped by the budget).
    pub fn completed(&self) -> bool {
        self.report.is_some()
    }
}

/// Aggregated result of a [`Campaign::run`], one entry per inventory
/// function in inventory order.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-function outcomes, in inventory order.
    pub results: Vec<FunctionResult>,
    /// Number of worker threads that ran the campaign.
    pub workers: usize,
    /// Wall-clock time of the whole campaign.
    pub wall_time: Duration,
}

impl CampaignReport {
    /// Number of functions whose search completed.
    pub fn completed(&self) -> usize {
        self.results.iter().filter(|r| r.completed()).count()
    }

    /// Number of functions skipped because the budget expired.
    pub fn skipped(&self) -> usize {
        self.results.len() - self.completed()
    }

    /// Suite-level branch coverage in percent: covered branches over total
    /// branches, summed across completed functions. An empty inventory is
    /// vacuously 100; a non-empty inventory where nothing completed (budget
    /// expired immediately) is 0.
    pub fn suite_branch_coverage_percent(&self) -> f64 {
        if let Some(zero) = self.vacuous_percent() {
            return zero;
        }
        let (covered, total) = self.branch_totals();
        if total == 0 {
            100.0
        } else {
            100.0 * covered as f64 / total as f64
        }
    }

    /// The percentage to report when no function completed: vacuously 100
    /// for an empty inventory, 0 when the budget skipped everything, `None`
    /// when at least one search ran.
    fn vacuous_percent(&self) -> Option<f64> {
        if self.completed() > 0 {
            None
        } else if self.results.is_empty() {
            Some(100.0)
        } else {
            Some(0.0)
        }
    }

    /// Suite-level block coverage in percent — the line-coverage proxy used
    /// by the Table 5 harness: per function, the entry block plus one block
    /// per branch arm. Vacuous cases as in
    /// [`suite_branch_coverage_percent`](Self::suite_branch_coverage_percent).
    pub fn suite_block_coverage_percent(&self) -> f64 {
        if let Some(zero) = self.vacuous_percent() {
            return zero;
        }
        let (covered, total) = self.branch_totals();
        let blocks_total = self.completed() + total;
        let blocks_covered = self.completed() + covered;
        100.0 * blocks_covered as f64 / blocks_total as f64
    }

    /// Mean per-function branch coverage in percent, the aggregation the
    /// paper's tables print. Vacuous cases as in
    /// [`suite_branch_coverage_percent`](Self::suite_branch_coverage_percent).
    pub fn mean_branch_coverage_percent(&self) -> f64 {
        if let Some(zero) = self.vacuous_percent() {
            return zero;
        }
        let completed: Vec<f64> = self
            .results
            .iter()
            .filter_map(FunctionResult::branch_coverage_percent)
            .collect();
        completed.iter().sum::<f64>() / completed.len() as f64
    }

    /// `(covered, total)` branch counts summed over completed functions.
    fn branch_totals(&self) -> (usize, usize) {
        self.results
            .iter()
            .filter_map(|r| r.report.as_ref())
            .fold((0, 0), |(covered, total), report| {
                (
                    covered + report.coverage.covered_count(),
                    total + report.coverage.total_branches(),
                )
            })
    }
}

impl std::fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<22} {:>9} {:>9} {:>12} {:>10}",
            "function", "#branches", "#inputs", "coverage(%)", "time(s)"
        )?;
        for result in &self.results {
            match &result.report {
                Some(report) => writeln!(
                    f,
                    "{:<22} {:>9} {:>9} {:>12.1} {:>10.3}",
                    result.name,
                    report.coverage.total_branches(),
                    report.inputs.len(),
                    report.branch_coverage_percent(),
                    report.wall_time.as_secs_f64()
                )?,
                None => writeln!(
                    f,
                    "{:<22} {:>9} {:>9} {:>12} {:>10}",
                    result.name, "-", "-", "skipped", "-"
                )?,
            }
        }
        writeln!(
            f,
            "suite: {:.1}% branch, {:.1}% block coverage over {} functions \
             ({} skipped) on {} workers in {:.2?}",
            self.suite_branch_coverage_percent(),
            self.suite_block_coverage_percent(),
            self.completed(),
            self.skipped(),
            self.workers,
            self.wall_time
        )
    }
}

/// A parallel campaign runner. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct Campaign {
    config: CampaignConfig,
}

impl Campaign {
    /// Creates a campaign with the given configuration.
    pub fn new(config: CampaignConfig) -> Campaign {
        Campaign { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Runs one CoverMe search per inventory program across the worker
    /// pool and aggregates the outcomes in inventory order.
    pub fn run<P: Program + Sync>(&self, inventory: &[P]) -> CampaignReport {
        let started = Instant::now();
        let workers = self.config.effective_workers(inventory.len());
        if inventory.is_empty() {
            return CampaignReport {
                results: Vec::new(),
                workers,
                wall_time: started.elapsed(),
            };
        }

        let deadline = self.config.time_budget.map(|budget| started + budget);
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<TestReport>> = Vec::new();
        slots.resize_with(inventory.len(), || None);

        let completed: Vec<Vec<(usize, TestReport)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, TestReport)> = Vec::new();
                        loop {
                            let index = cursor.fetch_add(1, Ordering::Relaxed);
                            if index >= inventory.len() {
                                break;
                            }
                            if deadline.is_some_and(|d| Instant::now() >= d) {
                                break;
                            }
                            let program = &inventory[index];
                            let config = self.function_config(program.name(), deadline);
                            local.push((index, CoverMe::new(config).run(program)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("campaign worker panicked"))
                .collect()
        });

        for (index, report) in completed.into_iter().flatten() {
            slots[index] = Some(report);
        }
        let results = inventory
            .iter()
            .zip(slots)
            .map(|(program, report)| FunctionResult {
                name: program.name().to_string(),
                report,
            })
            .collect();
        CampaignReport {
            results,
            workers,
            wall_time: started.elapsed(),
        }
    }

    /// The per-function configuration: the template with a name-derived seed
    /// and, under a campaign deadline, a time budget clamped to what's left.
    fn function_config(&self, name: &str, deadline: Option<Instant>) -> CoverMeConfig {
        let mut config = self.config.base.clone();
        config.seed = derive_function_seed(self.config.base.seed, name);
        if let Some(deadline) = deadline {
            let remaining = deadline.saturating_duration_since(Instant::now());
            config.time_budget = Some(match config.time_budget {
                Some(budget) => budget.min(remaining),
                None => remaining,
            });
        }
        config
    }
}

/// Derives a function's seed from the campaign seed and the function name
/// (FNV-1a), so searches are reproducible independent of scheduling and of
/// the function's position in the inventory.
fn derive_function_seed(campaign_seed: u64, name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    campaign_seed ^ hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverme_runtime::{Cmp, ExecCtx, FnProgram};

    type ToyProgram = FnProgram<fn(&[f64], &mut ExecCtx)>;
    /// Per-function content a scheduler must not influence: generated
    /// inputs and covered-branch count (or `None` for a skipped function).
    type Fingerprint = Vec<(String, Option<(Vec<Vec<f64>>, usize)>)>;

    /// A small inventory of distinct single-input programs, each with one
    /// easy and one harder (exact equality) conditional.
    fn inventory() -> Vec<ToyProgram> {
        fn alpha(input: &[f64], ctx: &mut ExecCtx) {
            let mut x = input[0];
            if ctx.branch(0, Cmp::Le, x, 1.0) {
                x += 2.5;
            }
            if ctx.branch(1, Cmp::Eq, x * x, 4.0) {
                // target
            }
        }
        fn beta(input: &[f64], ctx: &mut ExecCtx) {
            let x = input[0];
            if ctx.branch(0, Cmp::Gt, x, 10.0) {
                // easy
            }
            if ctx.branch(1, Cmp::Eq, x, -3.5) {
                // point target
            }
        }
        // Site 1 must stay nested under site 0: the descendant relation is
        // what exercises saturation tracking.
        #[allow(clippy::collapsible_if)]
        fn gamma(input: &[f64], ctx: &mut ExecCtx) {
            let x = input[0];
            if ctx.branch(0, Cmp::Lt, x, 0.0) {
                if ctx.branch(1, Cmp::Ge, x, -2.0) {
                    // nested
                }
            }
        }
        vec![
            FnProgram::new("alpha", 1, 2, alpha as fn(&[f64], &mut ExecCtx)),
            FnProgram::new("beta", 1, 2, beta as fn(&[f64], &mut ExecCtx)),
            FnProgram::new("gamma", 1, 2, gamma as fn(&[f64], &mut ExecCtx)),
        ]
    }

    fn quick_base() -> CoverMeConfig {
        CoverMeConfig::default().n_start(40).seed(7)
    }

    /// The scheduling-independent content of a report, for equality checks.
    fn fingerprint(report: &CampaignReport) -> Fingerprint {
        report
            .results
            .iter()
            .map(|r| {
                (
                    r.name.clone(),
                    r.report
                        .as_ref()
                        .map(|t| (t.inputs.clone(), t.coverage.covered_count())),
                )
            })
            .collect()
    }

    #[test]
    fn identical_reports_across_thread_counts() {
        let programs = inventory();
        let runs: Vec<CampaignReport> = [1, 2, 4]
            .iter()
            .map(|&workers| {
                Campaign::new(CampaignConfig::new().base(quick_base()).workers(workers))
                    .run(&programs)
            })
            .collect();
        assert_eq!(fingerprint(&runs[0]), fingerprint(&runs[1]));
        assert_eq!(fingerprint(&runs[0]), fingerprint(&runs[2]));
        assert_eq!(runs[0].completed(), programs.len());
    }

    #[test]
    fn results_arrive_in_inventory_order() {
        let programs = inventory();
        let report =
            Campaign::new(CampaignConfig::new().base(quick_base()).workers(3)).run(&programs);
        let names: Vec<&str> = report.results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["alpha", "beta", "gamma"]);
    }

    #[test]
    fn expired_budget_returns_partial_results() {
        let programs = inventory();
        let config = CampaignConfig::new()
            .base(quick_base())
            .workers(2)
            .time_budget(Duration::ZERO);
        let report = Campaign::new(config).run(&programs);
        // One entry per function either way, every one skipped: the deadline
        // had already passed when the workers started claiming.
        assert_eq!(report.results.len(), programs.len());
        assert_eq!(report.skipped(), programs.len());
        assert_eq!(report.completed(), 0);
        assert!(report.to_string().contains("skipped"));
        // Nothing ran, so nothing is covered — not vacuously 100%.
        assert_eq!(report.suite_branch_coverage_percent(), 0.0);
        assert_eq!(report.suite_block_coverage_percent(), 0.0);
        assert_eq!(report.mean_branch_coverage_percent(), 0.0);
    }

    #[test]
    fn empty_inventory_yields_empty_report() {
        let programs: Vec<ToyProgram> = Vec::new();
        let report = Campaign::new(CampaignConfig::default()).run(&programs);
        assert!(report.results.is_empty());
        assert_eq!(report.completed(), 0);
        assert_eq!(report.skipped(), 0);
        assert_eq!(report.suite_branch_coverage_percent(), 100.0);
        assert_eq!(report.mean_branch_coverage_percent(), 100.0);
    }

    #[test]
    fn per_function_seeds_differ_and_are_stable() {
        assert_ne!(
            derive_function_seed(7, "ieee754_exp"),
            derive_function_seed(7, "ieee754_log")
        );
        assert_eq!(
            derive_function_seed(7, "ieee754_exp"),
            derive_function_seed(7, "ieee754_exp")
        );
        // Campaign seed participates.
        assert_ne!(
            derive_function_seed(7, "ieee754_exp"),
            derive_function_seed(8, "ieee754_exp")
        );
    }

    #[test]
    fn suite_aggregation_sums_branches() {
        let programs = inventory();
        let report =
            Campaign::new(CampaignConfig::new().base(quick_base()).workers(2)).run(&programs);
        let covered: usize = report
            .results
            .iter()
            .filter_map(|r| r.report.as_ref())
            .map(|t| t.coverage.covered_count())
            .sum();
        let total: usize = report
            .results
            .iter()
            .filter_map(|r| r.report.as_ref())
            .map(|t| t.coverage.total_branches())
            .sum();
        let expected = 100.0 * covered as f64 / total as f64;
        assert!((report.suite_branch_coverage_percent() - expected).abs() < 1e-9);
        // All three toy programs are fully coverable.
        assert_eq!(report.suite_branch_coverage_percent(), 100.0);
    }

    #[test]
    fn effective_workers_defaults_to_at_least_two() {
        let config = CampaignConfig::default();
        assert!(config.effective_workers(40) >= 2);
        // Never more workers than functions; at least one for tiny suites.
        assert_eq!(config.effective_workers(1), 1);
        assert_eq!(CampaignConfig::new().workers(8).effective_workers(3), 3);
    }
}
