//! Parallel coverage campaigns: an event-driven scheduler that fans
//! epoch-resumable CoverMe searches across worker threads and streams
//! report rows as functions finish.
//!
//! The paper evaluates CoverMe one Fdlibm function at a time; reproducing a
//! whole table is embarrassingly parallel because every function is searched
//! independently. A [`Campaign`] schedules **epoch tasks** — one slice of
//! one *(function, shard)* search ([`SearchState::run_rounds`]) — on a pool
//! of scoped worker threads ([`std::thread::scope`]). With `shards = 1` and
//! sync off (the defaults) every function is a single task running one
//! [`CoverMe`](crate::CoverMe) search to exhaustion, exactly the paper's
//! setup; with
//! `shards > 1` each function's `n_start` budget splits across shard units
//! ([`crate::shard`]), and with `sync_epochs > 1` each shard's slice is
//! further cut into epochs with a **barrier rendezvous per function**
//! between them: when the last shard of a function's epoch parks its state,
//! the rendezvous exchanges
//! [`SaturationDelta`](crate::saturation::SaturationDelta)s among the shards
//! ([`crate::sync::exchange_deltas_gated`] — commutative, so arrival order cannot
//! matter) and enqueues the next epoch's tasks. Because tasks are claimed
//! from one shared queue seeded in function-major order, a trailing heavy
//! function (e.g. `ieee754_pow` with its 114 branches) fans out over the
//! workers that would otherwise sit idle at the end of a campaign.
//!
//! Finished functions do not wait for the suite: the moment a function's
//! last epoch completes, its merged [`FunctionResult`] is emitted as a
//! [`CampaignEvent`] — [`Campaign::run_with`] hands every event to a caller
//! callback as it lands (the `fdlibm_campaign --stream` mode prints table
//! rows this way), while [`Campaign::run`] just collects them. Either way
//! the final [`CampaignReport`] lists results in inventory order.
//!
//! Properties the runner guarantees:
//!
//! * **Determinism across thread counts.** Every function's seed is derived
//!   from the campaign seed, the *function name* and its duplicate-name
//!   occurrence (never from scheduling or its inventory position, so a
//!   subset campaign reproduces the full campaign's rows); each epoch
//!   task's work is a deterministic function of
//!   `(seed, shards, sync_epochs)`; and delta exchange is commutative — so
//!   a budget-less campaign produces identical searches whether it runs on
//!   1 worker or 64.
//! * **Graceful budget expiry.** With a wall-clock budget set, workers check
//!   the deadline *before* claiming a task — an expired deadline never
//!   starts a zero-budget search that would be counted as completed — and
//!   searches created mid-campaign have their own time budget clamped to
//!   the time remaining. Functions none of whose shards ran are reported as
//!   [`FunctionStatus::Skipped`]; functions the deadline cut mid-search
//!   keep everything their shards completed (the parked [`SearchState`]s
//!   are finalized at the last completed epoch) and are reported as
//!   [`FunctionStatus::Partial`] instead of being dropped.
//! * **Work conservation.** Tasks are claimed from a shared queue guarded
//!   by a condvar, so a slow function does not serialize the suite behind
//!   it and idle workers sleep instead of spinning.

use std::collections::VecDeque;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use coverme_runtime::Program;

use crate::corpus::CorpusStore;
use crate::driver::{CancelToken, CoverMeConfig, EpochOutcome, SchedulerPolicy, SearchState};
use crate::report::TestReport;
use crate::saturation::SaturationDelta;
use crate::shard::{merge_shards, ShardOutcome};
use crate::sync::{exchange_deltas_gated, SyncPlan};

/// Configuration of a parallel campaign.
///
/// Non-exhaustive: construct via [`CampaignConfig::new`] /
/// [`Default::default`] and customize with the `with_*` builders, so
/// configurations written against this version keep compiling as the
/// campaign API grows fields.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct CampaignConfig {
    /// Template CoverMe configuration applied to every function. Its `seed`
    /// acts as the campaign master seed; each function runs with a seed
    /// derived from it, the function's name and its duplicate-name
    /// occurrence. Its `shards` field sets the per-function shard count of
    /// the two-level schedule.
    pub base: CoverMeConfig,
    /// Number of worker threads. `0` (the default) autodetects: the
    /// machine's available parallelism, but at least two workers.
    pub workers: usize,
    /// Optional wall-clock budget for the whole campaign. Searches not
    /// started before the budget expires are skipped; the report still
    /// contains one entry per inventory function.
    pub time_budget: Option<Duration>,
    /// Optional persistent corpus store. When set, every function's search
    /// warm-starts from the store's entry for its fingerprint (prior
    /// winners replayed, prior infeasibility verdicts seeded), and every
    /// [`FunctionStatus::Complete`] result is recorded back. `None` (the
    /// default) reproduces the corpus-less behavior bit for bit.
    pub corpus: Option<Arc<CorpusStore>>,
    /// Optional cooperative cancellation token, shared with every
    /// function's search: when cancelled, in-flight searches finalize the
    /// progress they completed (reported [`FunctionStatus::Partial`], like
    /// a deadline expiry) instead of running out their schedules — the
    /// serve daemon's teardown seam.
    pub cancel: Option<CancelToken>,
}

impl PartialEq for CampaignConfig {
    fn eq(&self, other: &Self) -> bool {
        // The corpus store has no value identity (it is a directory
        // handle); two configs are equal when they share the same store.
        let corpus_eq = match (&self.corpus, &other.corpus) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        };
        self.base == other.base
            && self.workers == other.workers
            && self.time_budget == other.time_budget
            && corpus_eq
            && self.cancel == other.cancel
    }
}

impl CampaignConfig {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the template CoverMe configuration.
    pub fn with_base(mut self, base: CoverMeConfig) -> Self {
        self.base = base;
        self
    }

    /// Sets the worker-thread count (`0` autodetects, minimum two).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the per-function shard count on the template configuration
    /// (convenience for `base.shards`).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.base.shards = shards;
        self
    }

    /// Sets the per-function sync-epoch count on the template configuration
    /// (convenience for `base.sync_epochs`; `0`/`1` = off, see
    /// [`crate::sync`]).
    pub fn with_sync_epochs(mut self, sync_epochs: usize) -> Self {
        self.base.sync_epochs = sync_epochs;
        self
    }

    /// Sets the campaign wall-clock budget.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Attaches a persistent corpus store (see [`crate::corpus`]): warm
    /// starts on the way in, [`FunctionStatus::Complete`] recordings on
    /// the way out.
    pub fn with_corpus(mut self, corpus: Arc<CorpusStore>) -> Self {
        self.corpus = Some(corpus);
        self
    }

    /// Attaches a cooperative cancellation token shared with every search.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Alias of [`with_base`](Self::with_base) (pre-builder spelling).
    pub fn base(self, base: CoverMeConfig) -> Self {
        self.with_base(base)
    }

    /// Alias of [`with_workers`](Self::with_workers) (pre-builder
    /// spelling).
    pub fn workers(self, workers: usize) -> Self {
        self.with_workers(workers)
    }

    /// Alias of [`with_shards`](Self::with_shards) (pre-builder spelling).
    pub fn shards(self, shards: usize) -> Self {
        self.with_shards(shards)
    }

    /// Alias of [`with_sync_epochs`](Self::with_sync_epochs) (pre-builder
    /// spelling).
    pub fn sync_epochs(self, sync_epochs: usize) -> Self {
        self.with_sync_epochs(sync_epochs)
    }

    /// Alias of [`with_time_budget`](Self::with_time_budget) (pre-builder
    /// spelling).
    pub fn time_budget(self, budget: Duration) -> Self {
        self.with_time_budget(budget)
    }

    /// The campaign's per-function shard count: the requested count clamped
    /// so every shard keeps at least
    /// [`MIN_ROUNDS_PER_SHARD`](crate::shard::MIN_ROUNDS_PER_SHARD)
    /// starting points (see [`CoverMeConfig::effective_shards`]).
    pub fn effective_shards(&self) -> usize {
        self.base.effective_shards()
    }

    /// The worker count this configuration resolves to for `inventory_len`
    /// functions: the explicit count, or autodetected parallelism (≥ 2),
    /// never more than there are work units (functions × shards).
    pub fn effective_workers(&self, inventory_len: usize) -> usize {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .max(2)
        } else {
            self.workers
        };
        let units = inventory_len.saturating_mul(self.effective_shards());
        requested.clamp(1, units.max(1))
    }
}

/// Per-function accounting of the bandit scheduler's eval-budget grants
/// (see [`SchedulerPolicy::Bandit`]): how much of the global pool the
/// function received, in how many installments. Only present on reports
/// produced by a bandit campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BudgetLedger {
    /// Evaluations granted to this function from the global pool (the sum
    /// over all ledgers never exceeds the pool; a function may *spend*
    /// slightly more than granted because rounds are atomic).
    pub granted: usize,
    /// Number of separate grants (installments) the function received.
    pub grants: usize,
}

/// How far the campaign got with one function before reporting it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FunctionStatus {
    /// Every shard ran its full schedule (to saturation or budget
    /// exhaustion) — the result a budget-less campaign always produces.
    Complete,
    /// The campaign deadline cut the search: some shards never ran, or a
    /// shard's wall-clock budget expired mid-slice. The report merges
    /// everything that did complete (the parked search states are
    /// finalized at the last completed epoch) instead of dropping it.
    Partial,
    /// The deadline expired before any of the function's shards started;
    /// there is no report.
    Skipped,
}

impl FunctionStatus {
    /// Stable lowercase label (used by the JSON artifact).
    pub fn label(&self) -> &'static str {
        match self {
            FunctionStatus::Complete => "complete",
            FunctionStatus::Partial => "partial",
            FunctionStatus::Skipped => "skipped",
        }
    }
}

/// A progress notification of a running campaign, delivered to the
/// [`Campaign::run_with`] callback the moment the scheduler produces it —
/// the streaming seam `fdlibm_campaign --stream` prints rows from.
#[derive(Debug, Clone)]
pub enum CampaignEvent {
    /// A function's last epoch completed (or the deadline finalized its
    /// partial progress) and its merged result is ready. Events arrive in
    /// *completion* order, not inventory order; `index` is the function's
    /// inventory position.
    FunctionFinished {
        /// Inventory index of the finished function.
        index: usize,
        /// The function's merged result — the same value the final
        /// [`CampaignReport`] carries at `results[index]`.
        result: FunctionResult,
    },
}

/// The outcome of one function of the campaign.
#[derive(Debug, Clone)]
pub struct FunctionResult {
    /// The program's name, as reported by [`Program::name`].
    pub name: String,
    /// The search report (merged across shards), or `None` if the campaign
    /// budget expired before any of this function's shards started.
    pub report: Option<TestReport>,
    /// How many of the function's shard units ran before the budget
    /// expired (equals the configured shard count on an unconstrained
    /// campaign, `0` when skipped).
    pub shards_run: usize,
    /// Whether the function ran to completion, was cut by the deadline
    /// with partial progress kept, or never started.
    pub status: FunctionStatus,
    /// The bandit scheduler's grant ledger for this function; `None` on
    /// fixed-schedule campaigns.
    pub budget: Option<BudgetLedger>,
}

impl FunctionResult {
    /// Branch coverage in percent, if the search ran **and** the function
    /// has branches to measure. Branch-free functions yield `None` so the
    /// mean over a suite is not diluted by vacuous 100s.
    pub fn branch_coverage_percent(&self) -> Option<f64> {
        self.report
            .as_ref()
            .filter(|report| report.coverage.total_branches() > 0)
            .map(TestReport::branch_coverage_percent)
    }

    /// Whether the search ran (was not skipped by the budget).
    pub fn completed(&self) -> bool {
        self.report.is_some()
    }

    /// Representing-function evaluations the search spent (0 if skipped).
    pub fn evaluations(&self) -> usize {
        self.report.as_ref().map_or(0, |report| report.evaluations)
    }

    /// Evaluations served from the objective engine's memoization cache
    /// (0 if skipped).
    pub fn cache_hits(&self) -> usize {
        self.report.as_ref().map_or(0, |report| report.cache_hits)
    }

    /// Evaluation throughput of the search in evals/sec, if it ran.
    pub fn evals_per_second(&self) -> Option<f64> {
        self.report.as_ref().map(TestReport::evals_per_second)
    }

    /// Productive evaluation throughput in evals/sec, if the search ran —
    /// evaluations spent in aborted (timeout/trap) rounds are excluded
    /// from the numerator, so a function that mostly spins does not
    /// inflate the table (see
    /// [`TestReport::effective_evals_per_second`]).
    pub fn effective_evals_per_second(&self) -> Option<f64> {
        self.report
            .as_ref()
            .map(TestReport::effective_evals_per_second)
    }

    /// Evaluations this search's aborted (timeout/trap) rounds consumed
    /// (0 if skipped).
    pub fn aborted_evaluations(&self) -> usize {
        self.report
            .as_ref()
            .map_or(0, TestReport::aborted_evaluations)
    }

    /// Branches the generalized infeasibility heuristic blamed across the
    /// search's failed rounds (0 if skipped).
    pub fn infeasible_blamed(&self) -> usize {
        self.report
            .as_ref()
            .map_or(0, TestReport::infeasible_blamed)
    }

    /// Sync barriers the adaptive gate skipped for this function's shards
    /// (0 if skipped or sync off).
    pub fn barriers_skipped(&self) -> usize {
        self.report
            .as_ref()
            .map_or(0, |report| report.barriers_skipped)
    }

    /// One formatted campaign-table row (no trailing newline) — exactly
    /// the line [`CampaignReport`]'s `Display` prints for this function,
    /// exposed so streaming consumers can print rows as
    /// [`CampaignEvent`]s land.
    pub fn table_row(&self) -> String {
        match &self.report {
            Some(report) => {
                let mut row = format!(
                    "{:<22} {:>9} {:>9} {:>12.1} {:>10} {:>10} {:>9.0} {:>10.3}",
                    self.name,
                    report.coverage.total_branches(),
                    report.inputs.len(),
                    report.branch_coverage_percent(),
                    report.evaluations,
                    report.cache_hits,
                    // Productive throughput: evals burnt in aborted
                    // (timeout/trap) rounds don't count toward the rate.
                    report.effective_evals_per_second(),
                    report.wall_time.as_secs_f64()
                );
                if self.status == FunctionStatus::Partial {
                    row.push_str(" (partial)");
                }
                row
            }
            None => format!(
                "{:<22} {:>9} {:>9} {:>12} {:>10} {:>10} {:>9} {:>10}",
                self.name, "-", "-", "skipped", "-", "-", "-", "-"
            ),
        }
    }
}

/// Aggregated result of a [`Campaign::run`], one entry per inventory
/// function in inventory order.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-function outcomes, in inventory order.
    pub results: Vec<FunctionResult>,
    /// Number of worker threads that ran the campaign.
    pub workers: usize,
    /// Per-function shard count of the schedule.
    pub shards: usize,
    /// Effective per-function sync-epoch count of the schedule (1 = sync
    /// off, the pre-sync behavior).
    pub sync_epochs: usize,
    /// The scheduler that allocated evaluations across functions.
    pub scheduler: SchedulerPolicy,
    /// The global evaluation pool of a bandit campaign, or the per-search
    /// eval cap of a fixed campaign (`None` = unbounded, the default).
    pub eval_budget: Option<usize>,
    /// Wall-clock time of the whole campaign.
    pub wall_time: Duration,
}

impl CampaignReport {
    /// Number of functions whose search produced a report (fully or cut by
    /// the deadline with partial progress kept).
    pub fn completed(&self) -> usize {
        self.results.iter().filter(|r| r.completed()).count()
    }

    /// Number of functions skipped because the budget expired.
    pub fn skipped(&self) -> usize {
        self.results.len() - self.completed()
    }

    /// Number of functions the deadline cut mid-search (their reports merge
    /// the progress their shards completed).
    pub fn partial(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.status == FunctionStatus::Partial)
            .count()
    }

    /// Suite-level branch coverage in percent: covered branches over total
    /// branches, summed across completed functions. An empty inventory is
    /// vacuously 100; a non-empty inventory where nothing completed (budget
    /// expired immediately) is 0.
    pub fn suite_branch_coverage_percent(&self) -> f64 {
        if let Some(zero) = self.vacuous_percent() {
            return zero;
        }
        let (covered, total) = self.branch_totals();
        if total == 0 {
            100.0
        } else {
            100.0 * covered as f64 / total as f64
        }
    }

    /// The percentage to report when no function completed: vacuously 100
    /// for an empty inventory, 0 when the budget skipped everything, `None`
    /// when at least one search ran.
    fn vacuous_percent(&self) -> Option<f64> {
        if self.completed() > 0 {
            None
        } else if self.results.is_empty() {
            Some(100.0)
        } else {
            Some(0.0)
        }
    }

    /// Suite-level block coverage in percent — the line-coverage proxy used
    /// by the Table 5 harness: per function, the entry block plus one block
    /// per branch arm. Vacuous cases as in
    /// [`suite_branch_coverage_percent`](Self::suite_branch_coverage_percent).
    pub fn suite_block_coverage_percent(&self) -> f64 {
        if let Some(zero) = self.vacuous_percent() {
            return zero;
        }
        let (covered, total) = self.branch_totals();
        let blocks_total = self.completed() + total;
        let blocks_covered = self.completed() + covered;
        100.0 * blocks_covered as f64 / blocks_total as f64
    }

    /// Mean per-function branch coverage in percent, the aggregation the
    /// paper's tables print. Branch-free functions contribute nothing to the
    /// mean; when *every* completed function is branch-free the mean is the
    /// vacuous 100 (there was nothing to miss), never `NaN`. Other vacuous
    /// cases as in
    /// [`suite_branch_coverage_percent`](Self::suite_branch_coverage_percent).
    pub fn mean_branch_coverage_percent(&self) -> f64 {
        if let Some(zero) = self.vacuous_percent() {
            return zero;
        }
        let percents: Vec<f64> = self
            .results
            .iter()
            .filter_map(FunctionResult::branch_coverage_percent)
            .collect();
        if percents.is_empty() {
            // Completed functions exist but none has branches: vacuously
            // full coverage, not 0/0.
            100.0
        } else {
            percents.iter().sum::<f64>() / percents.len() as f64
        }
    }

    /// Total representing-function evaluations across completed functions
    /// (objective calls, including cache hits).
    pub fn total_evaluations(&self) -> usize {
        self.results.iter().map(FunctionResult::evaluations).sum()
    }

    /// Total evaluations the objective engines answered from their
    /// memoization caches across completed functions.
    pub fn total_cache_hits(&self) -> usize {
        self.results.iter().map(FunctionResult::cache_hits).sum()
    }

    /// Total evaluations that ran out of fuel across completed functions
    /// (see [`TestReport::timeouts`]).
    pub fn total_timeouts(&self) -> usize {
        self.results
            .iter()
            .filter_map(|r| r.report.as_ref())
            .map(|r| r.timeouts)
            .sum()
    }

    /// Total evaluations that trapped mid-run across completed functions
    /// (see [`TestReport::traps`]).
    pub fn total_traps(&self) -> usize {
        self.results
            .iter()
            .filter_map(|r| r.report.as_ref())
            .map(|r| r.traps)
            .sum()
    }

    /// Aggregate evaluation throughput of the campaign: total evaluations
    /// over the campaign's wall-clock time (0 when nothing ran or the
    /// campaign was too fast to measure). With several workers this exceeds
    /// any single search's rate — it measures the fleet, not a core.
    pub fn suite_evals_per_second(&self) -> f64 {
        let seconds = self.wall_time.as_secs_f64();
        if seconds > 0.0 {
            self.total_evaluations() as f64 / seconds
        } else {
            0.0
        }
    }

    /// Aggregate *productive* throughput: like
    /// [`suite_evals_per_second`](Self::suite_evals_per_second) with the
    /// evaluations of aborted (timeout/trap) rounds excluded from the
    /// numerator.
    pub fn suite_effective_evals_per_second(&self) -> f64 {
        let seconds = self.wall_time.as_secs_f64();
        if seconds <= 0.0 {
            return 0.0;
        }
        let aborted: usize = self
            .results
            .iter()
            .map(FunctionResult::aborted_evaluations)
            .sum();
        self.total_evaluations().saturating_sub(aborted) as f64 / seconds
    }

    /// Total branches the generalized infeasibility heuristic blamed
    /// across the suite's failed rounds.
    pub fn total_infeasible_blamed(&self) -> usize {
        self.results
            .iter()
            .map(FunctionResult::infeasible_blamed)
            .sum()
    }

    /// Total sync barriers the adaptive gate skipped across the suite.
    pub fn total_barriers_skipped(&self) -> usize {
        self.results
            .iter()
            .map(FunctionResult::barriers_skipped)
            .sum()
    }

    /// Total corpus inputs replayed across the suite's warm starts
    /// (0 for a campaign run without a corpus store).
    pub fn total_warm_replayed(&self) -> usize {
        self.results
            .iter()
            .filter_map(|r| r.report.as_ref())
            .map(|t| t.warm_replayed)
            .sum()
    }

    /// Whether any function of this campaign warm-started from the corpus.
    pub fn corpus_warm_start(&self) -> bool {
        self.total_warm_replayed() > 0
    }

    /// Suite branch coverage per million evaluations — the
    /// machine-independent budget-economics ratio the benchmark gate
    /// tracks (covered branches per 1e6 evals; 0 when nothing ran).
    pub fn coverage_per_megaeval(&self) -> f64 {
        let evals = self.total_evaluations();
        if evals == 0 {
            return 0.0;
        }
        let (covered, _) = self.branch_totals();
        covered as f64 * 1.0e6 / evals as f64
    }

    /// Serializes the report as a self-contained JSON document — the
    /// machine-readable artifact the nightly CI job stores (see
    /// `examples/fdlibm_campaign.rs --json`). Hand-rolled (the build image
    /// has no serde); numbers use Rust's shortest-roundtrip `Display`,
    /// non-finite rates are clamped to 0.
    pub fn to_json(&self) -> String {
        self.write_json(None, None)
    }

    /// Like [`to_json`](Self::to_json), but additionally records a sync-off
    /// baseline run of the same inventory: per function an
    /// `evals_sync_off` column next to `evals`, and suite-level sync-off
    /// eval totals — the columns the `BENCH_campaign.json`
    /// artifact tracks the feedback-recovery claim with.
    ///
    /// # Panics
    ///
    /// Panics if the baseline describes a different inventory (result
    /// counts differ).
    pub fn to_json_with_sync_baseline(&self, sync_off: &CampaignReport) -> String {
        assert_eq!(
            self.results.len(),
            sync_off.results.len(),
            "sync baseline must come from the same inventory"
        );
        self.write_json(Some(sync_off), None)
    }

    /// Like [`to_json`](Self::to_json), but additionally records a
    /// fixed-scheduler baseline run of the same inventory: per function
    /// `evals_fixed` / `covered_branches_fixed` columns, plus suite-level
    /// fixed eval totals — the side-by-side the nightly
    /// `--compare-budget` artifact tracks the budget-economics claim with.
    ///
    /// # Panics
    ///
    /// Panics if the baseline describes a different inventory (result
    /// counts differ).
    pub fn to_json_with_budget_baseline(&self, fixed: &CampaignReport) -> String {
        assert_eq!(
            self.results.len(),
            fixed.results.len(),
            "budget baseline must come from the same inventory"
        );
        self.write_json(None, Some(fixed))
    }

    fn write_json(
        &self,
        sync_off: Option<&CampaignReport>,
        fixed: Option<&CampaignReport>,
    ) -> String {
        let mut out = String::with_capacity(4096 + 256 * self.results.len());
        out.push_str("{\n");
        push_json_field(
            &mut out,
            "  ",
            "schema",
            &crate::report::schema::CAMPAIGN_REPORT.label(),
            true,
        );
        push_json_number(&mut out, "  ", "workers", self.workers as f64, true);
        push_json_number(&mut out, "  ", "shards", self.shards as f64, true);
        push_json_number(&mut out, "  ", "sync_epochs", self.sync_epochs as f64, true);
        out.push_str("  \"scheduler\": \"");
        out.push_str(self.scheduler.label());
        out.push_str("\",\n");
        if let Some(budget) = self.eval_budget {
            push_json_number(&mut out, "  ", "eval_budget", budget as f64, true);
        }
        if let Some(baseline) = sync_off {
            push_json_number(
                &mut out,
                "  ",
                "total_evaluations_sync_off",
                baseline.total_evaluations() as f64,
                true,
            );
        }
        if let Some(baseline) = fixed {
            push_json_number(
                &mut out,
                "  ",
                "total_evaluations_fixed",
                baseline.total_evaluations() as f64,
                true,
            );
            push_json_number(
                &mut out,
                "  ",
                "suite_branch_coverage_percent_fixed",
                baseline.suite_branch_coverage_percent(),
                true,
            );
        }
        push_json_number(
            &mut out,
            "  ",
            "wall_time_s",
            self.wall_time.as_secs_f64(),
            true,
        );
        push_json_number(&mut out, "  ", "completed", self.completed() as f64, true);
        push_json_number(&mut out, "  ", "skipped", self.skipped() as f64, true);
        push_json_number(
            &mut out,
            "  ",
            "suite_branch_coverage_percent",
            self.suite_branch_coverage_percent(),
            true,
        );
        push_json_number(
            &mut out,
            "  ",
            "suite_block_coverage_percent",
            self.suite_block_coverage_percent(),
            true,
        );
        push_json_number(
            &mut out,
            "  ",
            "mean_branch_coverage_percent",
            self.mean_branch_coverage_percent(),
            true,
        );
        push_json_number(
            &mut out,
            "  ",
            "total_evaluations",
            self.total_evaluations() as f64,
            true,
        );
        push_json_number(
            &mut out,
            "  ",
            "total_cache_hits",
            self.total_cache_hits() as f64,
            true,
        );
        push_json_number(
            &mut out,
            "  ",
            "total_timeouts",
            self.total_timeouts() as f64,
            true,
        );
        push_json_number(
            &mut out,
            "  ",
            "total_traps",
            self.total_traps() as f64,
            true,
        );
        push_json_number(
            &mut out,
            "  ",
            "suite_evals_per_second",
            self.suite_evals_per_second(),
            true,
        );
        push_json_number(
            &mut out,
            "  ",
            "suite_effective_evals_per_second",
            self.suite_effective_evals_per_second(),
            true,
        );
        push_json_number(
            &mut out,
            "  ",
            "total_infeasible_blamed",
            self.total_infeasible_blamed() as f64,
            true,
        );
        push_json_number(
            &mut out,
            "  ",
            "total_barriers_skipped",
            self.total_barriers_skipped() as f64,
            true,
        );
        push_json_number(
            &mut out,
            "  ",
            "coverage_per_megaeval",
            self.coverage_per_megaeval(),
            true,
        );
        // Corpus keys are emitted only when a warm start actually replayed
        // inputs, so a corpus-less campaign's artifact stays byte-identical
        // to earlier releases (pinned by `schema_properties`).
        if self.total_warm_replayed() > 0 {
            push_json_bool(&mut out, "  ", "corpus_warm_start", true, true);
            push_json_number(
                &mut out,
                "  ",
                "total_warm_replayed",
                self.total_warm_replayed() as f64,
                true,
            );
        }
        out.push_str("  \"functions\": [\n");
        for (index, result) in self.results.iter().enumerate() {
            out.push_str("    {\n");
            push_json_field(&mut out, "      ", "name", &result.name, true);
            push_json_bool(&mut out, "      ", "completed", result.completed(), true);
            out.push_str("      \"status\": \"");
            out.push_str(result.status.label());
            out.push_str("\",\n");
            push_json_number(
                &mut out,
                "      ",
                "shards_run",
                result.shards_run as f64,
                true,
            );
            if let Some(baseline) = sync_off {
                push_json_number(
                    &mut out,
                    "      ",
                    "evals_sync_off",
                    baseline.results[index].evaluations() as f64,
                    true,
                );
                if let Some(off_report) = &baseline.results[index].report {
                    push_json_number(
                        &mut out,
                        "      ",
                        "covered_branches_sync_off",
                        off_report.coverage.covered_count() as f64,
                        true,
                    );
                }
            }
            if let Some(baseline) = fixed {
                push_json_number(
                    &mut out,
                    "      ",
                    "evals_fixed",
                    baseline.results[index].evaluations() as f64,
                    true,
                );
                if let Some(fixed_report) = &baseline.results[index].report {
                    push_json_number(
                        &mut out,
                        "      ",
                        "covered_branches_fixed",
                        fixed_report.coverage.covered_count() as f64,
                        true,
                    );
                }
            }
            if let Some(ledger) = &result.budget {
                push_json_number(
                    &mut out,
                    "      ",
                    "budget_granted",
                    ledger.granted as f64,
                    true,
                );
                push_json_number(
                    &mut out,
                    "      ",
                    "budget_grants",
                    ledger.grants as f64,
                    true,
                );
            }
            match &result.report {
                Some(report) => {
                    out.push_str("      \"backend\": \"");
                    out.push_str(report.backend);
                    out.push_str("\",\n");
                    out.push_str("      \"simd_isa\": \"");
                    out.push_str(report.simd_isa);
                    out.push_str("\",\n");
                    push_json_number(
                        &mut out,
                        "      ",
                        "lane_width",
                        report.lane_width as f64,
                        true,
                    );
                    push_json_number(
                        &mut out,
                        "      ",
                        "branches",
                        report.coverage.total_branches() as f64,
                        true,
                    );
                    push_json_number(
                        &mut out,
                        "      ",
                        "covered_branches",
                        report.coverage.covered_count() as f64,
                        true,
                    );
                    push_json_number(
                        &mut out,
                        "      ",
                        "branch_coverage_percent",
                        report.branch_coverage_percent(),
                        true,
                    );
                    push_json_number(
                        &mut out,
                        "      ",
                        "inputs",
                        report.inputs.len() as f64,
                        true,
                    );
                    push_json_number(&mut out, "      ", "evals", report.evaluations as f64, true);
                    push_json_number(
                        &mut out,
                        "      ",
                        "epochs_run",
                        report.epochs.len() as f64,
                        true,
                    );
                    push_json_number(
                        &mut out,
                        "      ",
                        "cache_hits",
                        report.cache_hits as f64,
                        true,
                    );
                    push_json_number(&mut out, "      ", "timeouts", report.timeouts as f64, true);
                    push_json_number(&mut out, "      ", "traps", report.traps as f64, true);
                    push_json_number(
                        &mut out,
                        "      ",
                        "evals_per_second",
                        report.evals_per_second(),
                        true,
                    );
                    push_json_number(
                        &mut out,
                        "      ",
                        "effective_evals_per_second",
                        report.effective_evals_per_second(),
                        true,
                    );
                    push_json_number(
                        &mut out,
                        "      ",
                        "infeasible_blamed",
                        report.infeasible_blamed() as f64,
                        true,
                    );
                    push_json_number(
                        &mut out,
                        "      ",
                        "barriers_skipped",
                        report.barriers_skipped as f64,
                        true,
                    );
                    if report.warm_replayed > 0 {
                        push_json_bool(&mut out, "      ", "corpus_warm_start", true, true);
                        push_json_number(
                            &mut out,
                            "      ",
                            "warm_replayed",
                            report.warm_replayed as f64,
                            true,
                        );
                    }
                    push_json_number(
                        &mut out,
                        "      ",
                        "wall_time_s",
                        report.wall_time.as_secs_f64(),
                        false,
                    );
                }
                None => {
                    push_json_number(&mut out, "      ", "evals", 0.0, false);
                }
            }
            out.push_str(if index + 1 < self.results.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// `(covered, total)` branch counts summed over completed functions.
    fn branch_totals(&self) -> (usize, usize) {
        self.results.iter().filter_map(|r| r.report.as_ref()).fold(
            (0, 0),
            |(covered, total), report| {
                (
                    covered + report.coverage.covered_count(),
                    total + report.coverage.total_branches(),
                )
            },
        )
    }
}

impl CampaignReport {
    /// The campaign table's header line (no trailing newline) — pairs with
    /// [`FunctionResult::table_row`] for streaming output.
    pub fn table_header() -> String {
        format!(
            "{:<22} {:>9} {:>9} {:>12} {:>10} {:>10} {:>9} {:>10}",
            "function",
            "#branches",
            "#inputs",
            "coverage(%)",
            "evals",
            "hits",
            "evals/s",
            "time(s)"
        )
    }

    /// The suite summary line (no trailing newline) the campaign table ends
    /// with — exposed so a streaming consumer can print it after the last
    /// row lands.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "suite: {:.1}% branch, {:.1}% block coverage over {} functions \
             ({} skipped",
            self.suite_branch_coverage_percent(),
            self.suite_block_coverage_percent(),
            self.completed(),
            self.skipped(),
        );
        if self.partial() > 0 {
            line.push_str(&format!(", {} partial", self.partial()));
        }
        line.push_str(&format!(") on {} workers", self.workers));
        if self.shards > 1 {
            line.push_str(&format!(" × {} shards", self.shards));
        }
        if self.sync_epochs > 1 {
            line.push_str(&format!(" × {} sync epochs", self.sync_epochs));
        }
        line.push_str(&format!(
            " in {:.2?} — {} evals ({} cache hits, {:.0} evals/s aggregate)",
            self.wall_time,
            self.total_evaluations(),
            self.total_cache_hits(),
            self.suite_evals_per_second(),
        ));
        line
    }
}

impl std::fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", CampaignReport::table_header())?;
        for result in &self.results {
            write!(f, "{}", result.table_row())?;
            writeln!(f)?;
        }
        writeln!(f, "{}", self.summary())
    }
}

// The JSON member writers live in the shared envelope module
// ([`crate::report::schema`]) so every artifact — run report, campaign
// report, corpus entries, the serve wire protocol — escapes and formats
// identically. Local aliases keep this file's emission code readable.
use crate::report::schema::{
    push_bool as push_json_bool, push_escaped as push_json_field, push_number as push_json_number,
};

/// What a worker may still do under the campaign deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BudgetState {
    /// No deadline configured.
    Unlimited,
    /// Time is left; in-flight searches are clamped to it.
    Remaining(Duration),
    /// The deadline has passed (or nothing measurable remains): claiming
    /// another unit would start a zero-budget search, so don't.
    Expired,
}

/// Evaluates the campaign deadline at `now`. Checked *before* a worker
/// claims a unit from the cursor, so a post-deadline worker never claims an
/// index only to run it with a near-zero clamped budget and have it counted
/// as completed.
fn budget_state(deadline: Option<Instant>, now: Instant) -> BudgetState {
    match deadline {
        None => BudgetState::Unlimited,
        Some(deadline) => {
            let remaining = deadline.saturating_duration_since(now);
            if remaining.is_zero() {
                BudgetState::Expired
            } else {
                BudgetState::Remaining(remaining)
            }
        }
    }
}

/// A parallel campaign runner. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct Campaign {
    config: CampaignConfig,
}

impl Campaign {
    /// Creates a campaign with the given configuration.
    pub fn new(config: CampaignConfig) -> Campaign {
        Campaign { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Runs the epoch schedule across the worker pool and aggregates the
    /// merged outcomes in inventory order. Equivalent to
    /// [`run_with`](Self::run_with) with a no-op event handler.
    pub fn run<P: Program + Sync>(&self, inventory: &[P]) -> CampaignReport {
        self.run_with(inventory, |_| {})
    }

    /// Runs the campaign, invoking `on_event` (on the calling thread) for
    /// every [`CampaignEvent`] the scheduler produces — a
    /// [`CampaignEvent::FunctionFinished`] the moment each function's
    /// merged result is ready, in completion order. The returned report is
    /// identical to [`run`](Self::run)'s; streaming only changes *when*
    /// rows become visible, never what they contain.
    pub fn run_with<P, F>(&self, inventory: &[P], mut on_event: F) -> CampaignReport
    where
        P: Program + Sync,
        F: FnMut(&CampaignEvent),
    {
        let started = Instant::now();
        if self.config.base.scheduler == SchedulerPolicy::Bandit {
            if let Some(pool) = self.config.base.budget {
                return self.run_bandit(inventory, &mut on_event, started, pool);
            }
            // Bandit without a pool has nothing to allocate; fall through
            // to the fixed schedule (the CLI rejects this combination).
        }
        let shards = self.config.effective_shards();
        let workers = self.config.effective_workers(inventory.len());
        let mut template = self.config.base.clone();
        // The worker grid is sized with the effective shard count; the
        // per-shard stride must agree with it.
        template.shards = shards;
        let plan = SyncPlan::new(&template);
        if inventory.is_empty() {
            return CampaignReport {
                results: Vec::new(),
                workers,
                shards,
                sync_epochs: plan.epochs(),
                scheduler: SchedulerPolicy::Fixed,
                eval_budget: self.config.base.budget,
                wall_time: started.elapsed(),
            };
        }

        let deadline = self.config.time_budget.map(|budget| started + budget);

        // Seed derivation input per function: how many *earlier* inventory
        // entries share its name. 0 for every uniquely named function, so a
        // subset campaign reproduces the full campaign's rows (position
        // independence); duplicates still get distinct seeds.
        let occurrences: Vec<usize> = {
            let mut counts: std::collections::HashMap<String, usize> =
                std::collections::HashMap::new();
            inventory
                .iter()
                .map(|program| {
                    let count = counts.entry(program.name().to_string()).or_default();
                    let occurrence = *count;
                    *count += 1;
                    occurrence
                })
                .collect()
        };
        // Per-function configurations (derived seed, no deadline clamp —
        // the clamp is applied when a search state is actually created).
        // With a corpus attached, each function's fingerprint is resolved
        // once here: a hit installs the stored winners as the search's
        // warm start, a miss costs nothing.
        let fingerprints = self.fingerprints(inventory);
        let configs: Vec<CoverMeConfig> = inventory
            .iter()
            .zip(&occurrences)
            .enumerate()
            .map(|(index, (program, &occurrence))| {
                let mut config = template.clone();
                config.seed =
                    derive_function_seed(self.config.base.seed, program.name(), occurrence);
                config.cancel = self.config.cancel.clone();
                if let (Some(store), Some(fps)) = (&self.config.corpus, &fingerprints) {
                    config.warm_start = store.warm_start_for(
                        fps[index],
                        program.arity(),
                        program.num_sites(),
                        config.search_key(),
                    );
                }
                config
            })
            .collect();

        // Epoch-0 tasks for every (function, shard) pair, function-major so
        // the suite streams front to back and a trailing heavy function
        // still fans out over idle workers.
        let scheduler = Mutex::new(Scheduler {
            queue: (0..inventory.len())
                .flat_map(|function| {
                    (0..shards).map(move |shard| Task {
                        function,
                        shard,
                        epoch: 0,
                    })
                })
                .collect(),
            functions: (0..inventory.len())
                .map(|_| FunctionRun {
                    states: (0..shards).map(|_| None).collect(),
                    published: vec![None; shards],
                    pending: shards,
                    epoch: 0,
                    finished: false,
                })
                .collect(),
            unfinished: inventory.len(),
            expired: false,
        });
        let ready = Condvar::new();
        let (sender, receiver) = mpsc::channel::<CampaignEvent>();

        let mut results: Vec<Option<FunctionResult>> = inventory.iter().map(|_| None).collect();
        std::thread::scope(|scope| {
            let scheduler = &scheduler;
            let ready = &ready;
            let plan = &plan;
            let configs = &configs;
            for _ in 0..workers {
                let sender = sender.clone();
                scope.spawn(move || {
                    worker_loop(sender, scheduler, ready, plan, deadline, inventory, configs)
                });
            }
            drop(sender);
            // The caller's thread is the event loop: hand each row to the
            // handler the moment a worker lands it, then keep it for the
            // final report. The channel closes when the last worker exits.
            for event in receiver.iter() {
                on_event(&event);
                let CampaignEvent::FunctionFinished { index, result } = event;
                results[index] = Some(result);
            }
        });

        // Deadline leftovers: functions the expiry cut mid-search keep the
        // progress their parked states completed (partial), functions that
        // never started are skipped. Emitted as events too, in inventory
        // order, so a streaming consumer sees every row exactly once.
        let mut scheduler = scheduler.into_inner().expect("scheduler lock poisoned");
        for (index, run) in scheduler.functions.iter_mut().enumerate() {
            if run.finished {
                continue;
            }
            let outcomes: Vec<ShardOutcome> = run
                .states
                .iter_mut()
                .filter_map(Option::take)
                .map(SearchState::finish)
                .collect();
            let result = finalize_function(inventory[index].name(), outcomes, shards, true);
            let event = CampaignEvent::FunctionFinished { index, result };
            on_event(&event);
            let CampaignEvent::FunctionFinished { result, .. } = event;
            results[index] = Some(result);
        }

        self.record_corpus(&fingerprints, &configs, &results);
        CampaignReport {
            results: results
                .into_iter()
                .map(|result| result.expect("every function finalized"))
                .collect(),
            workers,
            shards,
            sync_epochs: plan.epochs(),
            scheduler: SchedulerPolicy::Fixed,
            eval_budget: self.config.base.budget,
            wall_time: started.elapsed(),
        }
    }

    /// Per-function fingerprints, resolved only when a corpus store is
    /// attached (lowering an FPIR tape just to hash it would be wasted
    /// work on corpus-less campaigns).
    fn fingerprints<P: Program>(&self, inventory: &[P]) -> Option<Vec<u64>> {
        self.config
            .corpus
            .as_ref()
            .map(|_| inventory.iter().map(Program::fingerprint).collect())
    }

    /// Records every [`FunctionStatus::Complete`] result into the corpus
    /// store (when one is attached). Partial and skipped functions are
    /// *not* recorded — a deadline-cut search's verdicts and winners are
    /// incomplete, and overwriting a prior complete entry with them would
    /// poison later warm starts. Write errors are swallowed: the corpus is
    /// an optimization, never a reason to fail a finished campaign.
    /// `configs` are the per-function configurations the searches ran
    /// with; each stamps its entry's search key and exhaustion verdict
    /// (see [`CorpusStore::record_report`]).
    fn record_corpus(
        &self,
        fingerprints: &Option<Vec<u64>>,
        configs: &[CoverMeConfig],
        results: &[Option<FunctionResult>],
    ) {
        let (Some(store), Some(fps)) = (&self.config.corpus, fingerprints) else {
            return;
        };
        for ((fingerprint, config), result) in fps.iter().zip(configs).zip(results) {
            let Some(result) = result else { continue };
            if result.status != FunctionStatus::Complete {
                continue;
            }
            if let Some(report) = &result.report {
                let _ = store.record_report(*fingerprint, config, report);
            }
        }
    }

    /// The bandit campaign driver (see [`SchedulerPolicy::Bandit`]):
    /// allocates a global evaluation pool across functions in grant
    /// installments decided at *round barriers* by a deterministic
    /// UCB-style score over per-grant marginal coverage telemetry.
    ///
    /// * Shards are normalized to 1 — under eval-budget economics the unit
    ///   of scheduling is the function, and the epoch-pausable
    ///   [`SearchState`] already yields at its allowance, so intra-function
    ///   sharding would only dilute the telemetry a grant decision reads.
    /// * Every function's `n_start` schedule is inflated by
    ///   [`BANDIT_OVERDRAFT`] so a consistently-earning function can spend
    ///   past the fixed schedule; the starting-point schedule is sampled
    ///   sequentially, so the inflated prefix is bit-identical to the
    ///   fixed schedule's points.
    /// * The seeding round grants every function once, in inventory order.
    ///   Each later round (when all outstanding tasks returned) recycles
    ///   the unspent allowances of naturally-finished functions and grants
    ///   the top [`GRANTS_PER_ROUND`] paused candidates by UCB score:
    ///   scaled marginal coverage per eval plus an exploration bonus; ties
    ///   break on a seeded name hash, then inventory index. All decisions
    ///   are pure functions of barrier-time telemetry, so the outcome is
    ///   deterministic per `(seed, budget)` regardless of worker count.
    fn run_bandit<P, F>(
        &self,
        inventory: &[P],
        on_event: &mut F,
        started: Instant,
        pool: usize,
    ) -> CampaignReport
    where
        P: Program + Sync,
        F: FnMut(&CampaignEvent),
    {
        let workers = {
            let requested = if self.config.workers == 0 {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(2)
                    .max(2)
            } else {
                self.config.workers
            };
            requested.clamp(1, inventory.len().max(1))
        };
        let report_shell = |results: Vec<FunctionResult>, wall_time: Duration| CampaignReport {
            results,
            workers,
            shards: 1,
            sync_epochs: 1,
            scheduler: SchedulerPolicy::Bandit,
            eval_budget: Some(pool),
            wall_time,
        };
        if inventory.is_empty() {
            return report_shell(Vec::new(), started.elapsed());
        }
        let deadline = self.config.time_budget.map(|budget| started + budget);
        let grant_evals = bandit_grant_evals(pool, inventory.len());

        let occurrences: Vec<usize> = {
            let mut counts: std::collections::HashMap<String, usize> =
                std::collections::HashMap::new();
            inventory
                .iter()
                .map(|program| {
                    let count = counts.entry(program.name().to_string()).or_default();
                    let occurrence = *count;
                    *count += 1;
                    occurrence
                })
                .collect()
        };
        let fingerprints = self.fingerprints(inventory);
        let configs: Vec<CoverMeConfig> = inventory
            .iter()
            .zip(&occurrences)
            .enumerate()
            .map(|(index, (program, &occurrence))| {
                let mut config = self.config.base.clone();
                config.shards = 1;
                config.sync_epochs = 0;
                config.n_start = config.n_start.saturating_mul(BANDIT_OVERDRAFT);
                config.seed =
                    derive_function_seed(self.config.base.seed, program.name(), occurrence);
                // The per-search allowance is installed per grant; the
                // pool itself never reaches a single state.
                config.budget = None;
                config.cancel = self.config.cancel.clone();
                if let (Some(store), Some(fps)) = (&self.config.corpus, &fingerprints) {
                    config.warm_start = store.warm_start_for(
                        fps[index],
                        program.arity(),
                        program.num_sites(),
                        config.search_key(),
                    );
                }
                config
            })
            .collect();

        // Seeding round: one grant per function, inventory order, while
        // the pool lasts. Never-granted functions are finalized Skipped.
        let mut runs: Vec<BanditRun<'_, P>> = (0..inventory.len())
            .map(|_| BanditRun {
                state: None,
                granted: 0,
                grants: 0,
                covered_before: 0,
                evals_before: 0,
                rate: 0.0,
                paused: false,
                done: false,
            })
            .collect();
        let mut unallocated = pool;
        let mut queue: VecDeque<usize> = VecDeque::new();
        for (index, run) in runs.iter_mut().enumerate() {
            let grant = grant_evals.min(unallocated);
            if grant == 0 {
                break;
            }
            unallocated -= grant;
            run.granted = grant;
            run.grants = 1;
            queue.push_back(index);
        }
        let outstanding = queue.len();
        let scheduler = Mutex::new(BanditScheduler {
            queue,
            runs,
            outstanding,
            unallocated,
            total_grants: outstanding,
            done_count: 0,
            expired: false,
        });
        let ready = Condvar::new();
        let (sender, receiver) = mpsc::channel::<CampaignEvent>();

        // A zero pool seeds no tasks, so no task return would ever trigger
        // the allocator: run it once up front to finalize everything as
        // skipped (workers then exit immediately).
        {
            let mut guard = scheduler.lock().expect("scheduler lock poisoned");
            if guard.outstanding == 0 {
                bandit_allocate(&mut guard, &sender, inventory, grant_evals);
            }
        }

        let mut results: Vec<Option<FunctionResult>> = inventory.iter().map(|_| None).collect();
        std::thread::scope(|scope| {
            let scheduler = &scheduler;
            let ready = &ready;
            let configs = &configs;
            for _ in 0..workers {
                let sender = sender.clone();
                scope.spawn(move || {
                    bandit_worker_loop(
                        sender,
                        scheduler,
                        ready,
                        deadline,
                        inventory,
                        configs,
                        grant_evals,
                    )
                });
            }
            drop(sender);
            for event in receiver.iter() {
                on_event(&event);
                let CampaignEvent::FunctionFinished { index, result } = event;
                results[index] = Some(result);
            }
        });

        // Deadline leftovers, exactly like the fixed path: parked progress
        // is kept as partial, never-started functions are skipped.
        let mut scheduler = scheduler.into_inner().expect("scheduler lock poisoned");
        for (index, run) in scheduler.runs.iter_mut().enumerate() {
            if run.done {
                continue;
            }
            let ledger = BudgetLedger {
                granted: run.granted,
                grants: run.grants,
            };
            let outcomes: Vec<ShardOutcome> = run
                .state
                .take()
                .map(SearchState::finish)
                .into_iter()
                .collect();
            let mut result = finalize_function(inventory[index].name(), outcomes, 1, true);
            result.budget = Some(ledger);
            let event = CampaignEvent::FunctionFinished { index, result };
            on_event(&event);
            let CampaignEvent::FunctionFinished { result, .. } = event;
            results[index] = Some(result);
        }

        self.record_corpus(&fingerprints, &configs, &results);
        report_shell(
            results
                .into_iter()
                .map(|result| result.expect("every function finalized"))
                .collect(),
            started.elapsed(),
        )
    }
}

/// One epoch task: run one slice of one (function, shard) search.
#[derive(Debug, Clone, Copy)]
struct Task {
    function: usize,
    shard: usize,
    epoch: usize,
}

/// Rendezvous state of one function: parked search states between epochs
/// plus the barrier countdown of the epoch in flight.
struct FunctionRun<'inv, P: Program> {
    /// One slot per shard; `None` until the shard's first epoch task
    /// creates the state (and while a worker has it checked out).
    states: Vec<Option<SearchState<'inv, P>>>,
    /// Each shard's last published saturation delta, refreshed at the
    /// rendezvous only when its tracker version moved (see
    /// [`exchange_deltas_gated`]).
    published: Vec<Option<SaturationDelta>>,
    /// Tasks of the current epoch not yet returned.
    pending: usize,
    /// The epoch currently in flight (next to rendezvous).
    epoch: usize,
    /// Whether the function was finalized and its event emitted.
    finished: bool,
}

/// Shared scheduler state, guarded by one mutex + condvar pair.
struct Scheduler<'inv, P: Program> {
    queue: VecDeque<Task>,
    functions: Vec<FunctionRun<'inv, P>>,
    /// Functions not yet finalized; workers exit when it reaches 0.
    unfinished: usize,
    /// Set when a worker observes the campaign deadline expired; stops all
    /// claiming, leaving parked states for partial finalization.
    expired: bool,
}

/// The worker loop: claim an epoch task, check the state out of its slot
/// (creating it on the shard's first epoch, with the time budget clamped
/// to what the campaign deadline leaves), run the slice *outside* the
/// lock, park the state, and — as the last shard of a function's epoch —
/// run the rendezvous: exchange saturation deltas and enqueue the next
/// epoch, or finalize the function and emit its event.
fn worker_loop<'inv, P: Program + Sync>(
    events: mpsc::Sender<CampaignEvent>,
    scheduler: &Mutex<Scheduler<'inv, P>>,
    ready: &Condvar,
    plan: &SyncPlan,
    deadline: Option<Instant>,
    inventory: &'inv [P],
    configs: &[CoverMeConfig],
) {
    loop {
        let task = {
            let mut guard = scheduler.lock().expect("scheduler lock poisoned");
            loop {
                if guard.expired || guard.unfinished == 0 {
                    return;
                }
                if budget_state(deadline, Instant::now()) == BudgetState::Expired {
                    guard.expired = true;
                    ready.notify_all();
                    return;
                }
                if let Some(task) = guard.queue.pop_front() {
                    break task;
                }
                guard = ready.wait(guard).expect("scheduler lock poisoned");
            }
        };

        // Check the state out (or create it — outside the lock, since
        // schedule regeneration is O(n_start) RNG draws).
        let parked = scheduler.lock().expect("scheduler lock poisoned").functions[task.function]
            .states[task.shard]
            .take();
        let mut state = parked.unwrap_or_else(|| {
            let mut config = configs[task.function].clone();
            match budget_state(deadline, Instant::now()) {
                BudgetState::Remaining(left) => {
                    config.time_budget = Some(match config.time_budget {
                        Some(budget) => budget.min(left),
                        None => left,
                    });
                }
                BudgetState::Expired => {
                    // The deadline expired between the claim check and
                    // state creation: a zero budget makes the state record
                    // a DeadlineExpired outcome on its first round check
                    // instead of running the whole slice unbounded.
                    config.time_budget = Some(Duration::ZERO);
                }
                BudgetState::Unlimited => {}
            }
            SearchState::new(&config, &inventory[task.function], task.shard)
        });
        state.run_rounds(plan.rounds_in_epoch(task.shard, task.epoch));

        let mut guard = scheduler.lock().expect("scheduler lock poisoned");
        let scheduler_state = &mut *guard;
        let run = &mut scheduler_state.functions[task.function];
        run.states[task.shard] = Some(state);
        run.pending -= 1;
        if run.pending > 0 {
            continue;
        }

        // Rendezvous: this worker returned the function's last outstanding
        // task of the epoch.
        run.epoch += 1;
        let active: Vec<usize> = run
            .states
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.as_ref().is_some_and(|s| !s.is_finished()))
            .map(|(shard, _)| shard)
            .collect();
        if run.epoch < plan.epochs() && !active.is_empty() && !scheduler_state.expired {
            exchange_deltas_gated(
                &mut run.states,
                &mut run.published,
                configs[task.function].adaptive_sync,
            );
            run.pending = active.len();
            for shard in active {
                scheduler_state.queue.push_back(Task {
                    function: task.function,
                    shard,
                    epoch: run.epoch,
                });
            }
            ready.notify_all();
            continue;
        }
        if scheduler_state.expired && run.epoch < plan.epochs() && !active.is_empty() {
            // The deadline raced the rendezvous: leave the states parked
            // for partial finalization after the pool drains.
            continue;
        }

        // The function ran its full schedule (or every shard finished
        // early): finalize and emit — outside the lock, the merge is real
        // work.
        let cut_short = run.states.iter().flatten().any(|s| {
            matches!(
                s.outcome(),
                Some(EpochOutcome::DeadlineExpired | EpochOutcome::Degraded)
            )
        });
        let states: Vec<SearchState<'inv, P>> =
            run.states.iter_mut().filter_map(Option::take).collect();
        run.finished = true;
        scheduler_state.unfinished -= 1;
        ready.notify_all();
        drop(guard);

        let outcomes: Vec<ShardOutcome> = states.into_iter().map(SearchState::finish).collect();
        let result = finalize_function(
            inventory[task.function].name(),
            outcomes,
            plan.shards(),
            cut_short,
        );
        let _ = events.send(CampaignEvent::FunctionFinished {
            index: task.function,
            result,
        });
    }
}

/// Grants handed out per allocation round after the seeding round. A
/// constant (never derived from the worker count) so grant histories — and
/// therefore every search — are identical across worker counts.
const GRANTS_PER_ROUND: usize = 8;

/// Inflation factor on the per-function `n_start` schedule under the
/// bandit: a function that keeps earning grants may run up to this many
/// times the fixed schedule. The starting-point schedule is sampled
/// sequentially, so the fixed schedule's points are a bit-identical prefix
/// of the inflated one.
const BANDIT_OVERDRAFT: usize = 4;

/// Exploration weight of the UCB score: how strongly rarely-granted
/// functions are favored over proven earners.
const UCB_EXPLORATION: f64 = 0.5;

/// The per-installment grant size: an eighth of a function's fair share of
/// the pool, floored at 1000 evaluations so tiny pools still buy a
/// meaningful slice of search.
fn bandit_grant_evals(pool: usize, functions: usize) -> usize {
    (pool / functions.max(1).saturating_mul(8)).max(1000)
}

/// Scheduling state of one function under the bandit.
struct BanditRun<'inv, P: Program> {
    /// The function's pausable search; `None` until its first grant is
    /// claimed (and while a worker has it checked out).
    state: Option<SearchState<'inv, P>>,
    /// Evaluations granted from the pool so far.
    granted: usize,
    /// Number of grant installments.
    grants: usize,
    /// Covered-branch count at the moment of the last grant.
    covered_before: usize,
    /// Evaluation count at the moment of the last grant.
    evals_before: usize,
    /// Marginal coverage per evaluation over the last completed grant.
    rate: f64,
    /// Parked with [`EpochOutcome::BudgetExhausted`] — a re-grant
    /// candidate.
    paused: bool,
    /// Finalized and its event emitted.
    done: bool,
}

/// Shared bandit scheduler state, guarded by one mutex + condvar pair.
struct BanditScheduler<'inv, P: Program> {
    /// Function indices granted and ready to run this round.
    queue: VecDeque<usize>,
    runs: Vec<BanditRun<'inv, P>>,
    /// Tasks granted this round and not yet returned; the allocator runs
    /// when it reaches 0 — the round barrier that makes grant decisions
    /// independent of worker count.
    outstanding: usize,
    /// Evaluations of the pool not yet granted.
    unallocated: usize,
    /// Total grants handed out (the `t` of the UCB exploration term).
    total_grants: usize,
    /// Functions finalized; workers exit when it reaches the inventory.
    done_count: usize,
    /// The wall-clock deadline passed; stop claiming.
    expired: bool,
}

/// The bandit worker loop: claim a granted function, run its search to the
/// allowance (or to natural completion), park it, and — as the last task
/// of the round — run the allocator.
fn bandit_worker_loop<'inv, P: Program + Sync>(
    events: mpsc::Sender<CampaignEvent>,
    scheduler: &Mutex<BanditScheduler<'inv, P>>,
    ready: &Condvar,
    deadline: Option<Instant>,
    inventory: &'inv [P],
    configs: &[CoverMeConfig],
    grant_evals: usize,
) {
    loop {
        let (function, allowance, parked) = {
            let mut guard = scheduler.lock().expect("scheduler lock poisoned");
            loop {
                if guard.expired || guard.done_count == guard.runs.len() {
                    return;
                }
                if budget_state(deadline, Instant::now()) == BudgetState::Expired {
                    guard.expired = true;
                    ready.notify_all();
                    return;
                }
                if let Some(function) = guard.queue.pop_front() {
                    let run = &mut guard.runs[function];
                    break (function, run.granted, run.state.take());
                }
                guard = ready.wait(guard).expect("scheduler lock poisoned");
            }
        };

        // First grant: create the state outside the lock (schedule
        // regeneration is O(n_start) RNG draws) with the allowance the
        // seeding round granted.
        let mut state = parked.unwrap_or_else(|| {
            let mut config = configs[function].clone();
            config.budget = Some(allowance);
            match budget_state(deadline, Instant::now()) {
                BudgetState::Remaining(left) => {
                    config.time_budget = Some(match config.time_budget {
                        Some(budget) => budget.min(left),
                        None => left,
                    });
                }
                BudgetState::Expired => {
                    config.time_budget = Some(Duration::ZERO);
                }
                BudgetState::Unlimited => {}
            }
            SearchState::new(&config, &inventory[function], 0)
        });
        let outcome = state.run_rounds(usize::MAX);

        let mut guard = scheduler.lock().expect("scheduler lock poisoned");
        let scheduler_state = &mut *guard;
        let run = &mut scheduler_state.runs[function];
        // Marginal coverage per eval over the grant that just completed —
        // the reward the next allocation round scores.
        let covered_now = state.tracker().covered().len();
        let evals_now = state.evaluations();
        let gained = covered_now.saturating_sub(run.covered_before);
        let spent = evals_now.saturating_sub(run.evals_before).max(1);
        run.rate = gained as f64 / spent as f64;
        scheduler_state.outstanding -= 1;
        // Settle the ledger against actual spend so `granted` always means
        // "consumed from the pool": the final round in flight can overshoot
        // the allowance (a round is never cut mid-minimization), so the
        // overage is charged to the pool now; an underspend on natural
        // completion is refunded. Either way Σ granted + unallocated stays
        // exactly the pool.
        if evals_now > run.granted {
            let charged = (evals_now - run.granted).min(scheduler_state.unallocated);
            scheduler_state.unallocated -= charged;
            run.granted += charged;
        }
        if outcome == EpochOutcome::BudgetExhausted {
            run.paused = true;
            run.state = Some(state);
        } else {
            // Natural completion: refund the unspent allowance and
            // finalize (Complete, or Partial for degraded/deadline cuts).
            let refund = run.granted.saturating_sub(evals_now);
            scheduler_state.unallocated += refund;
            run.granted -= refund;
            let cut_short = matches!(
                outcome,
                EpochOutcome::DeadlineExpired | EpochOutcome::Degraded
            );
            let ledger = BudgetLedger {
                granted: run.granted,
                grants: run.grants,
            };
            run.done = true;
            scheduler_state.done_count += 1;
            let name = inventory[function].name();
            let outcome_vec = vec![state.finish()];
            let mut result = finalize_function(name, outcome_vec, 1, cut_short);
            result.budget = Some(ledger);
            let _ = events.send(CampaignEvent::FunctionFinished {
                index: function,
                result,
            });
        }
        if scheduler_state.outstanding == 0 {
            bandit_allocate(scheduler_state, &events, inventory, grant_evals);
            ready.notify_all();
        }
    }
}

/// The round-barrier allocator: grants the top [`GRANTS_PER_ROUND`] paused
/// candidates by UCB score, or — when the pool is dry or no candidate
/// remains — finalizes everything left (paused functions spent their share:
/// Complete; never-granted ones: Skipped). Runs under the scheduler lock,
/// only at `outstanding == 0` barriers, so its decisions are a pure
/// function of accumulated telemetry — never of worker count or arrival
/// order.
fn bandit_allocate<'inv, P: Program>(
    scheduler: &mut BanditScheduler<'inv, P>,
    events: &mpsc::Sender<CampaignEvent>,
    inventory: &'inv [P],
    grant_evals: usize,
) {
    let mut candidates: Vec<usize> = (0..scheduler.runs.len())
        .filter(|&index| {
            let run = &scheduler.runs[index];
            run.paused && !run.done
        })
        .collect();
    if scheduler.unallocated > 0 && !candidates.is_empty() {
        let total = scheduler.total_grants;
        let score = |index: usize| -> f64 {
            let run = &scheduler.runs[index];
            // Scale the marginal rate to "branches expected from one more
            // grant" so it is commensurate with the O(1) exploration term.
            let exploit = run.rate * grant_evals as f64;
            let explore =
                UCB_EXPLORATION * (((total + 1) as f64).ln() / run.grants.max(1) as f64).sqrt();
            exploit + explore
        };
        candidates.sort_by(|&a, &b| {
            score(b)
                .partial_cmp(&score(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    bandit_tiebreak(inventory[a].name()).cmp(&bandit_tiebreak(inventory[b].name()))
                })
                .then(a.cmp(&b))
        });
        let mut granted_any = false;
        for &index in candidates.iter().take(GRANTS_PER_ROUND) {
            let grant = grant_evals.min(scheduler.unallocated);
            if grant == 0 {
                break;
            }
            scheduler.unallocated -= grant;
            scheduler.total_grants += 1;
            let run = &mut scheduler.runs[index];
            run.granted += grant;
            run.grants += 1;
            run.covered_before = run
                .state
                .as_ref()
                .map_or(run.covered_before, |s| s.tracker().covered().len());
            run.evals_before = run
                .state
                .as_ref()
                .map_or(run.evals_before, SearchState::evaluations);
            if let Some(state) = run.state.as_mut() {
                state.extend_budget(grant);
            }
            run.paused = false;
            scheduler.queue.push_back(index);
            scheduler.outstanding += 1;
            granted_any = true;
        }
        if granted_any {
            return;
        }
    }
    // No further grants possible: the campaign is over. Paused functions
    // spent their share of the pool — that is a completed bandit outcome,
    // not a truncation; never-granted functions are skipped.
    for (index, program) in inventory.iter().enumerate() {
        let run = &mut scheduler.runs[index];
        if run.done {
            continue;
        }
        let ledger = BudgetLedger {
            granted: run.granted,
            grants: run.grants,
        };
        let cut_short = run.state.as_ref().is_some_and(|s| {
            matches!(
                s.outcome(),
                Some(EpochOutcome::DeadlineExpired | EpochOutcome::Degraded)
            )
        });
        let outcomes: Vec<ShardOutcome> = run
            .state
            .take()
            .map(SearchState::finish)
            .into_iter()
            .collect();
        run.done = true;
        scheduler.done_count += 1;
        let mut result = finalize_function(program.name(), outcomes, 1, cut_short);
        result.budget = Some(ledger);
        let _ = events.send(CampaignEvent::FunctionFinished { index, result });
    }
}

/// Deterministic tie-break key for equal UCB scores: FNV-1a over the
/// function name — stable across runs and platforms, uncorrelated with
/// inventory order.
fn bandit_tiebreak(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Builds a function's [`FunctionResult`] from whatever shard outcomes
/// exist. `cut_short` marks results that did not run their full budget —
/// the campaign deadline truncated them (directly, or by leaving shards
/// unstarted), or a shard degraded on consecutive aborted rounds (see
/// [`EpochOutcome::Degraded`]).
fn finalize_function(
    name: &str,
    mut outcomes: Vec<ShardOutcome>,
    configured_shards: usize,
    cut_short: bool,
) -> FunctionResult {
    let shards_run = outcomes.len();
    if outcomes.is_empty() {
        return FunctionResult {
            name: name.to_string(),
            report: None,
            shards_run: 0,
            status: FunctionStatus::Skipped,
            budget: None,
        };
    }
    let report = if configured_shards == 1 {
        // The paper's setup: a single whole-budget search, passed through
        // without representative-input reselection so the campaign
        // reproduces a standalone `CoverMe::run` exactly.
        outcomes.pop().expect("non-empty").into_report(name)
    } else {
        merge_shards(name, outcomes).report
    };
    let status = if cut_short || shards_run < configured_shards {
        FunctionStatus::Partial
    } else {
        FunctionStatus::Complete
    };
    FunctionResult {
        name: name.to_string(),
        report: Some(report),
        shards_run,
        status,
        budget: None,
    }
}

/// Derives a function's seed from the campaign seed, the function name and
/// its duplicate-name occurrence (FNV-1a over the name bytes then the
/// occurrence bytes). The occurrence is 0 unless an earlier inventory entry
/// has the same name, so a search is reproducible independent of scheduling
/// *and* of the function's position in the inventory (a subset campaign
/// reproduces the full campaign's rows) — while two entries that happen to
/// share a name still run distinct searches instead of silently duplicating
/// one.
fn derive_function_seed(campaign_seed: u64, name: &str, occurrence: usize) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes().chain((occurrence as u64).to_le_bytes()) {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    campaign_seed ^ hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverme_runtime::{Cmp, ExecCtx, FnProgram};

    type ToyProgram = FnProgram<fn(&[f64], &mut ExecCtx)>;
    /// Per-function content a scheduler must not influence: generated
    /// inputs and covered-branch count (or `None` for a skipped function).
    type Fingerprint = Vec<(String, Option<(Vec<Vec<f64>>, usize)>)>;

    /// A small inventory of distinct single-input programs, each with one
    /// easy and one harder (exact equality) conditional.
    fn inventory() -> Vec<ToyProgram> {
        fn alpha(input: &[f64], ctx: &mut ExecCtx) {
            let mut x = input[0];
            if ctx.branch(0, Cmp::Le, x, 1.0) {
                x += 2.5;
            }
            if ctx.branch(1, Cmp::Eq, x * x, 4.0) {
                // target
            }
        }
        fn beta(input: &[f64], ctx: &mut ExecCtx) {
            let x = input[0];
            if ctx.branch(0, Cmp::Gt, x, 10.0) {
                // easy
            }
            if ctx.branch(1, Cmp::Eq, x, -3.5) {
                // point target
            }
        }
        // Site 1 must stay nested under site 0: the descendant relation is
        // what exercises saturation tracking.
        #[allow(clippy::collapsible_if)]
        fn gamma(input: &[f64], ctx: &mut ExecCtx) {
            let x = input[0];
            if ctx.branch(0, Cmp::Lt, x, 0.0) {
                if ctx.branch(1, Cmp::Ge, x, -2.0) {
                    // nested
                }
            }
        }
        vec![
            FnProgram::new("alpha", 1, 2, alpha as fn(&[f64], &mut ExecCtx)),
            FnProgram::new("beta", 1, 2, beta as fn(&[f64], &mut ExecCtx)),
            FnProgram::new("gamma", 1, 2, gamma as fn(&[f64], &mut ExecCtx)),
        ]
    }

    fn quick_base() -> CoverMeConfig {
        CoverMeConfig::default().n_start(40).seed(7)
    }

    /// The scheduling-independent content of a report, for equality checks.
    fn fingerprint(report: &CampaignReport) -> Fingerprint {
        report
            .results
            .iter()
            .map(|r| {
                (
                    r.name.clone(),
                    r.report
                        .as_ref()
                        .map(|t| (t.inputs.clone(), t.coverage.covered_count())),
                )
            })
            .collect()
    }

    #[test]
    fn identical_reports_across_thread_counts() {
        let programs = inventory();
        let runs: Vec<CampaignReport> = [1, 2, 4]
            .iter()
            .map(|&workers| {
                Campaign::new(CampaignConfig::new().base(quick_base()).workers(workers))
                    .run(&programs)
            })
            .collect();
        assert_eq!(fingerprint(&runs[0]), fingerprint(&runs[1]));
        assert_eq!(fingerprint(&runs[0]), fingerprint(&runs[2]));
        assert_eq!(runs[0].completed(), programs.len());
    }

    #[test]
    fn sharded_campaign_identical_across_thread_counts() {
        let programs = inventory();
        let runs: Vec<CampaignReport> = [1, 2, 5]
            .iter()
            .map(|&workers| {
                let config = CampaignConfig::new()
                    .base(quick_base().n_start(48))
                    .shards(3)
                    .workers(workers);
                Campaign::new(config).run(&programs)
            })
            .collect();
        assert_eq!(fingerprint(&runs[0]), fingerprint(&runs[1]));
        assert_eq!(fingerprint(&runs[0]), fingerprint(&runs[2]));
        assert_eq!(runs[0].shards, 3);
        assert!(runs[0].results.iter().all(|r| r.shards_run == 3));
    }

    #[test]
    fn sharded_campaign_covers_at_least_the_unsharded_one() {
        let programs = inventory();
        let base = || quick_base().n_start(64);
        let unsharded = Campaign::new(CampaignConfig::new().base(base()).workers(2)).run(&programs);
        for shards in [2usize, 4] {
            let sharded =
                Campaign::new(CampaignConfig::new().base(base()).shards(shards).workers(2))
                    .run(&programs);
            for (a, b) in unsharded.results.iter().zip(&sharded.results) {
                let (a, b) = (a.report.as_ref().unwrap(), b.report.as_ref().unwrap());
                assert!(
                    b.coverage.covered_count() >= a.coverage.covered_count(),
                    "{}: {} shards covered {} < {}",
                    a.program,
                    shards,
                    b.coverage.covered_count(),
                    a.coverage.covered_count()
                );
            }
        }
    }

    #[test]
    fn unsharded_campaign_reproduces_standalone_coverme_runs() {
        // With shards = 1 the campaign is the paper's setup: per function,
        // exactly the report a standalone CoverMe run with the derived seed
        // produces — including redundant accepted inputs, which the sharded
        // merge would drop.
        let programs = inventory();
        let report =
            Campaign::new(CampaignConfig::new().base(quick_base()).workers(2)).run(&programs);
        for (index, (program, result)) in programs.iter().zip(&report.results).enumerate() {
            let mut config = quick_base();
            config.seed = derive_function_seed(quick_base().seed, program.name(), 0);
            let standalone = crate::CoverMe::new(config).run(program);
            let campaign = result.report.as_ref().unwrap();
            assert_eq!(campaign.inputs, standalone.inputs, "function #{index}");
            assert_eq!(campaign.coverage, standalone.coverage);
            assert_eq!(campaign.rounds, standalone.rounds);
        }
    }

    #[test]
    fn function_results_are_independent_of_inventory_position() {
        // A subset campaign must reproduce the full campaign's rows: seeds
        // depend on names (and duplicate-name occurrence), not position.
        let programs = inventory();
        let full =
            Campaign::new(CampaignConfig::new().base(quick_base()).workers(2)).run(&programs);
        let subset = vec![inventory().remove(2)];
        let alone = Campaign::new(CampaignConfig::new().base(quick_base()).workers(2)).run(&subset);
        let (full_gamma, lone_gamma) = (
            full.results[2].report.as_ref().unwrap(),
            alone.results[0].report.as_ref().unwrap(),
        );
        assert_eq!(full_gamma.inputs, lone_gamma.inputs);
        assert_eq!(full_gamma.coverage, lone_gamma.coverage);
    }

    #[test]
    fn results_arrive_in_inventory_order() {
        let programs = inventory();
        let report =
            Campaign::new(CampaignConfig::new().base(quick_base()).workers(3)).run(&programs);
        let names: Vec<&str> = report.results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["alpha", "beta", "gamma"]);
    }

    #[test]
    fn streaming_events_match_the_final_report() {
        let programs = inventory();
        let mut events: Vec<(usize, String, bool)> = Vec::new();
        let report = Campaign::new(CampaignConfig::new().base(quick_base()).workers(2)).run_with(
            &programs,
            |event| {
                let CampaignEvent::FunctionFinished { index, result } = event;
                events.push((*index, result.name.clone(), result.completed()));
            },
        );
        // Exactly one event per function, carrying the same result the
        // final report lists at that inventory index.
        assert_eq!(events.len(), programs.len());
        let mut indices: Vec<usize> = events.iter().map(|(i, _, _)| *i).collect();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1, 2]);
        for (index, name, completed) in events {
            assert_eq!(report.results[index].name, name);
            assert_eq!(report.results[index].completed(), completed);
        }
        // The streamed run is the same run: identical to a collected one.
        let collected =
            Campaign::new(CampaignConfig::new().base(quick_base()).workers(2)).run(&programs);
        assert_eq!(fingerprint(&report), fingerprint(&collected));
    }

    #[test]
    fn synced_campaign_identical_across_thread_counts() {
        let programs = inventory();
        let runs: Vec<CampaignReport> = [1, 2, 5]
            .iter()
            .map(|&workers| {
                let config = CampaignConfig::new()
                    .base(quick_base().n_start(64))
                    .shards(3)
                    .sync_epochs(4)
                    .workers(workers);
                Campaign::new(config).run(&programs)
            })
            .collect();
        assert_eq!(fingerprint(&runs[0]), fingerprint(&runs[1]));
        assert_eq!(fingerprint(&runs[0]), fingerprint(&runs[2]));
        assert_eq!(runs[0].sync_epochs, 4);
        // The campaign's event-driven rendezvous agrees with the
        // standalone sync drivers on the same derived seed.
        for (program, result) in programs.iter().zip(&runs[0].results) {
            let mut config = quick_base().n_start(64).shards(3).sync_epochs(4);
            config.seed = derive_function_seed(quick_base().seed, program.name(), 0);
            let standalone = crate::CoverMe::new(config).run(program);
            let campaign = result.report.as_ref().unwrap();
            assert_eq!(campaign.inputs, standalone.inputs, "{}", program.name());
            assert_eq!(campaign.coverage, standalone.coverage);
            assert_eq!(campaign.evaluations, standalone.evaluations);
        }
    }

    #[test]
    fn statuses_are_consistent_with_reports() {
        // Budget-free: everything completes.
        let programs = inventory();
        let report =
            Campaign::new(CampaignConfig::new().base(quick_base()).workers(2)).run(&programs);
        assert!(report
            .results
            .iter()
            .all(|r| r.status == FunctionStatus::Complete));
        assert_eq!(report.partial(), 0);
        assert!(!report.to_string().contains("partial"));
        assert!(report.to_json().contains("\"status\": \"complete\""));

        // Zero budget: everything skipped, no partials.
        let cut = Campaign::new(
            CampaignConfig::new()
                .base(quick_base())
                .workers(2)
                .time_budget(Duration::ZERO),
        )
        .run(&programs);
        assert!(cut
            .results
            .iter()
            .all(|r| r.status == FunctionStatus::Skipped && r.report.is_none()));
        assert!(cut.to_json().contains("\"status\": \"skipped\""));
    }

    #[test]
    fn partial_rows_keep_their_progress_and_say_so() {
        // Force the deadline to land mid-search: a large budget of rounds
        // on one function with a deadline long enough to start but far too
        // short to finish.
        fn slow(input: &[f64], ctx: &mut ExecCtx) {
            let mut x = input[0];
            for site in 0..8u32 {
                if ctx.branch(site, Cmp::Eq, x * x, -1.0) {
                    // unreachable: keeps every round failing (and slow).
                }
                x = x * 0.9 + 1.0;
            }
        }
        let programs = vec![FnProgram::new(
            "slowpoke",
            1,
            8,
            slow as fn(&[f64], &mut ExecCtx),
        )];
        let config = CampaignConfig::new()
            .base(
                quick_base()
                    .n_start(200_000)
                    .infeasible_policy(crate::InfeasiblePolicy::Disabled),
            )
            .workers(1)
            .time_budget(Duration::from_millis(60));
        let report = Campaign::new(config).run(&programs);
        let result = &report.results[0];
        assert_eq!(result.status, FunctionStatus::Partial, "{report}");
        let partial = result.report.as_ref().expect("progress kept");
        assert!(!partial.rounds.is_empty(), "progress dropped");
        assert!(partial.rounds.len() < 200_000);
        assert_eq!(report.partial(), 1);
        let text = report.to_string();
        assert!(text.contains("(partial)"), "{text}");
        assert!(text.contains("1 partial"), "{text}");
        assert!(report.to_json().contains("\"status\": \"partial\""));
    }

    #[test]
    fn degraded_functions_are_marked_partial_and_count_their_aborts() {
        // Every execution times out, so each shard degrades after
        // `ABORT_PATIENCE` aborted rounds instead of burning the budget.
        fn spin(input: &[f64], ctx: &mut ExecCtx) {
            ctx.branch(0, Cmp::Gt, input[0].abs() + 1.0, 0.0);
            ctx.mark_timeout();
        }
        let programs = vec![FnProgram::new(
            "spin",
            1,
            1,
            spin as fn(&[f64], &mut ExecCtx),
        )];
        let report =
            Campaign::new(CampaignConfig::new().base(quick_base()).workers(1)).run(&programs);
        let result = &report.results[0];
        assert_eq!(result.status, FunctionStatus::Partial, "{report}");
        let partial = result.report.as_ref().expect("progress kept");
        assert!(partial.timeouts > 0, "timeouts surfaced: {partial}");
        assert!(partial.inputs.is_empty(), "aborted rounds accept nothing");
        assert!(report.total_timeouts() > 0);
        assert!(report.to_json().contains("\"status\": \"partial\""));
    }

    #[test]
    fn sync_json_baseline_adds_eval_columns() {
        let programs = inventory();
        let blind = Campaign::new(
            CampaignConfig::new()
                .base(quick_base().n_start(64))
                .shards(3)
                .workers(2),
        )
        .run(&programs);
        let synced = Campaign::new(
            CampaignConfig::new()
                .base(quick_base().n_start(64))
                .shards(3)
                .sync_epochs(4)
                .workers(2),
        )
        .run(&programs);
        let json = synced.to_json_with_sync_baseline(&blind);
        assert_eq!(
            json.matches("\"evals_sync_off\":").count(),
            programs.len(),
            "{json}"
        );
        assert!(json.contains("\"total_evaluations_sync_off\":"));
        assert!(json.contains("\"sync_epochs\": 4"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn expired_budget_returns_partial_results() {
        let programs = inventory();
        let config = CampaignConfig::new()
            .base(quick_base())
            .workers(2)
            .time_budget(Duration::ZERO);
        let report = Campaign::new(config).run(&programs);
        // One entry per function either way, every one skipped: the deadline
        // had already passed when the workers started claiming.
        assert_eq!(report.results.len(), programs.len());
        assert_eq!(report.skipped(), programs.len());
        assert_eq!(report.completed(), 0);
        assert!(report.results.iter().all(|r| r.shards_run == 0));
        assert!(report.to_string().contains("skipped"));
        // Nothing ran, so nothing is covered — not vacuously 100%.
        assert_eq!(report.suite_branch_coverage_percent(), 0.0);
        assert_eq!(report.suite_block_coverage_percent(), 0.0);
        assert_eq!(report.mean_branch_coverage_percent(), 0.0);
    }

    #[test]
    fn budget_state_expires_before_a_claim_not_after() {
        let now = Instant::now();
        assert_eq!(budget_state(None, now), BudgetState::Unlimited);
        assert_eq!(
            budget_state(Some(now + Duration::from_secs(5)), now),
            BudgetState::Remaining(Duration::from_secs(5))
        );
        // A deadline that leaves no measurable time is expired — a worker
        // must not claim a unit it could only run with a zero budget.
        assert_eq!(budget_state(Some(now), now), BudgetState::Expired);
        assert_eq!(
            budget_state(Some(now), now + Duration::from_millis(1)),
            BudgetState::Expired
        );
    }

    #[test]
    fn empty_inventory_yields_empty_report() {
        let programs: Vec<ToyProgram> = Vec::new();
        let report = Campaign::new(CampaignConfig::default()).run(&programs);
        assert!(report.results.is_empty());
        assert_eq!(report.completed(), 0);
        assert_eq!(report.skipped(), 0);
        assert_eq!(report.suite_branch_coverage_percent(), 100.0);
        assert_eq!(report.mean_branch_coverage_percent(), 100.0);
    }

    #[test]
    fn branch_free_inventory_reports_vacuous_mean_not_nan() {
        // Regression: every completed function is branch-free, so no
        // function contributes a branch percentage; the mean used to be
        // 0/0 = NaN while completed() > 0 kept the vacuous guard silent.
        fn no_branches(_: &[f64], _: &mut ExecCtx) {}
        let programs = vec![
            FnProgram::new("straight_a", 1, 0, no_branches as fn(&[f64], &mut ExecCtx)),
            FnProgram::new("straight_b", 1, 0, no_branches as fn(&[f64], &mut ExecCtx)),
        ];
        let report =
            Campaign::new(CampaignConfig::new().base(quick_base()).workers(2)).run(&programs);
        assert_eq!(report.completed(), 2);
        assert!(report
            .results
            .iter()
            .all(|r| r.branch_coverage_percent().is_none()));
        let mean = report.mean_branch_coverage_percent();
        assert!(!mean.is_nan(), "mean must not be NaN");
        assert_eq!(mean, 100.0);
        assert_eq!(report.suite_branch_coverage_percent(), 100.0);
        assert_eq!(report.suite_block_coverage_percent(), 100.0);
    }

    #[test]
    fn branch_free_functions_do_not_dilute_the_mean() {
        fn no_branches(_: &[f64], _: &mut ExecCtx) {}
        fn partial(input: &[f64], ctx: &mut ExecCtx) {
            // 1T (a square equal to -1) is infeasible, so this function
            // cannot reach 100% — 3 of 4 branches at best.
            let x = input[0];
            if ctx.branch(0, Cmp::Le, x, 0.0) {
                // easy
            }
            if ctx.branch(1, Cmp::Eq, x * x, -1.0) {
                // unreachable
            }
        }
        let programs = vec![
            FnProgram::new("straight", 1, 0, no_branches as fn(&[f64], &mut ExecCtx)),
            FnProgram::new("partial", 1, 2, partial as fn(&[f64], &mut ExecCtx)),
        ];
        let report =
            Campaign::new(CampaignConfig::new().base(quick_base()).workers(2)).run(&programs);
        let partial_pct = report.results[1].branch_coverage_percent().unwrap();
        assert!(partial_pct < 100.0);
        // The mean is exactly the branchful function's percentage — the
        // branch-free entry neither drags it down nor pads it with 100.
        assert_eq!(report.mean_branch_coverage_percent(), partial_pct);
    }

    #[test]
    fn per_function_seeds_differ_and_are_stable() {
        assert_ne!(
            derive_function_seed(7, "ieee754_exp", 0),
            derive_function_seed(7, "ieee754_log", 1)
        );
        assert_eq!(
            derive_function_seed(7, "ieee754_exp", 0),
            derive_function_seed(7, "ieee754_exp", 0)
        );
        // Campaign seed participates.
        assert_ne!(
            derive_function_seed(7, "ieee754_exp", 0),
            derive_function_seed(8, "ieee754_exp", 0)
        );
        // Regression: duplicate names at different inventory positions must
        // not silently run identical searches.
        assert_ne!(
            derive_function_seed(7, "ieee754_exp", 0),
            derive_function_seed(7, "ieee754_exp", 1)
        );
    }

    #[test]
    fn duplicate_names_run_distinct_searches() {
        fn alpha(input: &[f64], ctx: &mut ExecCtx) {
            let mut x = input[0];
            if ctx.branch(0, Cmp::Le, x, 1.0) {
                x += 2.5;
            }
            if ctx.branch(1, Cmp::Eq, x * x, 4.0) {
                // target
            }
        }
        let programs = vec![
            FnProgram::new("twin", 1, 2, alpha as fn(&[f64], &mut ExecCtx)),
            FnProgram::new("twin", 1, 2, alpha as fn(&[f64], &mut ExecCtx)),
        ];
        let report =
            Campaign::new(CampaignConfig::new().base(quick_base()).workers(2)).run(&programs);
        let a = report.results[0].report.as_ref().unwrap();
        let b = report.results[1].report.as_ref().unwrap();
        assert_ne!(
            a.inputs, b.inputs,
            "same-named entries ran identical searches"
        );
    }

    #[test]
    fn suite_aggregation_sums_branches() {
        let programs = inventory();
        let report =
            Campaign::new(CampaignConfig::new().base(quick_base()).workers(2)).run(&programs);
        let covered: usize = report
            .results
            .iter()
            .filter_map(|r| r.report.as_ref())
            .map(|t| t.coverage.covered_count())
            .sum();
        let total: usize = report
            .results
            .iter()
            .filter_map(|r| r.report.as_ref())
            .map(|t| t.coverage.total_branches())
            .sum();
        let expected = 100.0 * covered as f64 / total as f64;
        assert!((report.suite_branch_coverage_percent() - expected).abs() < 1e-9);
        // All three toy programs are fully coverable.
        assert_eq!(report.suite_branch_coverage_percent(), 100.0);
    }

    #[test]
    fn report_surfaces_evaluation_telemetry() {
        let programs = inventory();
        // Force memoization on: the toy programs are far below the Auto
        // threshold, and this test is about the telemetry plumbing.
        let base = quick_base().cache(crate::objective::CacheMode::On);
        let report = Campaign::new(CampaignConfig::new().base(base).workers(2)).run(&programs);
        assert!(report.total_evaluations() > 0);
        let summed: usize = report.results.iter().map(FunctionResult::evaluations).sum();
        assert_eq!(report.total_evaluations(), summed);
        // The quick toy searches revisit points (line searches re-probe the
        // incumbent), so the cache must have fired at least once.
        assert!(
            report.total_cache_hits() > 0,
            "no cache hit in {} evals",
            summed
        );
        assert!(report.suite_evals_per_second() > 0.0);
        let text = report.to_string();
        assert!(text.contains("evals/s"));
        assert!(text.contains("cache hits"));
    }

    #[test]
    fn json_report_is_well_formed_and_complete() {
        let programs = inventory();
        let report =
            Campaign::new(CampaignConfig::new().base(quick_base()).workers(2)).run(&programs);
        let json = report.to_json();
        // One object per function plus matched braces/brackets.
        assert_eq!(json.matches("\"name\":").count(), programs.len());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"schema\": \"coverme-campaign-report/6\"",
            "\"backend\": \"",
            "\"simd_isa\": \"",
            "\"lane_width\":",
            "\"suite_branch_coverage_percent\":",
            "\"total_evaluations\":",
            "\"total_cache_hits\":",
            "\"total_timeouts\":",
            "\"total_traps\":",
            "\"suite_evals_per_second\":",
            "\"evals_per_second\":",
            "\"cache_hits\":",
            "\"timeouts\":",
            "\"traps\":",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // No non-finite numbers may leak into the document (match value
        // position only — `infeasible_blamed` is a legitimate key).
        assert!(
            !json.contains(": inf") && !json.contains(": -inf") && !json.contains(": NaN"),
            "{json}"
        );
    }

    #[test]
    fn json_report_marks_skipped_functions() {
        let programs = inventory();
        let config = CampaignConfig::new()
            .base(quick_base())
            .workers(2)
            .time_budget(Duration::ZERO);
        let json = Campaign::new(config).run(&programs).to_json();
        assert_eq!(json.matches("\"completed\": false").count(), programs.len());
        assert!(json.contains("\"skipped\": 3"));
    }

    #[test]
    fn json_escapes_hostile_program_names() {
        fn body(_: &[f64], ctx: &mut ExecCtx) {
            ctx.branch(0, Cmp::Gt, 1.0, 0.0);
        }
        let programs = vec![FnProgram::new(
            "quo\"te\\back\nline",
            1,
            1,
            body as fn(&[f64], &mut ExecCtx),
        )];
        let json = Campaign::new(CampaignConfig::new().base(quick_base()).workers(1))
            .run(&programs)
            .to_json();
        assert!(json.contains("quo\\\"te\\\\back\\nline"));
    }

    #[test]
    fn effective_workers_defaults_to_at_least_two() {
        let config = CampaignConfig::default();
        assert!(config.effective_workers(40) >= 2);
        // Never more workers than work units; at least one for tiny suites.
        assert_eq!(config.effective_workers(1), 1);
        assert_eq!(CampaignConfig::new().workers(8).effective_workers(3), 3);
        // Sharding multiplies the unit count, so one heavy function can
        // still fan out over several workers.
        assert_eq!(
            CampaignConfig::new()
                .workers(8)
                .shards(4)
                .effective_workers(1),
            4
        );
        // The minimum-rounds floor caps how finely a small budget splits,
        // and the unit grid follows the effective count.
        let starved = CampaignConfig::new().base(quick_base()).shards(4);
        assert_eq!(starved.effective_shards(), 2); // n_start 40 / 16
        assert_eq!(starved.clone().workers(8).effective_workers(1), 2);
    }

    fn bandit_config(budget: usize, workers: usize) -> CampaignConfig {
        CampaignConfig::new()
            .base(
                quick_base()
                    .scheduler(SchedulerPolicy::Bandit)
                    .budget(budget),
            )
            .workers(workers)
    }

    #[test]
    fn bandit_reports_identical_across_thread_counts() {
        let programs = inventory();
        let runs: Vec<CampaignReport> = [1, 2, 4]
            .iter()
            .map(|&workers| Campaign::new(bandit_config(30_000, workers)).run(&programs))
            .collect();
        assert_eq!(fingerprint(&runs[0]), fingerprint(&runs[1]));
        assert_eq!(fingerprint(&runs[0]), fingerprint(&runs[2]));
        // The grant histories must agree too, not just the search results.
        for run in &runs[1..] {
            for (a, b) in runs[0].results.iter().zip(&run.results) {
                assert_eq!(a.budget, b.budget, "{}", a.name);
            }
        }
        assert_eq!(runs[0].scheduler, SchedulerPolicy::Bandit);
        assert_eq!(runs[0].eval_budget, Some(30_000));
    }

    #[test]
    fn bandit_ledger_conserves_the_pool() {
        let programs = inventory();
        let pool = 20_000;
        let report = Campaign::new(bandit_config(pool, 2)).run(&programs);
        let granted: usize = report
            .results
            .iter()
            .map(|r| r.budget.expect("bandit attaches a ledger").granted)
            .sum();
        assert!(granted <= pool, "granted {granted} > pool {pool}");
        // The ledger is settled against actual spend, so a function's
        // evaluations exceed its granted total only when the pool ran
        // completely dry while its last round was in flight.
        for result in &report.results {
            let ledger = result.budget.unwrap();
            let evals = result.report.as_ref().map_or(0, |r| r.evaluations);
            assert!(
                evals <= ledger.granted || granted == pool,
                "{} spent {evals} of {} granted with pool to spare",
                result.name,
                ledger.granted
            );
            assert!(ledger.grants > 0 || ledger.granted == 0);
        }
    }

    #[test]
    fn bandit_with_ample_budget_matches_fixed_coverage() {
        let programs = inventory();
        let fixed =
            Campaign::new(CampaignConfig::new().base(quick_base()).workers(2)).run(&programs);
        let bandit = Campaign::new(bandit_config(500_000, 2)).run(&programs);
        for (a, b) in fixed.results.iter().zip(&bandit.results) {
            let (a, b) = (a.report.as_ref().unwrap(), b.report.as_ref().unwrap());
            assert!(
                b.coverage.covered_count() >= a.coverage.covered_count(),
                "{}: bandit covered {} < fixed {}",
                a.program,
                b.coverage.covered_count(),
                a.coverage.covered_count()
            );
        }
        assert!(bandit
            .results
            .iter()
            .all(|r| r.status != FunctionStatus::Skipped));
    }

    #[test]
    fn bandit_zero_pool_skips_everything() {
        let programs = inventory();
        let report = Campaign::new(bandit_config(0, 2)).run(&programs);
        assert_eq!(report.results.len(), programs.len());
        for result in &report.results {
            assert_eq!(result.status, FunctionStatus::Skipped, "{}", result.name);
            assert_eq!(result.budget, Some(BudgetLedger::default()));
        }
    }

    #[test]
    fn bandit_without_budget_falls_back_to_fixed() {
        let programs = inventory();
        let fallback = Campaign::new(
            CampaignConfig::new()
                .base(quick_base().scheduler(SchedulerPolicy::Bandit))
                .workers(2),
        )
        .run(&programs);
        let fixed =
            Campaign::new(CampaignConfig::new().base(quick_base()).workers(2)).run(&programs);
        assert_eq!(fingerprint(&fallback), fingerprint(&fixed));
        assert_eq!(fallback.scheduler, SchedulerPolicy::Fixed);
    }

    #[test]
    fn bandit_json_carries_scheduler_and_ledger_keys() {
        let programs = inventory();
        let json = Campaign::new(bandit_config(30_000, 2))
            .run(&programs)
            .to_json();
        for key in [
            "\"scheduler\": \"bandit\"",
            "\"eval_budget\": 30000",
            "\"coverage_per_megaeval\":",
            "\"budget_granted\":",
            "\"budget_grants\":",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
    }
}
