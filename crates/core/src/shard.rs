//! Intra-function sharded search: split one CoverMe run's starting-point
//! budget across independent workers and merge the snapshots.
//!
//! The paper's Algorithm 1 is multistart at heart — coverage comes from many
//! independent starting points funneled through local minimization — which
//! makes a *single* function's search shardable, not just a benchmark suite.
//! This module splits the `n_start` budget of one [`CoverMeConfig`] into
//! `shards` disjoint slices, runs each slice as its own local search loop
//! ([`run_shard`]), and merges the per-shard snapshots into one
//! [`TestReport`] ([`merge_shards`]).
//!
//! # Budget slicing and seed derivation
//!
//! Shard `i` of `k` owns the *strided* slice of global round indices
//! `{i, i + k, i + 2k, …} ∩ [0, n_start)` — disjoint across shards, and
//! together exactly the rounds the unsharded search would run. Each round's
//! randomness is derived from the **function seed and the global round
//! index**, never from scheduling:
//!
//! * all shards regenerate the same starting-point schedule from
//!   `seed ^ 0x5EED_0001` (the sequential driver's stream) and pick only the
//!   rounds they own, so the *set of explored starting points is invariant
//!   under the shard count*;
//! * round `j`'s Basinhopping seed is `seed + j` mixed exactly as in the
//!   sequential driver, so shard `i`'s whole workload is a deterministic
//!   function of `(function seed, shard index, shard count)`.
//!
//! Two invariants follow:
//!
//! * **Bitwise determinism per shard count.** For a fixed `(seed, shards)`,
//!   every shard's snapshot — and therefore the merged report — is
//!   reproducible regardless of how shards are scheduled onto threads.
//! * **Coverage is not lost by sharding.** A sharded run explores the same
//!   starting points with the same per-round minimizer seeds as the
//!   unsharded run; the only difference is that each shard minimizes against
//!   its own (smaller) saturation snapshot, and a smaller saturated set only
//!   makes zeros of the representing function *easier* to reach (more
//!   branches still count as new, Definition 4.2 case (a)). What a shard
//!   does lose is part of the sequential run's directed-search feedback —
//!   its snapshot refines over `n_start / shards` rounds instead of
//!   `n_start` — so a shard starved of rounds can burn its whole slice on
//!   branches every other shard also finds. That is why
//!   [`CoverMeConfig::effective_shards`] refuses to split below
//!   [`MIN_ROUNDS_PER_SHARD`] rounds per shard; with the floor in place, a
//!   sharded run covers at least what shard count 1 covers for the same
//!   total `n_start` on every Fdlibm benchmark measured, and the property
//!   tests in `tests/shard_properties.rs` check the invariant across
//!   generated programs and shard counts.
//!
//! # Merging
//!
//! [`merge_shards`] unions the [`SaturationTracker`] states (covered,
//! learned descendants, infeasible verdicts — a verdict refuted by another
//! shard's real coverage is dropped), unions the coverage maps, and selects
//! the best representing inputs per branch: accepted inputs are replayed in
//! global round order and one is kept only when it covers a branch no
//! earlier-kept input covers. The merge is a pure function of the shard
//! snapshots, so it inherits their determinism.
//!
//! The shard loop itself lives in the epoch-resumable
//! [`SearchState`](crate::driver::SearchState); [`run_shard`] runs one
//! state to exhaustion in a single slice. Callers that own threads
//! ([`crate::Campaign`]'s epoch scheduler, or
//! [`CoverMe::run_parallel`](crate::CoverMe::run_parallel)) drive the same
//! states epoch by epoch — optionally exchanging saturation deltas at the
//! [`crate::sync`] barriers — and
//! [`CoverMe::run`](crate::CoverMe::run) executes the shards sequentially;
//! all of them merge to the identical report for a fixed
//! `(seed, shards, sync_epochs)`.

use std::time::Instant;

use coverme_runtime::{BranchSet, CoverageMap, Program};

use crate::driver::{CoverMeConfig, SearchState};
use crate::report::{EpochTelemetry, RoundRecord, TestReport};
use crate::saturation::SaturationTracker;

/// The fewest starting points a shard should own for splitting to be
/// worthwhile. A shard's rounds refine *its own* saturation snapshot, and
/// that directed-search feedback is what finds the hard branches; a shard
/// starved below roughly this many rounds duplicates the easy branches other
/// shards also find and never gets pushed toward the rest (measured on
/// `ieee754_pow`: 10 rounds per shard lost branches the unsharded search
/// found, 16+ reached parity). [`CoverMeConfig::effective_shards`] clamps
/// the requested shard count so every shard keeps at least this many rounds.
pub const MIN_ROUNDS_PER_SHARD: usize = 16;

/// One accepted zero of the representing function: a generated test input
/// together with the branches executing it covers.
#[derive(Debug, Clone)]
pub struct AcceptedInput {
    /// Global round index (position in the unsharded `n_start` schedule)
    /// that produced the input.
    pub round: usize,
    /// The input point (`x*` with `FOO_R(x*) = 0`).
    pub input: Vec<f64>,
    /// Branches covered by executing the program on `input`.
    pub covered: BranchSet,
}

/// The saturation/coverage snapshot produced by one shard of a search.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Which shard produced this snapshot.
    pub shard_index: usize,
    /// Total shard count of the run this snapshot belongs to.
    pub shards: usize,
    /// The shard's final saturation state (covered, descendants learned
    /// from its traces, infeasible verdicts).
    pub tracker: SaturationTracker,
    /// Branch coverage accumulated by the shard.
    pub coverage: CoverageMap,
    /// Accepted inputs in the shard's round order.
    pub accepted: Vec<AcceptedInput>,
    /// Per-round records; `round` fields are global round indices.
    pub rounds: Vec<RoundRecord>,
    /// Representing-function evaluations spent by the shard (objective
    /// calls, including the ones the engine answered from its cache).
    pub evaluations: usize,
    /// Objective calls the engine served from its memoization cache
    /// without executing the program.
    pub cache_hits: usize,
    /// Evaluations whose execution ran out of fuel (see
    /// [`coverme_runtime::RunOutcome::Timeout`]); they returned the abort
    /// sentinel and fed no coverage or saturation update.
    pub timeouts: usize,
    /// Evaluations whose execution trapped mid-run (see
    /// [`coverme_runtime::RunOutcome::Trap`]).
    pub traps: usize,
    /// Per-epoch work telemetry: one entry per `run_rounds` slice the
    /// shard's [`SearchState`] executed (a run-to-exhaustion shard has
    /// exactly one).
    pub epochs: Vec<EpochTelemetry>,
    /// Sync barriers the shard crossed without an exchange under the
    /// adaptive gate (see [`CoverMeConfig::adaptive_sync`]).
    pub barriers_skipped: usize,
    /// Corpus inputs the shard's warm start replayed (see
    /// [`CoverMeConfig::warm_start`]; 0 for a cold search).
    pub warm_replayed: usize,
    /// Name of the execution backend the shard's engine ran.
    pub backend: &'static str,
    /// Label of the SIMD ISA the backend's lane kernels dispatched to
    /// (see [`coverme_runtime::SimdIsa::label`]).
    pub simd_isa: &'static str,
    /// The backend's SIMD lane width.
    pub lane_width: usize,
    /// When the shard started running.
    pub started: Instant,
    /// When the shard finished.
    pub finished: Instant,
}

impl ShardOutcome {
    /// Converts a single-shard outcome into a [`TestReport`] without any
    /// representative-input reselection — for `shards == 1` this reproduces
    /// the sequential driver's report bit for bit (every accepted input is
    /// kept, redundant or not).
    pub fn into_report(self, program_name: &str) -> TestReport {
        TestReport {
            program: program_name.to_string(),
            inputs: self.accepted.into_iter().map(|a| a.input).collect(),
            coverage: self.coverage,
            infeasible: self.tracker.infeasible().iter().collect(),
            rounds: self.rounds,
            evaluations: self.evaluations,
            cache_hits: self.cache_hits,
            timeouts: self.timeouts,
            traps: self.traps,
            epochs: self.epochs,
            barriers_skipped: self.barriers_skipped,
            warm_replayed: self.warm_replayed,
            backend: self.backend,
            simd_isa: self.simd_isa,
            lane_width: self.lane_width,
            wall_time: self.finished.duration_since(self.started),
        }
    }
}

/// The result of merging a search's shard snapshots.
#[derive(Debug, Clone)]
pub struct MergedSearch {
    /// The merged report: unioned coverage, representative inputs, all
    /// rounds in global order.
    pub report: TestReport,
    /// The merged saturation state (see [`SaturationTracker::merge_from`]).
    pub tracker: SaturationTracker,
}

/// Runs shard `shard_index` of a search configured for `config.shards`
/// shards: the local search loop of Algorithm 1 restricted to the strided
/// slice of rounds the shard owns (see the [module docs](self)).
///
/// A thin wrapper over the epoch-resumable [`SearchState`]: create the
/// state, run it to exhaustion in a single slice, convert it into the
/// shard snapshot. With `config.shards <= 1` this is exactly the
/// sequential driver loop; cross-shard sync lives one layer up
/// ([`crate::sync`] and the campaign's epoch scheduler), which pause the
/// same state machine at epoch boundaries instead.
///
/// # Panics
///
/// Panics if the program takes no inputs, or if `shard_index` is out of
/// range for the configured shard count.
pub fn run_shard<P: Program>(
    config: &CoverMeConfig,
    program: &P,
    shard_index: usize,
) -> ShardOutcome {
    let mut state = SearchState::new(config, program, shard_index);
    state.run_to_exhaustion();
    state.finish()
}

/// Merges shard snapshots of one search into a single report plus the
/// merged saturation state (see the [module docs](self) for the semantics).
///
/// The outcomes may arrive in any order (they are sorted by shard index);
/// a partial set — e.g. when a campaign deadline expired before every shard
/// ran — merges the shards that did run. The report's `wall_time` is the
/// wall-clock span from the earliest shard start to the latest shard
/// finish, so a parallel run shows its real elapsed time, not the sum of
/// shard times.
///
/// # Panics
///
/// Panics if `outcomes` is empty, contains duplicate shard indices, or
/// mixes snapshots from runs with different shard counts (their strided
/// slices would overlap, violating the disjoint-budget invariant).
pub fn merge_shards(program_name: &str, mut outcomes: Vec<ShardOutcome>) -> MergedSearch {
    assert!(!outcomes.is_empty(), "cannot merge zero shard outcomes");
    let shards = outcomes[0].shards;
    assert!(
        outcomes.iter().all(|o| o.shards == shards),
        "cannot merge snapshots from different shard counts"
    );
    outcomes.sort_by_key(|o| o.shard_index);
    assert!(
        outcomes
            .windows(2)
            .all(|w| w[0].shard_index < w[1].shard_index),
        "duplicate shard index in merge"
    );

    let mut tracker = outcomes[0].tracker.clone();
    let mut coverage = outcomes[0].coverage.clone();
    for outcome in &outcomes[1..] {
        tracker.merge_from(&outcome.tracker);
        coverage.merge_from(&outcome.coverage);
    }

    // Best representing inputs per branch: replay accepted inputs in global
    // round order, keeping one only when it represents a branch no
    // earlier-kept input covers.
    let mut all_accepted: Vec<&AcceptedInput> = outcomes.iter().flat_map(|o| &o.accepted).collect();
    all_accepted.sort_by_key(|a| a.round);
    let mut represented = BranchSet::with_sites(coverage.num_sites());
    let mut inputs: Vec<Vec<f64>> = Vec::new();
    for a in all_accepted {
        if a.covered.iter().any(|b| !represented.contains(b)) {
            represented.union_with(&a.covered);
            inputs.push(a.input.clone());
        }
    }

    let mut rounds: Vec<RoundRecord> = outcomes.iter().flat_map(|o| o.rounds.clone()).collect();
    rounds.sort_by_key(|r| r.round);
    // Per-epoch telemetry aggregates across shards by epoch index (shards
    // that early-exited simply stop contributing to later epochs).
    let mut epochs: Vec<EpochTelemetry> = Vec::new();
    for outcome in &outcomes {
        for entry in &outcome.epochs {
            if epochs.len() <= entry.epoch {
                epochs.resize_with(entry.epoch + 1, EpochTelemetry::default);
            }
            let slot = &mut epochs[entry.epoch];
            slot.epoch = entry.epoch;
            slot.rounds += entry.rounds;
            slot.evaluations += entry.evaluations;
            slot.deltas_absorbed += entry.deltas_absorbed;
        }
    }
    for (index, slot) in epochs.iter_mut().enumerate() {
        slot.epoch = index;
    }
    let evaluations = outcomes.iter().map(|o| o.evaluations).sum();
    let cache_hits = outcomes.iter().map(|o| o.cache_hits).sum();
    let timeouts = outcomes.iter().map(|o| o.timeouts).sum();
    let traps = outcomes.iter().map(|o| o.traps).sum();
    let barriers_skipped = outcomes.iter().map(|o| o.barriers_skipped).sum();
    let warm_replayed = outcomes.iter().map(|o| o.warm_replayed).sum();
    let started = outcomes.iter().map(|o| o.started).min().expect("non-empty");
    let finished = outcomes
        .iter()
        .map(|o| o.finished)
        .max()
        .expect("non-empty");
    let infeasible = tracker.infeasible().iter().collect();
    // Every shard of a search runs the same program under the same
    // configuration, so they all resolved the same backend.
    let backend = outcomes[0].backend;
    let simd_isa = outcomes[0].simd_isa;
    let lane_width = outcomes[0].lane_width;

    MergedSearch {
        report: TestReport {
            program: program_name.to_string(),
            inputs,
            coverage,
            infeasible,
            rounds,
            evaluations,
            cache_hits,
            timeouts,
            traps,
            epochs,
            barriers_skipped,
            warm_replayed,
            backend,
            simd_isa,
            lane_width,
            wall_time: finished.duration_since(started),
        },
        tracker,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoverMe, InfeasiblePolicy};
    use coverme_runtime::{Cmp, ExecCtx, FnProgram};

    /// The paper's Fig. 3 example program.
    fn paper_example() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
        FnProgram::new("FOO", 1, 2, |input: &[f64], ctx: &mut ExecCtx| {
            let mut x = input[0];
            if ctx.branch(0, Cmp::Le, x, 1.0) {
                x += 2.5;
            }
            let y = x * x;
            if ctx.branch(1, Cmp::Eq, y, 4.0) {
                // target
            }
        })
    }

    fn config(shards: usize) -> CoverMeConfig {
        CoverMeConfig::default()
            .n_start(48)
            .n_iter(5)
            .seed(9)
            .shards(shards)
    }

    #[test]
    fn strided_slices_partition_the_budget() {
        let n_start = 10;
        for shards in 1..=4usize {
            let mut seen = vec![0usize; n_start];
            for index in 0..shards {
                for round in (index..n_start).step_by(shards) {
                    seen[round] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "shards={shards}: {seen:?}");
        }
    }

    #[test]
    fn one_shard_outcome_reproduces_the_sequential_driver() {
        let program = paper_example();
        let sequential = CoverMe::new(config(1)).run(&program);
        let outcome = run_shard(&config(1), &program, 0);
        let report = outcome.into_report(program.name());
        assert_eq!(report.inputs, sequential.inputs);
        assert_eq!(report.coverage, sequential.coverage);
        assert_eq!(report.rounds, sequential.rounds);
        assert_eq!(report.evaluations, sequential.evaluations);
    }

    #[test]
    fn shards_explore_disjoint_rounds_of_the_shared_schedule() {
        let program = paper_example();
        let cfg = config(3)
            // Keep every shard running its full slice so the round sets are
            // exactly the strided slices.
            .infeasible_policy(InfeasiblePolicy::Disabled)
            .n_start(12);
        let outcomes: Vec<ShardOutcome> = (0..3).map(|i| run_shard(&cfg, &program, i)).collect();
        let mut rounds_seen: Vec<usize> = outcomes
            .iter()
            .flat_map(|o| o.rounds.iter().map(|r| r.round))
            .collect();
        rounds_seen.sort_unstable();
        rounds_seen.dedup();
        // Shards may stop early on saturation, but the rounds they do run
        // are distinct global indices.
        let total: usize = outcomes.iter().map(|o| o.rounds.len()).sum();
        assert_eq!(rounds_seen.len(), total, "overlapping shard slices");
        // And the same global round gets the same starting point in every
        // shard count (shared schedule).
        let unsharded = run_shard(&cfg.clone().shards(1), &program, 0);
        for outcome in &outcomes {
            for record in &outcome.rounds {
                if let Some(seq) = unsharded.rounds.iter().find(|r| r.round == record.round) {
                    assert_eq!(seq.start, record.start, "round {}", record.round);
                }
            }
        }
    }

    #[test]
    fn merged_report_covers_union_of_shards() {
        let program = paper_example();
        let cfg = config(3);
        let outcomes: Vec<ShardOutcome> = (0..3).map(|i| run_shard(&cfg, &program, i)).collect();
        let mut union = BranchSet::with_sites(program.num_sites());
        for outcome in &outcomes {
            union.union_with(outcome.coverage.covered());
        }
        let merged = merge_shards(program.name(), outcomes);
        assert_eq!(merged.report.coverage.covered(), &union);
        assert_eq!(merged.tracker.covered(), &union);
    }

    #[test]
    fn merged_inputs_reproduce_the_merged_coverage() {
        let program = paper_example();
        let cfg = config(4);
        let outcomes: Vec<ShardOutcome> = (0..4).map(|i| run_shard(&cfg, &program, i)).collect();
        let merged = merge_shards(program.name(), outcomes);
        let mut check = CoverageMap::new(program.num_sites());
        for input in &merged.report.inputs {
            let mut ctx = ExecCtx::observe();
            program.execute(input, &mut ctx);
            check.record(&ctx);
        }
        assert_eq!(
            check.covered_count(),
            merged.report.coverage.covered_count()
        );
    }

    #[test]
    fn merge_accepts_partial_and_unordered_outcomes() {
        let program = paper_example();
        let cfg = config(4);
        // Only shards 3 and 1 ran (deadline expired for the rest), handed
        // over out of order.
        let outcomes = vec![run_shard(&cfg, &program, 3), run_shard(&cfg, &program, 1)];
        let merged = merge_shards(program.name(), outcomes);
        assert!(merged.report.coverage.covered_count() > 0);
    }

    #[test]
    #[should_panic(expected = "zero shard outcomes")]
    fn merge_rejects_empty_input() {
        let _ = merge_shards("nothing", Vec::new());
    }

    #[test]
    #[should_panic(expected = "different shard counts")]
    fn merge_rejects_mixed_shard_counts() {
        let program = paper_example();
        let a = run_shard(&config(2), &program, 0);
        let b = run_shard(&config(3), &program, 1);
        let _ = merge_shards(program.name(), vec![a, b]);
    }

    #[test]
    #[should_panic(expected = "duplicate shard index")]
    fn merge_rejects_duplicate_shards() {
        let program = paper_example();
        let cfg = config(2);
        let a = run_shard(&cfg, &program, 0);
        let _ = merge_shards(program.name(), vec![a.clone(), a]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn run_shard_rejects_out_of_range_index() {
        let program = paper_example();
        let _ = run_shard(&config(2), &program, 2);
    }
}
