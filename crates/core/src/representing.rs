//! The representing function `FOO_R` (Step 2 of the paper's approach).
//!
//! Given the instrumented program `FOO_I` and a snapshot of the currently
//! saturated branches, the representing function is
//!
//! ```text
//! double FOO_R(double x) { r = 1; FOO_I(x); return r; }
//! ```
//!
//! Its two defining conditions (Sect. 3.2) are enforced by construction:
//!
//! * **C1** `FOO_R(x) ≥ 0` for all `x` — `r` starts at `1` and is only ever
//!   assigned `pen(...)`, which is a branch distance (non-negative) or `0`;
//! * **C2** `FOO_R(x) = 0` iff `x` saturates a branch not yet saturated —
//!   Theorem 4.3.

use std::cell::RefCell;

use coverme_runtime::{BranchSet, ExecCtx, LaneCtx, Program, RunOutcome, Trace};

/// The result of evaluating the representing function on one input.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// `FOO_R(x)` — the value of `r` after executing the instrumented
    /// program.
    pub value: f64,
    /// Branches covered by this execution.
    pub covered: BranchSet,
    /// Ordered decision trace of this execution.
    pub trace: Trace,
    /// How the execution ended. Anything but [`RunOutcome::Done`] means the
    /// run aborted (fuel exhausted, runtime fault): `value` is a truncated
    /// accumulator, `covered` and `trace` describe a path that was never
    /// completed, and none of them may feed coverage, saturation or
    /// memoization updates.
    pub outcome: RunOutcome,
}

/// The representing function of a program against a saturation snapshot.
///
/// The snapshot is immutable for the lifetime of the value: CoverMe builds a
/// fresh `RepresentingFunction` for every minimization round, exactly as the
/// paper rebuilds `FOO_R`'s behaviour whenever `Saturate` changes.
#[derive(Debug, Clone)]
pub struct RepresentingFunction<P> {
    program: P,
    saturated: BranchSet,
    epsilon: f64,
    /// Reusable fast-path context for [`eval`](Self::eval): built once (one
    /// snapshot clone per `RepresentingFunction`, not per call), reset
    /// between executions, recording neither trace nor coverage — the
    /// minimizer only consumes the scalar, and `r` does not depend on
    /// either. Interior mutability keeps `eval(&self)` compatible with the
    /// borrowing [`objective`](Self::objective) adapter.
    scratch: RefCell<ExecCtx>,
    /// Reusable lane context for [`eval_batch`](Self::eval_batch): the
    /// instrumented body set up for lane evaluation — a deferred-penalty
    /// recording context over this snapshot plus the SoA lane buffers the
    /// lockstep finalize consumes. Built once per `RepresentingFunction`,
    /// like `scratch`.
    lanes: RefCell<LaneCtx>,
}

impl<P: Program> RepresentingFunction<P> {
    /// Creates the representing function for `program` against the given
    /// saturation snapshot, using the default `ε`.
    pub fn new(program: P, saturated: BranchSet) -> Self {
        let scratch = ExecCtx::representing(saturated.clone())
            .without_trace()
            .without_coverage();
        let lanes = LaneCtx::new(saturated.clone());
        RepresentingFunction {
            program,
            saturated,
            epsilon: coverme_runtime::DEFAULT_EPSILON,
            scratch: RefCell::new(scratch),
            lanes: RefCell::new(lanes),
        }
    }

    /// Overrides the `ε` used by the branch distances.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        let scratch = self.scratch.get_mut();
        *scratch = ExecCtx::representing(self.saturated.clone())
            .with_epsilon(epsilon)
            .without_trace()
            .without_coverage();
        let lanes = self.lanes.get_mut();
        *lanes = LaneCtx::new(self.saturated.clone()).with_epsilon(epsilon);
        self
    }

    /// The wrapped program.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// The saturation snapshot this representing function was built against.
    pub fn saturated(&self) -> &BranchSet {
        &self.saturated
    }

    /// Number of inputs of the underlying program.
    pub fn arity(&self) -> usize {
        self.program.arity()
    }

    /// Evaluates `FOO_R(x)` and returns only its value. This is the closure
    /// handed to the unconstrained-programming backend.
    ///
    /// Fast path: the reusable scratch context is reset and re-executed —
    /// no snapshot clone, no trace, no covered-set inserts per call. The
    /// value is bit-identical to what [`eval_full`](Self::eval_full)
    /// computes, because `r` depends only on the saturation snapshot
    /// (`without_coverage_still_computes_r` in `coverme-runtime` pins
    /// that). Coverage of the interesting inputs — the zeros — is never
    /// lost: the driver re-evaluates every accepted minimum through
    /// [`eval_full`](Self::eval_full) before consuming it.
    pub fn eval(&self, input: &[f64]) -> f64 {
        let mut ctx = self.scratch.borrow_mut();
        ctx.reset();
        self.program.execute(input, &mut ctx);
        ctx.representing_value()
    }

    /// Evaluates `FOO_R` over a batch of independent points through the
    /// lane backend ([`coverme_runtime::LaneCtx`]): each point records one
    /// deferred-penalty execution, and the penalties of every lane group
    /// resolve in one lockstep finalize. One value per point is appended to
    /// `values` in input order, bit-for-bit equal to what per-point
    /// [`eval`](Self::eval) calls return.
    pub fn eval_batch(&self, points: &[Vec<f64>], values: &mut Vec<f64>) {
        let mut lanes = self.lanes.borrow_mut();
        lanes.eval_batch(&self.program, points, values);
    }

    /// Evaluates `FOO_R(x)` keeping the covered branches and the decision
    /// trace, which the driver needs to update coverage, saturation and the
    /// infeasible-branch heuristic.
    pub fn eval_full(&self, input: &[f64]) -> Evaluation {
        let mut ctx = ExecCtx::representing(self.saturated.clone()).with_epsilon(self.epsilon);
        self.program.execute(input, &mut ctx);
        let outcome = ctx.run_outcome();
        let (covered, trace, value) = ctx.into_parts();
        Evaluation {
            value,
            covered,
            trace,
            outcome,
        }
    }

    /// Borrowing adapter usable as an `FnMut(&[f64]) -> f64` objective.
    pub fn objective(&self) -> impl FnMut(&[f64]) -> f64 + '_ {
        move |x: &[f64]| self.eval(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverme_runtime::{BranchId, Cmp, FnProgram};

    /// The paper's Fig. 3 program with `square` inlined.
    fn paper_example() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
        FnProgram::new("FOO", 1, 2, |input: &[f64], ctx: &mut ExecCtx| {
            let mut x = input[0];
            if ctx.branch(0, Cmp::Le, x, 1.0) {
                x += 2.5;
            }
            let y = x * x;
            if ctx.branch(1, Cmp::Eq, y, 4.0) {
                // target
            }
        })
    }

    #[test]
    fn row1_no_saturation_means_identically_zero() {
        let foo_r = RepresentingFunction::new(paper_example(), BranchSet::new());
        for x in [-5.2, 0.0, 0.7, 1.0, 1.1, 100.0] {
            assert_eq!(foo_r.eval(&[x]), 0.0, "x = {x}");
        }
    }

    #[test]
    fn row2_only_1f_saturated() {
        let saturated: BranchSet = [BranchId::false_of(1)].into_iter().collect();
        let foo_r = RepresentingFunction::new(paper_example(), saturated);
        // Zeros of the representing function are inputs driving y == 4:
        // on the x <= 1 side, (x + 2.5)^2 == 4 at x = -0.5 and x = -4.5;
        // on the x > 1 side, x^2 == 4 at x = 2.
        assert_eq!(foo_r.eval(&[-0.5]), 0.0);
        assert_eq!(foo_r.eval(&[-4.5]), 0.0);
        assert_eq!(foo_r.eval(&[2.0]), 0.0);
        assert!(foo_r.eval(&[0.7]) > 0.0);
        assert!(foo_r.eval(&[10.0]) > 0.0);
    }

    #[test]
    fn row4_everything_saturated_means_identically_one() {
        let saturated: BranchSet = [
            BranchId::true_of(0),
            BranchId::false_of(0),
            BranchId::true_of(1),
            BranchId::false_of(1),
        ]
        .into_iter()
        .collect();
        let foo_r = RepresentingFunction::new(paper_example(), saturated);
        for x in [-5.2, 0.7, 1.1, 2.0] {
            assert_eq!(foo_r.eval(&[x]), 1.0, "x = {x}");
        }
    }

    #[test]
    fn condition_c1_non_negative_everywhere() {
        // C1 must hold for every saturation snapshot, not just the ones the
        // driver produces.
        let snapshots: Vec<BranchSet> = vec![
            BranchSet::new(),
            [BranchId::true_of(0)].into_iter().collect(),
            [BranchId::true_of(0), BranchId::false_of(1)]
                .into_iter()
                .collect(),
            [
                BranchId::true_of(0),
                BranchId::false_of(0),
                BranchId::true_of(1),
                BranchId::false_of(1),
            ]
            .into_iter()
            .collect(),
        ];
        for saturated in snapshots {
            let foo_r = RepresentingFunction::new(paper_example(), saturated);
            let mut x = -10.0;
            while x <= 10.0 {
                assert!(foo_r.eval(&[x]) >= 0.0, "x = {x}");
                x += 0.37;
            }
        }
    }

    #[test]
    fn condition_c2_zero_implies_new_saturation() {
        // With {0T, 1F} saturated (covered by x = 0.7): a zero of FOO_R must
        // cover a branch outside that set.
        let saturated: BranchSet = [BranchId::true_of(0), BranchId::false_of(1)]
            .into_iter()
            .collect();
        let foo_r = RepresentingFunction::new(paper_example(), saturated.clone());
        let mut x = -10.0;
        while x <= 10.0 {
            let eval = foo_r.eval_full(&[x]);
            if eval.value == 0.0 {
                let covers_new = eval.covered.iter().any(|b| !saturated.contains(b));
                assert!(covers_new, "zero at x = {x} covers nothing new");
            }
            x += 0.01;
        }
    }

    #[test]
    fn eval_full_and_eval_agree() {
        let saturated: BranchSet = [BranchId::false_of(1)].into_iter().collect();
        let foo_r = RepresentingFunction::new(paper_example(), saturated);
        for x in [-3.0, -0.5, 0.3, 1.5, 2.0] {
            assert_eq!(foo_r.eval(&[x]), foo_r.eval_full(&[x]).value);
        }
    }

    #[test]
    fn custom_epsilon_reaches_the_fast_path_scratch_context() {
        // ε changes the distance of saturated equality branches, so the two
        // paths only agree if with_epsilon updated the reusable context too.
        let saturated: BranchSet = [BranchId::true_of(1), BranchId::false_of(1)]
            .into_iter()
            .collect();
        for epsilon in [coverme_runtime::DEFAULT_EPSILON, 0.5, 2.0] {
            let foo_r =
                RepresentingFunction::new(paper_example(), saturated.clone()).with_epsilon(epsilon);
            for x in [-2.0, -0.5, 0.7, 2.0, 5.0] {
                assert_eq!(
                    foo_r.eval(&[x]).to_bits(),
                    foo_r.eval_full(&[x]).value.to_bits(),
                    "epsilon = {epsilon}, x = {x}"
                );
            }
        }
    }

    #[test]
    fn repeated_fast_path_evaluations_are_stable() {
        // The scratch context is reset between calls: interleaved and
        // repeated evaluations must not leak state into each other.
        let foo_r = RepresentingFunction::new(paper_example(), snapshot_for_stability());
        let first: Vec<u64> = [-0.5, 0.7, 2.0, 0.7, -0.5]
            .iter()
            .map(|&x| foo_r.eval(&[x]).to_bits())
            .collect();
        let second: Vec<u64> = [-0.5, 0.7, 2.0, 0.7, -0.5]
            .iter()
            .map(|&x| foo_r.eval(&[x]).to_bits())
            .collect();
        assert_eq!(first, second);
        assert_eq!(first[0], first[4]);
        assert_eq!(first[1], first[3]);
    }

    fn snapshot_for_stability() -> BranchSet {
        [BranchId::false_of(1)].into_iter().collect()
    }

    #[test]
    fn eval_batch_matches_scalar_eval_bit_for_bit() {
        let saturated: BranchSet = [BranchId::true_of(0), BranchId::false_of(1)]
            .into_iter()
            .collect();
        let foo_r = RepresentingFunction::new(paper_example(), saturated);
        let points: Vec<Vec<f64>> = (0..21)
            .map(|i| vec![i as f64 * 0.93 - 9.0])
            .chain([vec![f64::NAN], vec![f64::INFINITY]])
            .collect();
        let mut values = Vec::new();
        foo_r.eval_batch(&points, &mut values);
        assert_eq!(values.len(), points.len());
        for (point, value) in points.iter().zip(&values) {
            assert_eq!(value.to_bits(), foo_r.eval(point).to_bits(), "{point:?}");
        }
    }

    #[test]
    fn eval_full_reports_trace_in_execution_order() {
        let foo_r = RepresentingFunction::new(paper_example(), BranchSet::new());
        let eval = foo_r.eval_full(&[0.0]);
        let sites: Vec<u32> = eval.trace.iter().map(|e| e.site).collect();
        assert_eq!(sites, vec![0, 1]);
    }

    #[test]
    fn objective_closure_is_usable_by_the_optimizer() {
        let saturated: BranchSet = [BranchId::false_of(1)].into_iter().collect();
        let foo_r = RepresentingFunction::new(paper_example(), saturated);
        let mut objective = foo_r.objective();
        let result = coverme_optim::BasinHopping::new()
            .iterations(20)
            .seed(3)
            .target_value(0.0)
            .minimize(&mut objective, &[10.0]);
        assert_eq!(result.value, 0.0);
    }
}
