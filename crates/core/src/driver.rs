//! The CoverMe driver — Algorithm 1 of the paper.
//!
//! The driver repeatedly builds the representing function against the
//! current saturation snapshot, minimizes it with Basinhopping (MCMC over a
//! local minimizer), and interprets the result:
//!
//! * `FOO_R(x*) = 0` — `x*` is a genuine test input that saturates a new
//!   branch (Theorem 4.3); it is added to the generated input set `X` and
//!   coverage/saturation are updated;
//! * `FOO_R(x*) > 0` — the backend could not reach zero; the
//!   infeasible-branch heuristic of Sect. 5.3 deems the unvisited branch of
//!   the last conditional on `x*`'s path infeasible so later rounds stop
//!   chasing it.
//!
//! The loop stops when every branch is saturated, when the configured number
//! of starting points (`n_start`) is exhausted, or when an optional wall
//! clock budget runs out.

use std::time::{Duration, Instant};

use coverme_optim::rng::SplitMix64;
use coverme_optim::{
    BasinHopping, LocalMethod, PerturbationKind, StartingPointStrategy,
};
use coverme_runtime::{CoverageMap, Program, DEFAULT_EPSILON};

use crate::report::{RoundOutcome, RoundRecord, TestReport};
use crate::representing::RepresentingFunction;
use crate::saturation::SaturationTracker;

/// How `pen` decides that a conditional site no longer needs attention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PenPolicy {
    /// Use saturation (Definition 3.2): a branch stops being a target only
    /// when it *and all its descendant branches* are covered. This is the
    /// paper's definition and gives Theorem 4.3 its guarantee.
    #[default]
    Saturation,
    /// Treat plain coverage as saturation. Cheaper but loses the guarantee
    /// on nested branches; exists for the ablation benchmarks.
    CoveredOnly,
}

/// Whether the infeasible-branch heuristic of Sect. 5.3 is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InfeasiblePolicy {
    /// When a round's minimum is positive, deem the unvisited branch of the
    /// last conditional on the minimizing input's path infeasible (the
    /// paper's heuristic).
    #[default]
    LastConditional,
    /// Never deem branches infeasible; keep trying until the budget runs
    /// out.
    Disabled,
}

/// Configuration of a CoverMe run. The defaults reproduce the paper's
/// experimental settings (`n_start = 500`, `n_iter = 5`, `LM = powell`).
#[derive(Debug, Clone, PartialEq)]
pub struct CoverMeConfig {
    /// Number of starting points (`n_start`).
    pub n_start: usize,
    /// Number of Monte-Carlo iterations per start (`n_iter`).
    pub n_iter: usize,
    /// Local minimization algorithm (`LM`).
    pub local_method: LocalMethod,
    /// `ε` used by the branch distances.
    pub epsilon: f64,
    /// Distribution of random starting points.
    pub starting_points: StartingPointStrategy,
    /// Distribution of Monte-Carlo perturbations.
    pub perturbation: PerturbationKind,
    /// Master random seed.
    pub seed: u64,
    /// Saturation semantics used by `pen`.
    pub pen_policy: PenPolicy,
    /// Infeasible-branch heuristic.
    pub infeasible_policy: InfeasiblePolicy,
    /// A minimum is accepted as "zero" when `FOO_R(x*) <=` this threshold.
    /// The representing function reaches exactly `0.0` by construction, so
    /// the default is `0.0`.
    pub zero_threshold: f64,
    /// Optional wall-clock budget for the whole run.
    pub time_budget: Option<Duration>,
    /// Extension (off by default, not part of the paper's algorithm): also
    /// record the coverage of every intermediate evaluation performed by the
    /// minimizer, not just of the returned minimum points.
    pub record_search_coverage: bool,
    /// Extension (on by default): when a round's minimum is positive but the
    /// backend clearly converged near a point (e.g. `x* = 1.9999999999997`
    /// for an exact-equality branch), probe a handful of "rounded"
    /// candidates per coordinate and accept one that drives the representing
    /// function to zero. This mitigates the floating-point-inaccuracy
    /// incompleteness the paper's Remark 6.1 describes; the
    /// `ablation_pen_policy` bench measures its effect.
    pub polish: bool,
}

impl Default for CoverMeConfig {
    fn default() -> Self {
        CoverMeConfig {
            n_start: 500,
            n_iter: 5,
            local_method: LocalMethod::Powell,
            epsilon: DEFAULT_EPSILON,
            starting_points: StartingPointStrategy::default(),
            perturbation: PerturbationKind::default(),
            seed: 0,
            pen_policy: PenPolicy::Saturation,
            infeasible_policy: InfeasiblePolicy::LastConditional,
            zero_threshold: 0.0,
            time_budget: None,
            record_search_coverage: false,
            polish: true,
        }
    }
}

impl CoverMeConfig {
    /// Creates the paper's default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of starting points (`n_start`).
    pub fn n_start(mut self, n_start: usize) -> Self {
        self.n_start = n_start;
        self
    }

    /// Sets the number of Monte-Carlo iterations per start (`n_iter`).
    pub fn n_iter(mut self, n_iter: usize) -> Self {
        self.n_iter = n_iter;
        self
    }

    /// Sets the local minimization method.
    pub fn local_method(mut self, method: LocalMethod) -> Self {
        self.local_method = method;
        self
    }

    /// Sets the branch-distance `ε`.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the starting-point distribution.
    pub fn starting_points(mut self, strategy: StartingPointStrategy) -> Self {
        self.starting_points = strategy;
        self
    }

    /// Sets the Monte-Carlo perturbation distribution.
    pub fn perturbation(mut self, perturbation: PerturbationKind) -> Self {
        self.perturbation = perturbation;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the saturation semantics used by `pen`.
    pub fn pen_policy(mut self, policy: PenPolicy) -> Self {
        self.pen_policy = policy;
        self
    }

    /// Sets the infeasible-branch policy.
    pub fn infeasible_policy(mut self, policy: InfeasiblePolicy) -> Self {
        self.infeasible_policy = policy;
        self
    }

    /// Sets the wall-clock budget.
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Enables recording coverage of intermediate search evaluations.
    pub fn record_search_coverage(mut self, enabled: bool) -> Self {
        self.record_search_coverage = enabled;
        self
    }

    /// Enables or disables the rounding-based polish step applied to
    /// near-miss minima.
    pub fn polish(mut self, enabled: bool) -> Self {
        self.polish = enabled;
        self
    }
}

/// The CoverMe tester.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CoverMe {
    config: CoverMeConfig,
}

impl CoverMe {
    /// Creates a tester with the given configuration.
    pub fn new(config: CoverMeConfig) -> CoverMe {
        CoverMe { config }
    }

    /// Creates a tester with the paper's default configuration.
    pub fn with_defaults() -> CoverMe {
        CoverMe::default()
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoverMeConfig {
        &self.config
    }

    /// Runs branch coverage-based testing on `program` (Algorithm 1).
    pub fn run<P: Program>(&self, program: &P) -> TestReport {
        let cfg = &self.config;
        let num_sites = program.num_sites();
        let arity = program.arity();
        assert!(arity > 0, "program under test must take at least one input");

        let mut tracker = match cfg.pen_policy {
            PenPolicy::Saturation => SaturationTracker::new(num_sites),
            PenPolicy::CoveredOnly => SaturationTracker::new(num_sites).covered_only(),
        };
        let mut coverage = CoverageMap::new(num_sites);
        let mut inputs: Vec<Vec<f64>> = Vec::new();
        let mut rounds: Vec<RoundRecord> = Vec::new();
        let mut total_evaluations = 0usize;
        let mut start_rng = SplitMix64::new(cfg.seed ^ 0x5EED_0001);
        let started = Instant::now();

        for round in 0..cfg.n_start {
            if tracker.all_saturated() {
                break;
            }
            if let Some(budget) = cfg.time_budget {
                if started.elapsed() >= budget {
                    break;
                }
            }

            // Line 9: a random starting point.
            let x0 = cfg.starting_points.sample(&mut start_rng, arity);

            // Step 2: the representing function against the current snapshot.
            let snapshot = tracker.saturated_set();
            let saturated_before = snapshot.len();
            let foo_r =
                RepresentingFunction::new(program, snapshot).with_epsilon(cfg.epsilon);

            // Line 10: x* = MCMC(FOO_R, x).
            let hopper = BasinHopping::new()
                .iterations(cfg.n_iter)
                .local_method(cfg.local_method)
                .perturbation(cfg.perturbation)
                .temperature(1.0)
                .seed(cfg.seed.wrapping_add(round as u64).wrapping_mul(0x9E37_79B9))
                .target_value(cfg.zero_threshold);

            let result = if cfg.record_search_coverage {
                let mut objective = |x: &[f64]| {
                    let evaluation = foo_r.eval_full(x);
                    coverage.record_set(&evaluation.covered);
                    tracker.record_trace(&evaluation.trace);
                    evaluation.value
                };
                hopper.minimize(&mut objective, &x0)
            } else {
                let mut objective = foo_r.objective();
                hopper.minimize(&mut objective, &x0)
            };
            total_evaluations += result.stats.evaluations;

            // Line 11-12: accept the minimum point if FOO_R(x*) = 0, update
            // Saturate; otherwise apply the infeasible-branch heuristic.
            let mut minimum_point = result.x.clone();
            let mut evaluation = foo_r.eval_full(&minimum_point);
            total_evaluations += 1;
            if cfg.polish && evaluation.value > cfg.zero_threshold {
                if let Some((polished, polished_eval, polish_evals)) =
                    polish_minimum(&foo_r, &minimum_point, cfg.zero_threshold)
                {
                    minimum_point = polished;
                    evaluation = polished_eval;
                    total_evaluations += polish_evals;
                }
            }
            let outcome = if evaluation.value <= cfg.zero_threshold {
                let newly_covered = coverage.record_set(&evaluation.covered);
                tracker.record_trace(&evaluation.trace);
                inputs.push(minimum_point.clone());
                if newly_covered > 0 {
                    RoundOutcome::NewInput
                } else {
                    RoundOutcome::RedundantInput
                }
            } else {
                match cfg.infeasible_policy {
                    InfeasiblePolicy::LastConditional => {
                        if let Some(last) = evaluation.trace.last() {
                            let blamed = last.untaken_branch();
                            tracker.mark_infeasible(blamed);
                            RoundOutcome::DeemedInfeasible(blamed)
                        } else {
                            RoundOutcome::NoProgress
                        }
                    }
                    InfeasiblePolicy::Disabled => RoundOutcome::NoProgress,
                }
            };

            rounds.push(RoundRecord {
                round,
                start: x0,
                minimum: minimum_point,
                value: evaluation.value,
                evaluations: result.stats.evaluations,
                saturated_before,
                outcome,
            });
        }

        TestReport {
            program: program.name().to_string(),
            inputs,
            coverage,
            infeasible: tracker.infeasible().iter().collect(),
            rounds,
            evaluations: total_evaluations,
            wall_time: started.elapsed(),
        }
    }
}

/// Probes "rounded" variants of a near-miss minimum point, one coordinate at
/// a time, looking for an exact zero of the representing function.
///
/// Unconstrained minimizers converge to `x*` only up to a tolerance, which is
/// not enough when the target branch needs an *exact* floating-point equality
/// (e.g. `y == 4` is only reached at `x = 2`, not at `x = 2 + 1e-12`). The
/// candidates tried here are the natural "intended" values a numeric method
/// narrowly missed: integers, halves, tenths, and a few ULP neighbours.
///
/// Returns the polished point, its evaluation and the number of extra
/// representing-function evaluations, or `None` if no candidate reached the
/// threshold.
fn polish_minimum<P: Program>(
    foo_r: &RepresentingFunction<P>,
    x: &[f64],
    threshold: f64,
) -> Option<(Vec<f64>, crate::representing::Evaluation, usize)> {
    let mut best = x.to_vec();
    let mut best_value = foo_r.eval(&best);
    let mut evaluations = 1usize;

    for coord in 0..best.len() {
        let original = best[coord];
        for candidate in candidate_values(original) {
            if candidate == best[coord] {
                continue;
            }
            let mut trial = best.clone();
            trial[coord] = candidate;
            let value = foo_r.eval(&trial);
            evaluations += 1;
            if value < best_value {
                best_value = value;
                best = trial;
                if best_value <= threshold {
                    let evaluation = foo_r.eval_full(&best);
                    evaluations += 1;
                    return Some((best, evaluation, evaluations));
                }
            }
        }
    }

    if best_value <= threshold {
        let evaluation = foo_r.eval_full(&best);
        evaluations += 1;
        Some((best, evaluation, evaluations))
    } else {
        None
    }
}

/// Candidate replacement values for one coordinate of a near-miss minimum.
fn candidate_values(x: f64) -> Vec<f64> {
    if !x.is_finite() {
        return vec![0.0];
    }
    let mut candidates = vec![
        x.round(),
        x.floor(),
        x.ceil(),
        (x * 2.0).round() / 2.0,
        (x * 10.0).round() / 10.0,
        (x * 100.0).round() / 100.0,
        0.0,
    ];
    // A few ULP neighbours in both directions.
    let mut up = x;
    let mut down = x;
    for _ in 0..3 {
        up = next_up(up);
        down = next_down(down);
        candidates.push(up);
        candidates.push(down);
    }
    candidates.dedup();
    candidates
}

fn next_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    let bits = if x == 0.0 { 1 } else if x > 0.0 { x.to_bits() + 1 } else { x.to_bits() - 1 };
    f64::from_bits(bits)
}

fn next_down(x: f64) -> f64 {
    if x.is_nan() || x == f64::NEG_INFINITY {
        return x;
    }
    if x == 0.0 {
        return -f64::from_bits(1);
    }
    let bits = if x > 0.0 { x.to_bits() - 1 } else { x.to_bits() + 1 };
    f64::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverme_runtime::{BranchId, Cmp, ExecCtx, FnProgram};

    /// The paper's Fig. 3 example program.
    fn paper_example() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
        FnProgram::new("FOO", 1, 2, |input: &[f64], ctx: &mut ExecCtx| {
            let mut x = input[0];
            if ctx.branch(0, Cmp::Le, x, 1.0) {
                x += 2.5;
            }
            let y = x * x;
            if ctx.branch(1, Cmp::Eq, y, 4.0) {
                // target
            }
        })
    }

    /// The modified example of Sect. 5.3 with the infeasible branch
    /// `y == -1` (y is a square, so it can never be -1).
    fn infeasible_example() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
        FnProgram::new("FOO_INF", 1, 2, |input: &[f64], ctx: &mut ExecCtx| {
            let mut x = input[0];
            if ctx.branch(0, Cmp::Le, x, 1.0) {
                x += 1.0;
            }
            let y = x * x;
            if ctx.branch(1, Cmp::Eq, y, -1.0) {
                // unreachable
            }
        })
    }

    fn quick_config() -> CoverMeConfig {
        CoverMeConfig::default().n_start(60).n_iter(5).seed(42)
    }

    #[test]
    fn saturates_the_paper_example_fully() {
        let report = CoverMe::new(quick_config()).run(&paper_example());
        assert_eq!(report.branch_coverage_percent(), 100.0, "{report}");
        assert!(report.is_fully_covered());
        assert!(!report.inputs.is_empty());
        // The hard branch 1T (y == 4) requires x in {-4.5, -0.5, 2}.
        assert!(report.coverage.is_covered(BranchId::true_of(1)));
    }

    #[test]
    fn generated_inputs_reproduce_the_reported_coverage() {
        // Re-run the program on the generated inputs only, with a fresh
        // coverage map: it must reproduce the coverage the report claims,
        // because the report's coverage is defined over X.
        let program = paper_example();
        let report = CoverMe::new(quick_config()).run(&program);
        let mut check = CoverageMap::new(program.num_sites());
        for input in &report.inputs {
            let mut ctx = ExecCtx::observe();
            program.execute(input, &mut ctx);
            check.record(&ctx);
        }
        assert_eq!(check.covered_count(), report.coverage.covered_count());
    }

    #[test]
    fn detects_the_infeasible_branch_and_terminates() {
        let report = CoverMe::new(quick_config()).run(&infeasible_example());
        // 3 of 4 branches are feasible and should be covered.
        assert_eq!(report.coverage.covered_count(), 3, "{report}");
        // The infeasible branch is 1T (y == -1).
        assert!(report.infeasible.contains(&BranchId::true_of(1)));
        // Crucially the driver stopped long before exhausting n_start.
        assert!(report.rounds.len() < 60);
    }

    #[test]
    fn early_termination_when_everything_saturates() {
        let report = CoverMe::new(quick_config()).run(&paper_example());
        assert!(
            report.rounds.len() <= 10,
            "took {} rounds for a 2-conditional program",
            report.rounds.len()
        );
    }

    #[test]
    fn deterministic_given_a_seed() {
        let a = CoverMe::new(quick_config()).run(&paper_example());
        let b = CoverMe::new(quick_config()).run(&paper_example());
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.coverage.covered_count(), b.coverage.covered_count());
    }

    #[test]
    fn covered_only_policy_still_covers_the_example() {
        let config = quick_config().pen_policy(PenPolicy::CoveredOnly);
        let report = CoverMe::new(config).run(&paper_example());
        assert_eq!(report.branch_coverage_percent(), 100.0);
    }

    #[test]
    fn search_coverage_extension_never_reports_less() {
        let plain = CoverMe::new(quick_config()).run(&paper_example());
        let extended =
            CoverMe::new(quick_config().record_search_coverage(true)).run(&paper_example());
        assert!(
            extended.coverage.covered_count() >= plain.coverage.covered_count()
        );
    }

    #[test]
    fn respects_time_budget() {
        let config = quick_config()
            .n_start(1_000_000)
            .infeasible_policy(InfeasiblePolicy::Disabled)
            .time_budget(Duration::from_millis(50));
        let report = CoverMe::new(config).run(&infeasible_example());
        // Generous bound: the run must stop well under a second.
        assert!(report.wall_time < Duration::from_secs(5));
        assert!(report.rounds.len() < 1_000_000);
    }

    #[test]
    fn nelder_mead_backend_also_works() {
        // A weaker local minimizer can fail a round and trigger the
        // infeasible-branch heuristic on a feasible branch (the paper's
        // Remark 6.1 situation 2), so disable the heuristic here and let the
        // extra rounds recover full coverage.
        let config = quick_config()
            .local_method(LocalMethod::NelderMead)
            .infeasible_policy(InfeasiblePolicy::Disabled);
        let report = CoverMe::new(config).run(&paper_example());
        assert_eq!(report.branch_coverage_percent(), 100.0);
    }

    #[test]
    fn round_records_are_consistent() {
        let report = CoverMe::new(quick_config()).run(&paper_example());
        for (i, round) in report.rounds.iter().enumerate() {
            assert_eq!(round.round, i);
            assert_eq!(round.start.len(), 1);
            assert_eq!(round.minimum.len(), 1);
            assert!(round.value >= 0.0, "C1 violated in round {i}");
        }
        let productive = report.productive_rounds();
        assert!(productive >= 2, "need at least two inputs for 4 branches");
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn rejects_zero_arity_programs() {
        let p = FnProgram::new("nullary", 0, 0, |_: &[f64], _: &mut ExecCtx| {});
        let _ = CoverMe::with_defaults().run(&p);
    }
}
