//! The CoverMe driver — Algorithm 1 of the paper.
//!
//! The driver repeatedly points the objective engine
//! ([`crate::objective::ObjectiveEngine`]) at the current saturation
//! snapshot, minimizes the representing function with Basinhopping (MCMC
//! over a local minimizer) — every evaluation flowing through the engine's
//! allocation-free scalar fast path and bit-exact memoization cache — and
//! interprets the result:
//!
//! * `FOO_R(x*) = 0` — `x*` is a genuine test input that saturates a new
//!   branch (Theorem 4.3); it is added to the generated input set `X` and
//!   coverage/saturation are updated;
//! * `FOO_R(x*) > 0` — the backend could not reach zero; the
//!   infeasible-branch heuristic of Sect. 5.3 deems the unvisited branch of
//!   the last conditional on `x*`'s path infeasible so later rounds stop
//!   chasing it.
//!
//! The loop stops when every branch is saturated, when the configured number
//! of starting points (`n_start`) is exhausted, or when an optional wall
//! clock budget runs out.
//!
//! With `shards > 1` the starting-point budget is split across independent
//! shard searches whose snapshots are merged afterwards (see
//! [`crate::shard`]): [`CoverMe::run`] executes the shards sequentially
//! (same merged report, no extra threads), [`CoverMe::run_parallel`] fans
//! them across scoped worker threads for a wall-clock speedup.

use std::time::Duration;

use coverme_optim::{LocalMethod, PerturbationKind, StartingPointStrategy};
use coverme_runtime::{Program, DEFAULT_EPSILON};

use crate::objective::CacheMode;

use crate::report::TestReport;
use crate::shard::{merge_shards, run_shard, ShardOutcome};

/// How `pen` decides that a conditional site no longer needs attention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PenPolicy {
    /// Use saturation (Definition 3.2): a branch stops being a target only
    /// when it *and all its descendant branches* are covered. This is the
    /// paper's definition and gives Theorem 4.3 its guarantee.
    #[default]
    Saturation,
    /// Treat plain coverage as saturation. Cheaper but loses the guarantee
    /// on nested branches; exists for the ablation benchmarks.
    CoveredOnly,
}

/// Whether the infeasible-branch heuristic of Sect. 5.3 is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InfeasiblePolicy {
    /// When a round's minimum is positive, deem the unvisited branch of the
    /// last conditional on the minimizing input's path infeasible (the
    /// paper's heuristic).
    #[default]
    LastConditional,
    /// Never deem branches infeasible; keep trying until the budget runs
    /// out.
    Disabled,
}

/// Configuration of a CoverMe run. The defaults reproduce the paper's
/// experimental settings (`n_start = 500`, `n_iter = 5`, `LM = powell`).
#[derive(Debug, Clone, PartialEq)]
pub struct CoverMeConfig {
    /// Number of starting points (`n_start`).
    pub n_start: usize,
    /// Number of Monte-Carlo iterations per start (`n_iter`).
    pub n_iter: usize,
    /// Local minimization algorithm (`LM`).
    pub local_method: LocalMethod,
    /// `ε` used by the branch distances.
    pub epsilon: f64,
    /// Distribution of random starting points.
    pub starting_points: StartingPointStrategy,
    /// Distribution of Monte-Carlo perturbations.
    pub perturbation: PerturbationKind,
    /// Master random seed.
    pub seed: u64,
    /// Saturation semantics used by `pen`.
    pub pen_policy: PenPolicy,
    /// Infeasible-branch heuristic.
    pub infeasible_policy: InfeasiblePolicy,
    /// A minimum is accepted as "zero" when `FOO_R(x*) <=` this threshold.
    /// The representing function reaches exactly `0.0` by construction, so
    /// the default is `0.0`.
    pub zero_threshold: f64,
    /// Optional wall-clock budget for the whole run.
    pub time_budget: Option<Duration>,
    /// Extension (off by default, not part of the paper's algorithm): also
    /// record the coverage of every intermediate evaluation performed by the
    /// minimizer, not just of the returned minimum points.
    pub record_search_coverage: bool,
    /// Number of shards the `n_start` budget is split across (see
    /// [`crate::shard`]). `0` and `1` both mean unsharded; the merged result
    /// is deterministic for a fixed shard count regardless of scheduling.
    pub shards: usize,
    /// Extension (on by default): when a round's minimum is positive but the
    /// backend clearly converged near a point (e.g. `x* = 1.9999999999997`
    /// for an exact-equality branch), probe a handful of "rounded"
    /// candidates per coordinate and accept one that drives the representing
    /// function to zero. This mitigates the floating-point-inaccuracy
    /// incompleteness the paper's Remark 6.1 describes; the
    /// `ablation_pen_policy` bench measures its effect.
    pub polish: bool,
    /// Memoization policy of the objective engine (see
    /// [`crate::objective::CacheMode`]; the default `Auto` caches only
    /// branch-dense programs, where a hit saves more execution than the
    /// probe costs). The cache is bit-exact — keyed on the input's
    /// `f64::to_bits` patterns and invalidated whenever the saturation
    /// snapshot changes — so search results are identical under every
    /// mode; the knob exists for tuning and for the property tests that
    /// pin that invariant. Forced off under `record_search_coverage`,
    /// which needs every evaluation to really execute.
    pub cache: CacheMode,
}

impl Default for CoverMeConfig {
    fn default() -> Self {
        CoverMeConfig {
            n_start: 500,
            n_iter: 5,
            local_method: LocalMethod::Powell,
            epsilon: DEFAULT_EPSILON,
            starting_points: StartingPointStrategy::default(),
            perturbation: PerturbationKind::default(),
            seed: 0,
            pen_policy: PenPolicy::Saturation,
            infeasible_policy: InfeasiblePolicy::LastConditional,
            zero_threshold: 0.0,
            time_budget: None,
            record_search_coverage: false,
            shards: 1,
            polish: true,
            cache: CacheMode::Auto,
        }
    }
}

impl CoverMeConfig {
    /// Creates the paper's default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of starting points (`n_start`).
    pub fn n_start(mut self, n_start: usize) -> Self {
        self.n_start = n_start;
        self
    }

    /// Sets the number of Monte-Carlo iterations per start (`n_iter`).
    pub fn n_iter(mut self, n_iter: usize) -> Self {
        self.n_iter = n_iter;
        self
    }

    /// Sets the local minimization method.
    pub fn local_method(mut self, method: LocalMethod) -> Self {
        self.local_method = method;
        self
    }

    /// Sets the branch-distance `ε`.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the starting-point distribution.
    pub fn starting_points(mut self, strategy: StartingPointStrategy) -> Self {
        self.starting_points = strategy;
        self
    }

    /// Sets the Monte-Carlo perturbation distribution.
    pub fn perturbation(mut self, perturbation: PerturbationKind) -> Self {
        self.perturbation = perturbation;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the saturation semantics used by `pen`.
    pub fn pen_policy(mut self, policy: PenPolicy) -> Self {
        self.pen_policy = policy;
        self
    }

    /// Sets the infeasible-branch policy.
    pub fn infeasible_policy(mut self, policy: InfeasiblePolicy) -> Self {
        self.infeasible_policy = policy;
        self
    }

    /// Sets the wall-clock budget.
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Enables recording coverage of intermediate search evaluations.
    pub fn record_search_coverage(mut self, enabled: bool) -> Self {
        self.record_search_coverage = enabled;
        self
    }

    /// Sets the number of shards the `n_start` budget is split across
    /// (`0` and `1` both mean unsharded).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// The shard count a run of this configuration actually uses: the
    /// requested count, at least 1, and never so many that a shard owns
    /// fewer than [`crate::shard::MIN_ROUNDS_PER_SHARD`] starting points —
    /// splitting finer than that measurably loses coverage to duplicated
    /// easy-branch work (see the constant's docs). A pure function of the
    /// configuration, so determinism per requested shard count is kept.
    pub fn effective_shards(&self) -> usize {
        let widest = (self.n_start / crate::shard::MIN_ROUNDS_PER_SHARD).max(1);
        self.shards.clamp(1, widest)
    }

    /// Enables or disables the rounding-based polish step applied to
    /// near-miss minima.
    pub fn polish(mut self, enabled: bool) -> Self {
        self.polish = enabled;
        self
    }

    /// Sets the objective engine's memoization policy.
    pub fn cache(mut self, mode: CacheMode) -> Self {
        self.cache = mode;
        self
    }
}

/// The CoverMe tester.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CoverMe {
    config: CoverMeConfig,
}

impl CoverMe {
    /// Creates a tester with the given configuration.
    pub fn new(config: CoverMeConfig) -> CoverMe {
        CoverMe { config }
    }

    /// Creates a tester with the paper's default configuration.
    pub fn with_defaults() -> CoverMe {
        CoverMe::default()
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoverMeConfig {
        &self.config
    }

    /// Runs branch coverage-based testing on `program` (Algorithm 1).
    ///
    /// With `shards > 1` the shard searches run sequentially on the calling
    /// thread and their snapshots are merged ([`crate::shard`]); the merged
    /// report is identical to what [`run_parallel`](Self::run_parallel)
    /// produces, just without the wall-clock speedup.
    pub fn run<P: Program>(&self, program: &P) -> TestReport {
        let shards = self.config.effective_shards();
        let config = CoverMeConfig {
            shards,
            ..self.config.clone()
        };
        if shards == 1 {
            return run_shard(&config, program, 0).into_report(program.name());
        }
        let outcomes: Vec<ShardOutcome> = (0..shards)
            .map(|index| run_shard(&config, program, index))
            .collect();
        merge_shards(program.name(), outcomes).report
    }

    /// Runs branch coverage-based testing with the configured shards fanned
    /// across scoped worker threads (one thread per shard).
    ///
    /// The merged report is bitwise-identical to [`run`](Self::run) with the
    /// same configuration — the shard snapshots are deterministic and the
    /// merge is ordered by shard index — but the wall-clock time approaches
    /// the slowest single shard. With `shards <= 1` this is exactly `run`.
    pub fn run_parallel<P: Program + Sync>(&self, program: &P) -> TestReport {
        let shards = self.config.effective_shards();
        if shards == 1 {
            return self.run(program);
        }
        let config = CoverMeConfig {
            shards,
            ..self.config.clone()
        };
        let config = &config;
        let outcomes: Vec<ShardOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|index| scope.spawn(move || run_shard(config, program, index)))
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("shard worker panicked"))
                .collect()
        });
        merge_shards(program.name(), outcomes).report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverme_runtime::{BranchId, Cmp, CoverageMap, ExecCtx, FnProgram};

    /// The paper's Fig. 3 example program.
    fn paper_example() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
        FnProgram::new("FOO", 1, 2, |input: &[f64], ctx: &mut ExecCtx| {
            let mut x = input[0];
            if ctx.branch(0, Cmp::Le, x, 1.0) {
                x += 2.5;
            }
            let y = x * x;
            if ctx.branch(1, Cmp::Eq, y, 4.0) {
                // target
            }
        })
    }

    /// The modified example of Sect. 5.3 with the infeasible branch
    /// `y == -1` (y is a square, so it can never be -1).
    fn infeasible_example() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
        FnProgram::new("FOO_INF", 1, 2, |input: &[f64], ctx: &mut ExecCtx| {
            let mut x = input[0];
            if ctx.branch(0, Cmp::Le, x, 1.0) {
                x += 1.0;
            }
            let y = x * x;
            if ctx.branch(1, Cmp::Eq, y, -1.0) {
                // unreachable
            }
        })
    }

    fn quick_config() -> CoverMeConfig {
        CoverMeConfig::default().n_start(60).n_iter(5).seed(42)
    }

    #[test]
    fn saturates_the_paper_example_fully() {
        let report = CoverMe::new(quick_config()).run(&paper_example());
        assert_eq!(report.branch_coverage_percent(), 100.0, "{report}");
        assert!(report.is_fully_covered());
        assert!(!report.inputs.is_empty());
        // The hard branch 1T (y == 4) requires x in {-4.5, -0.5, 2}.
        assert!(report.coverage.is_covered(BranchId::true_of(1)));
    }

    #[test]
    fn generated_inputs_reproduce_the_reported_coverage() {
        // Re-run the program on the generated inputs only, with a fresh
        // coverage map: it must reproduce the coverage the report claims,
        // because the report's coverage is defined over X.
        let program = paper_example();
        let report = CoverMe::new(quick_config()).run(&program);
        let mut check = CoverageMap::new(program.num_sites());
        for input in &report.inputs {
            let mut ctx = ExecCtx::observe();
            program.execute(input, &mut ctx);
            check.record(&ctx);
        }
        assert_eq!(check.covered_count(), report.coverage.covered_count());
    }

    #[test]
    fn detects_the_infeasible_branch_and_terminates() {
        let report = CoverMe::new(quick_config()).run(&infeasible_example());
        // 3 of 4 branches are feasible and should be covered.
        assert_eq!(report.coverage.covered_count(), 3, "{report}");
        // The infeasible branch is 1T (y == -1).
        assert!(report.infeasible.contains(&BranchId::true_of(1)));
        // Crucially the driver stopped long before exhausting n_start.
        assert!(report.rounds.len() < 60);
    }

    #[test]
    fn early_termination_when_everything_saturates() {
        let report = CoverMe::new(quick_config()).run(&paper_example());
        assert!(
            report.rounds.len() <= 10,
            "took {} rounds for a 2-conditional program",
            report.rounds.len()
        );
    }

    #[test]
    fn deterministic_given_a_seed() {
        let a = CoverMe::new(quick_config()).run(&paper_example());
        let b = CoverMe::new(quick_config()).run(&paper_example());
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.coverage.covered_count(), b.coverage.covered_count());
    }

    #[test]
    fn covered_only_policy_still_covers_the_example() {
        let config = quick_config().pen_policy(PenPolicy::CoveredOnly);
        let report = CoverMe::new(config).run(&paper_example());
        assert_eq!(report.branch_coverage_percent(), 100.0);
    }

    #[test]
    fn search_coverage_extension_never_reports_less() {
        let plain = CoverMe::new(quick_config()).run(&paper_example());
        let extended =
            CoverMe::new(quick_config().record_search_coverage(true)).run(&paper_example());
        assert!(extended.coverage.covered_count() >= plain.coverage.covered_count());
    }

    #[test]
    fn respects_time_budget() {
        let config = quick_config()
            .n_start(1_000_000)
            .infeasible_policy(InfeasiblePolicy::Disabled)
            .time_budget(Duration::from_millis(50));
        let report = CoverMe::new(config).run(&infeasible_example());
        // Generous bound: the run must stop well under a second.
        assert!(report.wall_time < Duration::from_secs(5));
        assert!(report.rounds.len() < 1_000_000);
    }

    #[test]
    fn nelder_mead_backend_also_works() {
        // A weaker local minimizer can fail a round and trigger the
        // infeasible-branch heuristic on a feasible branch (the paper's
        // Remark 6.1 situation 2), so disable the heuristic here and let the
        // extra rounds recover full coverage.
        let config = quick_config()
            .local_method(LocalMethod::NelderMead)
            .infeasible_policy(InfeasiblePolicy::Disabled);
        let report = CoverMe::new(config).run(&paper_example());
        assert_eq!(report.branch_coverage_percent(), 100.0);
    }

    #[test]
    fn round_records_are_consistent() {
        let report = CoverMe::new(quick_config()).run(&paper_example());
        for (i, round) in report.rounds.iter().enumerate() {
            assert_eq!(round.round, i);
            assert_eq!(round.start.len(), 1);
            assert_eq!(round.minimum.len(), 1);
            assert!(round.value >= 0.0, "C1 violated in round {i}");
        }
        let productive = report.productive_rounds();
        assert!(productive >= 2, "need at least two inputs for 4 branches");
    }

    #[test]
    fn sharded_run_covers_the_paper_example_and_is_deterministic() {
        let config = quick_config().shards(4);
        let a = CoverMe::new(config.clone()).run(&paper_example());
        let b = CoverMe::new(config).run(&paper_example());
        assert_eq!(a.branch_coverage_percent(), 100.0, "{a}");
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.rounds.len(), b.rounds.len());
    }

    #[test]
    fn parallel_run_matches_sequential_sharded_run() {
        let config = quick_config().shards(3);
        let sequential = CoverMe::new(config.clone()).run(&paper_example());
        let parallel = CoverMe::new(config).run_parallel(&paper_example());
        assert_eq!(sequential.inputs, parallel.inputs);
        assert_eq!(sequential.coverage, parallel.coverage);
        assert_eq!(sequential.evaluations, parallel.evaluations);
    }

    #[test]
    fn sharded_run_never_covers_less_than_unsharded() {
        for shards in [2usize, 3, 4] {
            let unsharded = CoverMe::new(quick_config()).run(&infeasible_example());
            let sharded = CoverMe::new(quick_config().shards(shards)).run(&infeasible_example());
            assert!(
                sharded.coverage.covered_count() >= unsharded.coverage.covered_count(),
                "{shards} shards covered {} < {}",
                sharded.coverage.covered_count(),
                unsharded.coverage.covered_count()
            );
        }
    }

    #[test]
    fn effective_shards_keeps_a_minimum_round_slice() {
        assert_eq!(
            CoverMeConfig::default()
                .n_start(40)
                .shards(4)
                .effective_shards(),
            2
        );
        assert_eq!(
            CoverMeConfig::default()
                .n_start(80)
                .shards(4)
                .effective_shards(),
            4
        );
        assert_eq!(
            CoverMeConfig::default()
                .n_start(8)
                .shards(4)
                .effective_shards(),
            1
        );
        assert_eq!(CoverMeConfig::default().shards(0).effective_shards(), 1);
        // The paper's full budget splits comfortably.
        assert_eq!(CoverMeConfig::default().shards(16).effective_shards(), 16);
    }

    #[test]
    fn shards_zero_and_one_mean_unsharded() {
        let baseline = CoverMe::new(quick_config()).run(&paper_example());
        let zero = CoverMe::new(quick_config().shards(0)).run(&paper_example());
        let one = CoverMe::new(quick_config().shards(1)).run(&paper_example());
        assert_eq!(baseline.inputs, zero.inputs);
        assert_eq!(baseline.inputs, one.inputs);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn rejects_zero_arity_programs() {
        let p = FnProgram::new("nullary", 0, 0, |_: &[f64], _: &mut ExecCtx| {});
        let _ = CoverMe::with_defaults().run(&p);
    }
}
