//! The CoverMe driver — Algorithm 1 of the paper.
//!
//! The driver repeatedly points the objective engine
//! ([`crate::objective::ObjectiveEngine`]) at the current saturation
//! snapshot, minimizes the representing function with Basinhopping (MCMC
//! over a local minimizer) — every evaluation flowing through the engine's
//! allocation-free scalar fast path and bit-exact memoization cache — and
//! interprets the result:
//!
//! * `FOO_R(x*) = 0` — `x*` is a genuine test input that saturates a new
//!   branch (Theorem 4.3); it is added to the generated input set `X` and
//!   coverage/saturation are updated;
//! * `FOO_R(x*) > 0` — the backend could not reach zero; the
//!   infeasible-branch heuristic of Sect. 5.3 deems the unvisited branch of
//!   the last conditional on `x*`'s path infeasible so later rounds stop
//!   chasing it.
//!
//! The loop stops when every branch is saturated, when the configured number
//! of starting points (`n_start`) is exhausted, or when an optional wall
//! clock budget runs out.
//!
//! With `shards > 1` the starting-point budget is split across independent
//! shard searches whose snapshots are merged afterwards (see
//! [`crate::shard`]): [`CoverMe::run`] executes the shards sequentially
//! (same merged report, no extra threads), [`CoverMe::run_parallel`] fans
//! them across scoped worker threads for a wall-clock speedup.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use coverme_optim::rng::SplitMix64;
use coverme_optim::{
    BasinHopping, FnObjective, LocalMethod, PerturbationKind, StartingPointStrategy,
};
use coverme_runtime::{CoverageMap, Program, DEFAULT_EPSILON};

use crate::objective::{CacheMode, ObjectiveEngine};

use crate::report::{EpochTelemetry, RoundOutcome, RoundRecord, TestReport};
use crate::saturation::{SaturationDelta, SaturationTracker};
use crate::shard::{merge_shards, run_shard, AcceptedInput, ShardOutcome};

/// How `pen` decides that a conditional site no longer needs attention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PenPolicy {
    /// Use saturation (Definition 3.2): a branch stops being a target only
    /// when it *and all its descendant branches* are covered. This is the
    /// paper's definition and gives Theorem 4.3 its guarantee.
    #[default]
    Saturation,
    /// Treat plain coverage as saturation. Cheaper but loses the guarantee
    /// on nested branches; exists for the ablation benchmarks.
    CoveredOnly,
}

/// Whether the infeasible-branch heuristic of Sect. 5.3 is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InfeasiblePolicy {
    /// When a round's minimum is positive, deem the unvisited branch of the
    /// last conditional on the minimizing input's path infeasible (the
    /// paper's heuristic).
    #[default]
    LastConditional,
    /// Generalized blame with two-stage escalation. A first failure on a
    /// path blames the classic anchor exactly like
    /// [`LastConditional`](Self::LastConditional) — the representing value
    /// is the branch distance of the last live conditional, so that is the
    /// only branch the nonzero minimum indicts. But when a path fails
    /// *again* with its anchor already written off (covered or previously
    /// blamed), the minimizer is provably stuck upstream: every
    /// still-uncovered untaken sibling along the path is then deemed
    /// infeasible in one verdict (see
    /// [`SaturationTracker::blame_uncovered_path`]). Verdicts stay
    /// refutable: real coverage from any shard drops them at delta
    /// application and merge time exactly as under `LastConditional`, so
    /// sync and shard merges remain commutative. This is what lets a
    /// search with several infeasible branches on one path genuinely
    /// saturate instead of exhausting `n_start` re-blaming the same anchor
    /// once per failed round.
    Generalized,
    /// Never deem branches infeasible; keep trying until the budget runs
    /// out.
    Disabled,
}

/// How a campaign ([`crate::Campaign`]) spends its evaluation budget across
/// functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// Every function gets the configured `n_start` schedule — the
    /// original campaign behavior, bit-identical to earlier releases.
    #[default]
    Fixed,
    /// A global evaluation budget ([`CoverMeConfig::budget`]) is allocated
    /// across functions by a deterministic UCB-style bandit over per-epoch
    /// marginal-coverage-per-eval telemetry: functions still gaining
    /// branches earn further grants (up to an `n_start` overdraft),
    /// plateaued functions stop early. See `crate::campaign` for the
    /// policy details.
    Bandit,
}

impl SchedulerPolicy {
    /// Stable lowercase label (used by the campaign JSON artifact and the
    /// `--scheduler` CLI flag).
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerPolicy::Fixed => "fixed",
            SchedulerPolicy::Bandit => "bandit",
        }
    }
}

/// A shared cooperative-cancellation flag. Cloning shares the flag;
/// [`cancel`](Self::cancel) makes every search and campaign carrying a
/// clone stop at its next round boundary with
/// [`EpochOutcome::DeadlineExpired`] semantics — partial results are
/// finalized exactly like a wall-clock deadline expiry, nothing leaks.
/// This is how `coverme serve` tears a campaign down when its client
/// disconnects mid-stream.
///
/// Equality is identity: two tokens compare equal when they share the
/// same flag (so configs stay `PartialEq` without comparing the
/// unobservable bool).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; there is no un-cancel.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Prior knowledge a search replays before its first round — the corpus
/// store's warm-start payload (see [`crate::corpus::CorpusStore`]).
///
/// `inputs` are a previous run's representative test inputs for the same
/// function fingerprint: each is re-executed once (one representing-
/// function evaluation apiece, counted in the report and in
/// [`TestReport::warm_replayed`](crate::TestReport::warm_replayed)), and
/// the ones that still run to completion seed coverage, saturation and
/// the accepted-input set. `infeasible` re-seeds prior infeasibility
/// verdicts — revocable exactly like live verdicts: a branch the replay
/// (or any later round or sibling shard) actually covers drops the
/// verdict again.
///
/// A function whose prior inputs still saturate it exits its first
/// `run_rounds` slice after just the replay evaluations. When they don't
/// (some branches end the run uncovered *without* an infeasibility
/// verdict), `prior_coverage` carries the second saving: the recorded
/// run already spent the identical schedule — same program fingerprint,
/// same [search key](CoverMeConfig::search_key) — and exhausted it at
/// that coverage. A search is deterministic in (program, search key), so
/// once the replay reproduces exactly that coverage count, re-running
/// the schedule is guaranteed to rediscover the same result and the
/// search finishes [`EpochOutcome::Exhausted`] by transitivity.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WarmStart {
    /// Representative inputs from a prior run, replayed in order.
    pub inputs: Vec<Vec<f64>>,
    /// Prior infeasibility verdicts, re-seeded (and refutable) on replay.
    pub infeasible: Vec<coverme_runtime::BranchId>,
    /// Covered-branch count at which a prior run *with the same search
    /// key* exhausted this exact schedule, if one is on record. `None`
    /// (the default, and the value for any key mismatch) replays inputs
    /// and verdicts only, never crediting the schedule.
    pub prior_coverage: Option<usize>,
}

impl WarmStart {
    /// Whether there is anything to replay at all.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty() && self.infeasible.is_empty()
    }
}

/// Configuration of a CoverMe run. The defaults reproduce the paper's
/// experimental settings (`n_start = 500`, `n_iter = 5`, `LM = powell`).
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`CoverMeConfig::new`]/[`default`](CoverMeConfig::default) and the
/// builder-style `with_*` methods (every knob has one), so future fields
/// stop being breaking changes for downstream crates.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct CoverMeConfig {
    /// Number of starting points (`n_start`).
    pub n_start: usize,
    /// Number of Monte-Carlo iterations per start (`n_iter`).
    pub n_iter: usize,
    /// Local minimization algorithm (`LM`).
    pub local_method: LocalMethod,
    /// `ε` used by the branch distances.
    pub epsilon: f64,
    /// Distribution of random starting points.
    pub starting_points: StartingPointStrategy,
    /// Distribution of Monte-Carlo perturbations.
    pub perturbation: PerturbationKind,
    /// Master random seed.
    pub seed: u64,
    /// Saturation semantics used by `pen`.
    pub pen_policy: PenPolicy,
    /// Infeasible-branch heuristic.
    pub infeasible_policy: InfeasiblePolicy,
    /// A minimum is accepted as "zero" when `FOO_R(x*) <=` this threshold.
    /// The representing function reaches exactly `0.0` by construction, so
    /// the default is `0.0`.
    pub zero_threshold: f64,
    /// Optional wall-clock budget for the whole run.
    pub time_budget: Option<Duration>,
    /// Optional evaluation allowance. For a standalone run this caps the
    /// search's representing-function evaluations: the search finishes with
    /// [`EpochOutcome::BudgetExhausted`] before starting any round once the
    /// allowance is spent (the last round may overshoot the cap by its own
    /// evaluations — rounds are atomic). For a campaign with the
    /// [`SchedulerPolicy::Bandit`] scheduler, the *base* config's value is
    /// the global budget the bandit allocates across functions. `None`
    /// (the default) means unlimited, bit-identical to earlier releases.
    pub budget: Option<usize>,
    /// Adaptive sync (off by default): gates every cross-shard sync
    /// barrier on tracker [`SaturationTracker::version`] movement — a
    /// barrier where no shard has anything new to publish skips the
    /// exchange entirely (counted in
    /// [`TestReport::barriers_skipped`](crate::TestReport)) — and
    /// *densifies* the epoch windows of a search whose previous exchange
    /// carried new coverage by splitting the next window in two around an
    /// extra gated barrier. Off, the cadence is bit-identical to earlier
    /// releases. See [`crate::sync`].
    pub adaptive_sync: bool,
    /// Campaign scheduling policy (ignored by standalone runs). The
    /// default [`SchedulerPolicy::Fixed`] reproduces earlier releases
    /// bit-for-bit.
    pub scheduler: SchedulerPolicy,
    /// Extension (off by default, not part of the paper's algorithm): also
    /// record the coverage of every intermediate evaluation performed by the
    /// minimizer, not just of the returned minimum points.
    pub record_search_coverage: bool,
    /// Number of shards the `n_start` budget is split across (see
    /// [`crate::shard`]). `0` and `1` both mean unsharded; the merged result
    /// is deterministic for a fixed shard count regardless of scheduling.
    pub shards: usize,
    /// Number of sync epochs a sharded search is cut into (see
    /// [`crate::sync`]). `0` and `1` both mean *off*: every shard runs its
    /// whole strided slice blind and snapshots merge only at the end —
    /// bit-identical to the pre-sync behavior. With `E > 1` the shards
    /// rendezvous at `E - 1` deterministic barriers (keyed on
    /// `(seed, shards, sync_epochs)`, never on scheduling) and exchange
    /// [`SaturationDelta`](crate::saturation::SaturationDelta)s, so each
    /// shard's later rounds stop chasing branches a sibling already
    /// saturated — recovering the sequential run's directed-search
    /// feedback at high shard counts. Ignored when the search is
    /// unsharded.
    pub sync_epochs: usize,
    /// Extension (on by default): when a round's minimum is positive but the
    /// backend clearly converged near a point (e.g. `x* = 1.9999999999997`
    /// for an exact-equality branch), probe a handful of "rounded"
    /// candidates per coordinate and accept one that drives the representing
    /// function to zero. This mitigates the floating-point-inaccuracy
    /// incompleteness the paper's Remark 6.1 describes; the
    /// `ablation_pen_policy` bench measures its effect.
    pub polish: bool,
    /// Memoization policy of the objective engine (see
    /// [`crate::objective::CacheMode`]; the default `Auto` caches only
    /// branch-dense programs, where a hit saves more execution than the
    /// probe costs). The cache is bit-exact — keyed on the input's
    /// `f64::to_bits` patterns and invalidated whenever the saturation
    /// snapshot changes — so search results are identical under every
    /// mode; the knob exists for tuning and for the property tests that
    /// pin that invariant. Forced off under `record_search_coverage`,
    /// which needs every evaluation to really execute.
    pub cache: CacheMode,
    /// Execution backend selection (see
    /// [`BackendMode`](coverme_runtime::BackendMode); the default `Auto`
    /// picks the program's compiled tape when it has one and the
    /// interpreter otherwise). Every mode is bit-exact, so this is purely
    /// a performance knob — the one `--backend` exposes on the CLI.
    pub backend: coverme_runtime::BackendMode,
    /// Forced SIMD ISA for the backend's lane kernels (`None`, the
    /// default, follows the process-wide
    /// [`SimdIsa::active`](coverme_runtime::SimdIsa::active) selection:
    /// `COVERME_SIMD`, then runtime feature detection). Every ISA is
    /// bit-exact — a throughput knob exactly like
    /// [`backend`](Self::backend), and like it excluded from
    /// [`search_key`](Self::search_key).
    pub simd: Option<coverme_runtime::SimdIsa>,
    /// Corpus warm start (off by default): prior inputs and infeasibility
    /// verdicts replayed before the first round (see [`WarmStart`]). With
    /// `None` the search is bit-identical to earlier releases.
    pub warm_start: Option<WarmStart>,
    /// Cooperative cancellation (none by default): when the token fires,
    /// the search stops at its next round boundary with
    /// [`EpochOutcome::DeadlineExpired`] semantics, exactly like a
    /// wall-clock deadline.
    pub cancel: Option<CancelToken>,
}

impl Default for CoverMeConfig {
    fn default() -> Self {
        CoverMeConfig {
            n_start: 500,
            n_iter: 5,
            local_method: LocalMethod::Powell,
            epsilon: DEFAULT_EPSILON,
            starting_points: StartingPointStrategy::default(),
            perturbation: PerturbationKind::default(),
            seed: 0,
            pen_policy: PenPolicy::Saturation,
            infeasible_policy: InfeasiblePolicy::LastConditional,
            zero_threshold: 0.0,
            time_budget: None,
            budget: None,
            adaptive_sync: false,
            scheduler: SchedulerPolicy::Fixed,
            record_search_coverage: false,
            shards: 1,
            sync_epochs: 0,
            polish: true,
            cache: CacheMode::Auto,
            backend: coverme_runtime::BackendMode::Auto,
            simd: None,
            warm_start: None,
            cancel: None,
        }
    }
}

impl CoverMeConfig {
    /// Creates the paper's default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of starting points (`n_start`).
    pub fn n_start(mut self, n_start: usize) -> Self {
        self.n_start = n_start;
        self
    }

    /// Sets the number of Monte-Carlo iterations per start (`n_iter`).
    pub fn n_iter(mut self, n_iter: usize) -> Self {
        self.n_iter = n_iter;
        self
    }

    /// Sets the local minimization method.
    pub fn local_method(mut self, method: LocalMethod) -> Self {
        self.local_method = method;
        self
    }

    /// Sets the branch-distance `ε`.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the starting-point distribution.
    pub fn starting_points(mut self, strategy: StartingPointStrategy) -> Self {
        self.starting_points = strategy;
        self
    }

    /// Sets the Monte-Carlo perturbation distribution.
    pub fn perturbation(mut self, perturbation: PerturbationKind) -> Self {
        self.perturbation = perturbation;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the saturation semantics used by `pen`.
    pub fn pen_policy(mut self, policy: PenPolicy) -> Self {
        self.pen_policy = policy;
        self
    }

    /// Sets the infeasible-branch policy.
    pub fn infeasible_policy(mut self, policy: InfeasiblePolicy) -> Self {
        self.infeasible_policy = policy;
        self
    }

    /// Selects the execution backend (see
    /// [`BackendMode`](coverme_runtime::BackendMode)). Bit-exact under
    /// every mode; `Auto` (the default) prefers the compiled tape.
    pub fn backend(mut self, mode: coverme_runtime::BackendMode) -> Self {
        self.backend = mode;
        self
    }

    /// Forces the SIMD ISA of the backend's lane kernels (bit-exact under
    /// every ISA; see [`CoverMeConfig::simd`]).
    pub fn simd(mut self, isa: coverme_runtime::SimdIsa) -> Self {
        self.simd = Some(isa);
        self
    }

    /// Sets the wall-clock budget.
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Sets the evaluation allowance (see [`CoverMeConfig::budget`]).
    pub fn budget(mut self, evaluations: usize) -> Self {
        self.budget = Some(evaluations);
        self
    }

    /// Enables or disables adaptive sync (see
    /// [`CoverMeConfig::adaptive_sync`]).
    pub fn adaptive_sync(mut self, enabled: bool) -> Self {
        self.adaptive_sync = enabled;
        self
    }

    /// Sets the campaign scheduling policy (see [`SchedulerPolicy`]).
    pub fn scheduler(mut self, policy: SchedulerPolicy) -> Self {
        self.scheduler = policy;
        self
    }

    /// Enables recording coverage of intermediate search evaluations.
    pub fn record_search_coverage(mut self, enabled: bool) -> Self {
        self.record_search_coverage = enabled;
        self
    }

    /// Sets the number of shards the `n_start` budget is split across
    /// (`0` and `1` both mean unsharded).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// The shard count a run of this configuration actually uses: the
    /// requested count, at least 1, and never so many that a shard owns
    /// fewer than [`crate::shard::MIN_ROUNDS_PER_SHARD`] starting points —
    /// splitting finer than that measurably loses coverage to duplicated
    /// easy-branch work (see the constant's docs). A pure function of the
    /// configuration, so determinism per requested shard count is kept.
    pub fn effective_shards(&self) -> usize {
        let widest = (self.n_start / crate::shard::MIN_ROUNDS_PER_SHARD).max(1);
        self.shards.clamp(1, widest)
    }

    /// Sets the number of sync epochs of a sharded search (`0` and `1`
    /// both mean off — no cross-shard exchange before the final merge).
    pub fn sync_epochs(mut self, sync_epochs: usize) -> Self {
        self.sync_epochs = sync_epochs;
        self
    }

    /// The sync-epoch count a run of this configuration actually uses: `1`
    /// (single epoch, no barriers) when sync is off or the search is
    /// unsharded, otherwise the requested count capped so an epoch window
    /// holds at least one round per shard on average. A pure function of
    /// the configuration, so determinism per
    /// `(seed, shards, sync_epochs)` is kept.
    pub fn effective_sync_epochs(&self) -> usize {
        let shards = self.effective_shards();
        if shards <= 1 || self.sync_epochs <= 1 {
            return 1;
        }
        let widest = (self.n_start / shards).max(1);
        self.sync_epochs.min(widest)
    }

    /// Enables or disables the rounding-based polish step applied to
    /// near-miss minima.
    pub fn polish(mut self, enabled: bool) -> Self {
        self.polish = enabled;
        self
    }

    /// Sets the objective engine's memoization policy.
    pub fn cache(mut self, mode: CacheMode) -> Self {
        self.cache = mode;
        self
    }

    // --- the `with_*` builder surface -------------------------------------
    //
    // One `with_*` method per public field (the canonical construction
    // path now that the struct is `#[non_exhaustive]`). The short-named
    // setters above predate this surface and stay as aliases.

    /// Sets the number of starting points (`n_start`).
    pub fn with_n_start(self, n_start: usize) -> Self {
        self.n_start(n_start)
    }

    /// Sets the number of Monte-Carlo iterations per start (`n_iter`).
    pub fn with_n_iter(self, n_iter: usize) -> Self {
        self.n_iter(n_iter)
    }

    /// Sets the local minimization method.
    pub fn with_local_method(self, method: LocalMethod) -> Self {
        self.local_method(method)
    }

    /// Sets the branch-distance `ε`.
    pub fn with_epsilon(self, epsilon: f64) -> Self {
        self.epsilon(epsilon)
    }

    /// Sets the starting-point distribution.
    pub fn with_starting_points(self, strategy: StartingPointStrategy) -> Self {
        self.starting_points(strategy)
    }

    /// Sets the Monte-Carlo perturbation distribution.
    pub fn with_perturbation(self, perturbation: PerturbationKind) -> Self {
        self.perturbation(perturbation)
    }

    /// Sets the master seed.
    pub fn with_seed(self, seed: u64) -> Self {
        self.seed(seed)
    }

    /// Sets the saturation semantics used by `pen`.
    pub fn with_pen_policy(self, policy: PenPolicy) -> Self {
        self.pen_policy(policy)
    }

    /// Sets the infeasible-branch policy.
    pub fn with_infeasible_policy(self, policy: InfeasiblePolicy) -> Self {
        self.infeasible_policy(policy)
    }

    /// Sets the zero-acceptance threshold (`FOO_R(x*) <=` this is "zero").
    pub fn with_zero_threshold(mut self, threshold: f64) -> Self {
        self.zero_threshold = threshold;
        self
    }

    /// Sets the wall-clock budget.
    pub fn with_time_budget(self, budget: Duration) -> Self {
        self.time_budget(budget)
    }

    /// Sets the evaluation allowance (see [`CoverMeConfig::budget`]).
    pub fn with_budget(self, evaluations: usize) -> Self {
        self.budget(evaluations)
    }

    /// Enables or disables adaptive sync.
    pub fn with_adaptive_sync(self, enabled: bool) -> Self {
        self.adaptive_sync(enabled)
    }

    /// Sets the campaign scheduling policy.
    pub fn with_scheduler(self, policy: SchedulerPolicy) -> Self {
        self.scheduler(policy)
    }

    /// Enables recording coverage of intermediate search evaluations.
    pub fn with_record_search_coverage(self, enabled: bool) -> Self {
        self.record_search_coverage(enabled)
    }

    /// Sets the shard count.
    pub fn with_shards(self, shards: usize) -> Self {
        self.shards(shards)
    }

    /// Sets the sync-epoch count.
    pub fn with_sync_epochs(self, sync_epochs: usize) -> Self {
        self.sync_epochs(sync_epochs)
    }

    /// Enables or disables the rounding-based polish step.
    pub fn with_polish(self, enabled: bool) -> Self {
        self.polish(enabled)
    }

    /// Sets the objective engine's memoization policy.
    pub fn with_cache(self, mode: CacheMode) -> Self {
        self.cache(mode)
    }

    /// Selects the execution backend.
    pub fn with_backend(self, mode: coverme_runtime::BackendMode) -> Self {
        self.backend(mode)
    }

    /// Forces the SIMD ISA of the backend's lane kernels.
    pub fn with_simd(self, isa: coverme_runtime::SimdIsa) -> Self {
        self.simd(isa)
    }

    /// Attaches a corpus warm start (see [`WarmStart`]): prior inputs and
    /// infeasibility verdicts replayed before the first round.
    pub fn with_warm_start(mut self, warm: WarmStart) -> Self {
        self.warm_start = Some(warm);
        self
    }

    /// Attaches a cooperative-cancellation token (see [`CancelToken`]).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Hash of every knob that determines a search's *results* — the
    /// schedule and its processing: `seed`, `n_start`, `n_iter`, the
    /// local method, sampling strategies (with their parameters, by bit
    /// pattern), `ε`, the zero threshold, the pen/infeasible policies,
    /// `polish`, `record_search_coverage`, the eval allowance and the
    /// shard/sync split. Knobs pinned result-invisible by the property
    /// suites stay out: `cache`, `backend`, `simd` (every ISA's kernels
    /// are bit-identical), `adaptive_sync`, epoch slicing, `time_budget`
    /// (wall-clock never decides a *complete* run's content),
    /// `warm_start`/`cancel` themselves.
    ///
    /// Two runs of the same program fingerprint with equal search keys
    /// are bit-identical, which is what lets a corpus warm start credit
    /// a recorded run's exhausted schedule (see
    /// [`WarmStart::prior_coverage`]).
    pub fn search_key(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                hash = (hash ^ u64::from(byte)).wrapping_mul(PRIME);
            }
        };
        mix(self.seed);
        mix(self.n_start as u64);
        mix(self.n_iter as u64);
        mix(match self.local_method {
            LocalMethod::Powell => 0,
            LocalMethod::NelderMead => 1,
            LocalMethod::Compass => 2,
            LocalMethod::None => 3,
        });
        mix(self.epsilon.to_bits());
        match self.starting_points {
            StartingPointStrategy::UniformBox { lo, hi } => {
                mix(0);
                mix(lo.to_bits());
                mix(hi.to_bits());
            }
            StartingPointStrategy::Gaussian { scale } => {
                mix(1);
                mix(scale.to_bits());
            }
            StartingPointStrategy::BitPattern => mix(2),
            StartingPointStrategy::Origin => mix(3),
        }
        match self.perturbation {
            PerturbationKind::Gaussian { stddev } => {
                mix(4);
                mix(stddev.to_bits());
            }
            PerturbationKind::Uniform { half_width } => {
                mix(5);
                mix(half_width.to_bits());
            }
            PerturbationKind::HeavyTailed { scale } => {
                mix(6);
                mix(scale.to_bits());
            }
        }
        mix(match self.pen_policy {
            PenPolicy::Saturation => 0,
            PenPolicy::CoveredOnly => 1,
        });
        mix(match self.infeasible_policy {
            InfeasiblePolicy::LastConditional => 0,
            InfeasiblePolicy::Generalized => 1,
            InfeasiblePolicy::Disabled => 2,
        });
        mix(self.zero_threshold.to_bits());
        mix(match self.budget {
            None => u64::MAX,
            Some(allowance) => allowance as u64,
        });
        mix(u64::from(self.polish));
        mix(u64::from(self.record_search_coverage));
        mix(self.shards.max(1) as u64);
        mix(self.sync_epochs as u64);
        hash
    }
}

/// The CoverMe tester.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CoverMe {
    config: CoverMeConfig,
}

impl CoverMe {
    /// Creates a tester with the given configuration.
    pub fn new(config: CoverMeConfig) -> CoverMe {
        CoverMe { config }
    }

    /// Creates a tester with the paper's default configuration.
    pub fn with_defaults() -> CoverMe {
        CoverMe::default()
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoverMeConfig {
        &self.config
    }

    /// Runs branch coverage-based testing on `program` (Algorithm 1).
    ///
    /// With `shards > 1` the shard searches run sequentially on the calling
    /// thread and their snapshots are merged ([`crate::shard`]); the merged
    /// report is identical to what [`run_parallel`](Self::run_parallel)
    /// produces, just without the wall-clock speedup.
    pub fn run<P: Program>(&self, program: &P) -> TestReport {
        let shards = self.config.effective_shards();
        let config = CoverMeConfig {
            shards,
            ..self.config.clone()
        };
        if shards == 1 {
            return run_shard(&config, program, 0).into_report(program.name());
        }
        if config.effective_sync_epochs() > 1 {
            let outcomes = crate::sync::run_shards_synced(&config, program);
            return merge_shards(program.name(), outcomes).report;
        }
        let outcomes: Vec<ShardOutcome> = (0..shards)
            .map(|index| run_shard(&config, program, index))
            .collect();
        merge_shards(program.name(), outcomes).report
    }

    /// Runs branch coverage-based testing with the configured shards fanned
    /// across scoped worker threads (one thread per shard).
    ///
    /// The merged report is bitwise-identical to [`run`](Self::run) with the
    /// same configuration — the shard snapshots are deterministic and the
    /// merge is ordered by shard index — but the wall-clock time approaches
    /// the slowest single shard. With `shards <= 1` this is exactly `run`.
    pub fn run_parallel<P: Program + Sync>(&self, program: &P) -> TestReport {
        let shards = self.config.effective_shards();
        if shards == 1 {
            return self.run(program);
        }
        let config = CoverMeConfig {
            shards,
            ..self.config.clone()
        };
        if config.effective_sync_epochs() > 1 {
            let outcomes = crate::sync::run_shards_synced_parallel(&config, program);
            return merge_shards(program.name(), outcomes).report;
        }
        let config = &config;
        let outcomes: Vec<ShardOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|index| scope.spawn(move || run_shard(config, program, index)))
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("shard worker panicked"))
                .collect()
        });
        merge_shards(program.name(), outcomes).report
    }
}

/// Why a [`SearchState::run_rounds`] slice stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochOutcome {
    /// The round quota of this slice is spent; the search has more rounds
    /// to run and can be resumed with another `run_rounds` call.
    Paused,
    /// Every branch is saturated (possibly thanks to absorbed sibling
    /// deltas); the search is finished.
    Saturated,
    /// The shard's strided slice of the starting-point schedule is
    /// exhausted; the search is finished.
    Exhausted,
    /// The configured wall-clock budget ran out mid-slice; the search is
    /// finished and the state holds everything completed so far.
    DeadlineExpired,
    /// The evaluation allowance ([`CoverMeConfig::budget`]) is spent; the
    /// search is finished *unless* a scheduler raises the allowance with
    /// [`SearchState::extend_budget`], which clears exactly this outcome
    /// and makes the state resumable again — the pause point the bandit
    /// campaign scheduler reallocates at.
    BudgetExhausted,
    /// Too many consecutive rounds aborted — the program kept timing out or
    /// trapping on every minimum the backend returned (see
    /// [`crate::report::RoundOutcome::Aborted`]) — so the search gave up
    /// rather than burn the remaining budget on evaluations that can never
    /// feed coverage. The state holds everything completed so far; a
    /// campaign marks the function `partial`.
    Degraded,
}

impl EpochOutcome {
    /// Whether the search can still make progress (`Paused`) or is done.
    pub fn is_finished(&self) -> bool {
        *self != EpochOutcome::Paused
    }
}

/// The epoch-resumable search loop of Algorithm 1 — the per-round body of
/// the sequential driver extracted into a state machine that can pause at
/// any round boundary and resume later with no behavior change.
///
/// A `SearchState` owns everything one shard's search needs: its
/// [`ObjectiveEngine`] (scalar fast path, lane backend, memo cache), the
/// regenerated starting-point schedule (the shard's RNG stream — per-round
/// minimizer seeds are derived from the global round index, never from
/// scheduling), its [`SaturationTracker`], coverage, accepted inputs and
/// round records. [`run_rounds(n)`](Self::run_rounds) executes up to `n`
/// rounds of the shard's strided slice and reports why it stopped; running
/// a state to exhaustion in one call is bit-identical to running it in
/// any sequence of smaller slices (pinned by
/// `tests/sync_properties.rs`), which is what makes epochs free:
/// the sync barriers of [`crate::sync`] and the campaign's epoch
/// scheduler are pure pause points.
///
/// Between slices a state can exchange saturation knowledge with sibling
/// shards: [`extract_delta`](Self::extract_delta) publishes its tracker
/// state, [`absorb_delta`](Self::absorb_delta) merges a sibling's. The
/// next round's `retarget` then minimizes against the unioned snapshot,
/// so the shard stops chasing branches a sibling already saturated —
/// and exits entirely once the union saturates everything.
#[derive(Debug)]
pub struct SearchState<'a, P: Program> {
    config: CoverMeConfig,
    program: &'a P,
    shard_index: usize,
    shards: usize,
    engine: ObjectiveEngine<&'a P>,
    tracker: SaturationTracker,
    coverage: CoverageMap,
    accepted: Vec<AcceptedInput>,
    rounds: Vec<RoundRecord>,
    /// The full starting-point schedule, regenerated identically by every
    /// shard from the function seed (see [`crate::shard`] module docs).
    schedule: Vec<Vec<f64>>,
    /// Next global round index this shard will run (always ≡ `shard_index`
    /// mod `shards`).
    cursor: usize,
    evaluations: usize,
    epochs: Vec<EpochTelemetry>,
    /// Deltas absorbed since the previous `run_rounds` slice, credited to
    /// the next slice's telemetry entry.
    pending_absorbed: usize,
    started: Instant,
    /// Set once, when a slice first reports a finished outcome.
    finished_at: Option<Instant>,
    /// The finished outcome, repeated by later `run_rounds` calls.
    finished: Option<EpochOutcome>,
    /// Consecutive rounds whose final evaluation aborted (reset by any
    /// round that runs to completion); at [`ABORT_PATIENCE`] the search
    /// finishes with [`EpochOutcome::Degraded`].
    abort_streak: usize,
    /// Sync barriers crossed without an exchange under the adaptive gate
    /// (see [`CoverMeConfig::adaptive_sync`]).
    barriers_skipped: usize,
    /// Whether a configured warm start is still waiting to be replayed
    /// (consumed at the top of the first `run_rounds` slice, so replay
    /// evaluations land in that slice's epoch telemetry).
    warm_pending: bool,
    /// Corpus inputs replayed by the warm start (0 for a cold search).
    warm_replayed: usize,
    /// Set when the warm replay reproduced exactly the coverage at which
    /// a prior run with the same search key exhausted this identical
    /// schedule ([`WarmStart::prior_coverage`]); the next `run_rounds`
    /// slice then finishes [`EpochOutcome::Exhausted`] without re-running
    /// the schedule — determinism guarantees it would only rediscover the
    /// recorded result.
    warm_satisfied: bool,
}

/// How many consecutive aborted rounds a search tolerates before degrading.
/// Aborted rounds record nothing — no input, no saturation update, no
/// infeasible blame — so a program that aborts on *every* returned minimum
/// (e.g. an unconditionally looping body) would otherwise burn the whole
/// `n_start` budget discovering the same timeout `n_iter`-fold per round.
/// A few in a row are tolerated because abort regions can be input-dependent
/// and later starting points may land outside them.
pub const ABORT_PATIENCE: usize = 4;

impl<'a, P: Program> SearchState<'a, P> {
    /// Creates the search state for shard `shard_index` of a search
    /// configured for `config.shards` shards (`<= 1` means unsharded).
    /// The wall-clock budget, if any, starts counting here.
    ///
    /// # Panics
    ///
    /// Panics if the program takes no inputs or `shard_index` is out of
    /// range for the configured shard count.
    pub fn new(config: &CoverMeConfig, program: &'a P, shard_index: usize) -> SearchState<'a, P> {
        let shards = config.shards.max(1);
        assert!(
            shard_index < shards,
            "shard index {shard_index} out of range for {shards} shards"
        );
        let num_sites = program.num_sites();
        let arity = program.arity();
        assert!(arity > 0, "program under test must take at least one input");

        let tracker = match config.pen_policy {
            PenPolicy::Saturation => SaturationTracker::new(num_sites),
            PenPolicy::CoveredOnly => SaturationTracker::new(num_sites).covered_only(),
        };
        // Under `record_search_coverage` the cache is forced off: that
        // extension records the coverage of every intermediate evaluation,
        // and the engine evaluates through the full path per call anyway.
        let cache_mode = if config.record_search_coverage {
            CacheMode::Off
        } else {
            config.cache
        };
        let mut engine = ObjectiveEngine::new(program, config.epsilon)
            .cache_mode(cache_mode)
            .backend_mode(config.backend);
        if let Some(isa) = config.simd {
            engine = engine.simd(isa);
        }
        let mut start_rng = SplitMix64::new(config.seed ^ 0x5EED_0001);
        let schedule = config
            .starting_points
            .sample_batch(&mut start_rng, arity, config.n_start);

        SearchState {
            config: config.clone(),
            program,
            shard_index,
            shards,
            engine,
            tracker,
            coverage: CoverageMap::new(num_sites),
            accepted: Vec::new(),
            rounds: Vec::new(),
            schedule,
            cursor: shard_index,
            evaluations: 0,
            epochs: Vec::new(),
            pending_absorbed: 0,
            started: Instant::now(),
            finished_at: None,
            finished: None,
            abort_streak: 0,
            barriers_skipped: 0,
            warm_pending: config.warm_start.as_ref().is_some_and(|w| !w.is_empty()),
            warm_replayed: 0,
            warm_satisfied: false,
        }
    }

    /// Which shard this state searches for.
    pub fn shard_index(&self) -> usize {
        self.shard_index
    }

    /// The next global round index the state would run, or `None` when the
    /// strided slice is exhausted.
    pub fn next_round(&self) -> Option<usize> {
        (self.cursor < self.config.n_start).then_some(self.cursor)
    }

    /// Whether a previous slice already reported a finished outcome.
    pub fn is_finished(&self) -> bool {
        self.finished.is_some()
    }

    /// The finished outcome, once a slice reported one (`None` while the
    /// search can still run). [`EpochOutcome::DeadlineExpired`] here is
    /// what marks a campaign row `partial`.
    pub fn outcome(&self) -> Option<EpochOutcome> {
        self.finished
    }

    /// Rounds executed so far.
    pub fn rounds_run(&self) -> usize {
        self.rounds.len()
    }

    /// Representing-function evaluations spent so far.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// The per-round records produced so far, in execution order — lets a
    /// caller driving the state slice by slice (e.g. a streaming CLI)
    /// report each round as it lands.
    pub fn rounds(&self) -> &[RoundRecord] {
        &self.rounds
    }

    /// The state's saturation tracker (covered, descendants, infeasible).
    pub fn tracker(&self) -> &SaturationTracker {
        &self.tracker
    }

    /// Publishes the state's saturation knowledge for sibling shards (see
    /// [`SaturationDelta`]).
    pub fn extract_delta(&self) -> SaturationDelta {
        self.tracker.delta()
    }

    /// Merges a sibling shard's published saturation knowledge into this
    /// state. The next round's snapshot is the union, and the engine's
    /// memo cache invalidates itself on the changed snapshot (a retarget
    /// epoch bump), so no stale value survives. Returns whether the
    /// tracker changed.
    pub fn absorb_delta(&mut self, delta: &SaturationDelta) -> bool {
        self.pending_absorbed += 1;
        self.tracker.apply_delta(delta)
    }

    /// Records that the adaptive gate skipped the exchange at a sync
    /// barrier this state was parked at (telemetry only; see
    /// [`CoverMeConfig::adaptive_sync`]).
    pub fn note_barrier_skipped(&mut self) {
        self.barriers_skipped += 1;
    }

    /// Raises the evaluation allowance by `extra` evaluations and, when the
    /// state had finished with [`EpochOutcome::BudgetExhausted`], clears
    /// that outcome so the search resumes on the next `run_rounds` call.
    /// Other finished outcomes (saturated, exhausted, degraded, deadline)
    /// are final and stay untouched. A state created without an allowance
    /// gains one equal to its spend so far plus `extra`. A grant always
    /// buys at least `extra` further evaluations: rounds are atomic, so a
    /// final round may have overshot the old allowance — that overshoot is
    /// forgiven rather than silently consuming the new grant (a bandit
    /// grant must never pause again after zero work).
    pub fn extend_budget(&mut self, extra: usize) {
        let base = self
            .config
            .budget
            .unwrap_or(self.evaluations)
            .max(self.evaluations);
        self.config.budget = Some(base.saturating_add(extra));
        if self.finished == Some(EpochOutcome::BudgetExhausted) {
            self.finished = None;
            self.finished_at = None;
        }
    }

    /// Runs the search to completion in one slice — the sequential driver
    /// loop of Algorithm 1, restricted to the shard's strided slice.
    pub fn run_to_exhaustion(&mut self) -> EpochOutcome {
        self.run_rounds(usize::MAX)
    }

    /// Runs up to `max_rounds` rounds of the shard's strided slice and
    /// reports why the slice stopped. Pausable at any round boundary with
    /// no behavior change: the rounds executed, their records, inputs and
    /// evaluation counts are bit-identical however the schedule is cut
    /// into slices. Calling after the search finished re-reports the
    /// finished outcome without doing work.
    pub fn run_rounds(&mut self, max_rounds: usize) -> EpochOutcome {
        if let Some(outcome) = self.finished {
            return outcome;
        }
        let evals_before = self.evaluations;
        if self.warm_pending {
            // Replay inside the slice (not in `new`) so the replayed
            // evaluations land in this slice's epoch telemetry — the sync
            // suite pins `sum(epochs.evaluations) == evaluations`.
            self.warm_pending = false;
            self.replay_warm_start();
        }
        let mut ran = 0usize;
        let outcome = loop {
            if self.cursor >= self.config.n_start {
                break self.finish_slice(EpochOutcome::Exhausted);
            }
            if self.tracker.all_saturated() {
                break self.finish_slice(EpochOutcome::Saturated);
            }
            if self.warm_satisfied {
                // The warm replay reproduced the coverage at which a prior
                // run with the same search key exhausted this schedule: the
                // remaining rounds are already spent by transitivity.
                break self.finish_slice(EpochOutcome::Exhausted);
            }
            if self
                .config
                .cancel
                .as_ref()
                .is_some_and(CancelToken::is_cancelled)
            {
                // Cooperative teardown: identical semantics to a deadline
                // expiry — everything completed so far is kept, a campaign
                // marks the function `partial`.
                break self.finish_slice(EpochOutcome::DeadlineExpired);
            }
            if let Some(allowance) = self.config.budget {
                // Checked before each round: rounds are atomic, so the
                // final round of an allowance may overshoot it by its own
                // evaluations.
                if self.evaluations >= allowance {
                    break self.finish_slice(EpochOutcome::BudgetExhausted);
                }
            }
            if self.abort_streak >= ABORT_PATIENCE {
                break self.finish_slice(EpochOutcome::Degraded);
            }
            if let Some(budget) = self.config.time_budget {
                if self.started.elapsed() >= budget {
                    break self.finish_slice(EpochOutcome::DeadlineExpired);
                }
            }
            if ran == max_rounds {
                break EpochOutcome::Paused;
            }
            self.run_one_round();
            ran += 1;
        };
        let absorbed = std::mem::take(&mut self.pending_absorbed);
        if ran > 0 || absorbed > 0 || self.epochs.is_empty() {
            self.epochs.push(EpochTelemetry {
                epoch: self.epochs.len(),
                rounds: ran,
                evaluations: self.evaluations - evals_before,
                deltas_absorbed: absorbed,
            });
        }
        outcome
    }

    /// Marks the search finished with `outcome` (idempotent timestamps).
    fn finish_slice(&mut self, outcome: EpochOutcome) -> EpochOutcome {
        self.finished = Some(outcome);
        self.finished_at = Some(Instant::now());
        outcome
    }

    /// Replays the configured [`WarmStart`] — the corpus store's prior
    /// winners and verdicts — through the exact accept path of
    /// [`run_one_round`](Self::run_one_round):
    ///
    /// * each prior input is re-executed once through the engine (counted
    ///   as a normal evaluation); if it still runs to completion its
    ///   coverage and trace seed the maps, and inputs that cover something
    ///   new are accepted as round-0 test inputs (replays in recorded
    ///   order, so a prior run's representative set re-selects itself);
    /// * prior infeasibility verdicts are re-seeded afterwards, skipping
    ///   any branch the replay just covered — verdicts stay refutable by
    ///   real coverage exactly like live ones;
    /// * when the entry carries a same-key exhaustion record
    ///   ([`WarmStart::prior_coverage`]) and the replay reproduced exactly
    ///   that coverage, the schedule is credited as spent and the search
    ///   finishes without re-running it.
    ///
    /// Inputs of the wrong arity (a stale entry after a fingerprint
    /// collision) are skipped, as are verdicts out of the site range.
    fn replay_warm_start(&mut self) {
        let Some(warm) = self.config.warm_start.clone() else {
            return;
        };
        let snapshot = self.tracker.saturated_set();
        self.engine.retarget(&snapshot);
        let arity = self.program.arity();
        for input in &warm.inputs {
            if input.len() != arity {
                continue;
            }
            let evaluation = self.engine.eval_full(input);
            self.evaluations += 1;
            self.warm_replayed += 1;
            if evaluation.outcome.is_done() {
                let newly_covered = self.coverage.record_set(&evaluation.covered);
                self.tracker.record_trace(&evaluation.trace);
                if newly_covered > 0 {
                    self.accepted.push(AcceptedInput {
                        round: 0,
                        input: input.clone(),
                        covered: evaluation.covered.clone(),
                    });
                }
            }
        }
        let num_branches = self.program.num_sites() * 2;
        for &branch in &warm.infeasible {
            if branch.index() < num_branches
                && !self.tracker.covered().contains(branch)
                && !self.tracker.infeasible().contains(branch)
            {
                self.tracker.mark_infeasible(branch);
            }
        }
        // Schedule credit: the replay landed exactly where a same-key run
        // exhausted this schedule, so the remaining rounds would only
        // rediscover the recorded result (searches are deterministic in
        // (program, search key)). Anything else — more coverage, less, a
        // flaky execution — falls through to a full live run.
        if warm.prior_coverage == Some(self.coverage.covered_count()) {
            self.warm_satisfied = true;
        }
    }

    /// Corpus inputs the warm start replayed (0 for a cold search).
    pub fn warm_replayed(&self) -> usize {
        self.warm_replayed
    }

    /// One iteration of the outer loop of Algorithm 1 (lines 9–12): take
    /// the shard's next starting point, minimize the representing function
    /// against the current snapshot, and either accept the zero as a test
    /// input or apply the infeasible-branch heuristic.
    fn run_one_round(&mut self) {
        let round = self.cursor;
        self.cursor += self.shards;

        // Line 9: the starting point this shard owns for this global round.
        let x0 = self.schedule[round].clone();

        // Step 2: the representing function against the current snapshot —
        // the engine swaps it in place (and keeps its cache when the
        // snapshot is unchanged since the previous round).
        let snapshot = self.tracker.saturated_set();
        let saturated_before = snapshot.len();
        self.engine.retarget(&snapshot);

        // Line 10: x* = MCMC(FOO_R, x), seeded by the *global* round index
        // so the per-round minimizer stream matches the sequential driver.
        let config = &self.config;
        let hopper = BasinHopping::new()
            .iterations(config.n_iter)
            .local_method(config.local_method)
            .perturbation(config.perturbation)
            .temperature(1.0)
            .seed(
                config
                    .seed
                    .wrapping_add(round as u64)
                    .wrapping_mul(0x9E37_79B9),
            )
            .target_value(config.zero_threshold);

        let result = if config.record_search_coverage {
            let engine = &mut self.engine;
            let coverage = &mut self.coverage;
            let tracker = &mut self.tracker;
            let mut objective = FnObjective(move |x: &[f64]| {
                let evaluation = engine.eval_full(x);
                // An aborted evaluation's coverage and trace come from a
                // truncated execution — record nothing from it.
                if evaluation.outcome.is_done() {
                    coverage.record_set(&evaluation.covered);
                    tracker.record_trace(&evaluation.trace);
                }
                evaluation.value
            });
            hopper.minimize_objective(&mut objective, &x0)
        } else {
            hopper.minimize_objective(&mut self.engine, &x0)
        };
        self.evaluations += result.stats.evaluations;

        // Line 11-12: accept the minimum point if FOO_R(x*) = 0, update
        // Saturate; otherwise apply the infeasible-branch heuristic.
        let mut minimum_point = result.x.clone();
        let mut evaluation = self.engine.eval_full(&minimum_point);
        self.evaluations += 1;
        if self.config.polish && evaluation.value > self.config.zero_threshold {
            if let Some((polished, polished_eval, polish_evals)) =
                polish_minimum(&mut self.engine, &minimum_point, self.config.zero_threshold)
            {
                minimum_point = polished;
                evaluation = polished_eval;
                self.evaluations += polish_evals;
            }
        }
        let outcome = if !evaluation.outcome.is_done() {
            // The final execution never completed: its value is the abort
            // sentinel and its coverage/trace are garbage. Record nothing —
            // in particular do not blame a branch as infeasible off a
            // truncated trace.
            self.abort_streak += 1;
            RoundOutcome::Aborted
        } else if evaluation.value <= self.config.zero_threshold {
            self.abort_streak = 0;
            let newly_covered = self.coverage.record_set(&evaluation.covered);
            self.tracker.record_trace(&evaluation.trace);
            self.accepted.push(AcceptedInput {
                round,
                input: minimum_point.clone(),
                covered: evaluation.covered.clone(),
            });
            if newly_covered > 0 {
                RoundOutcome::NewInput
            } else {
                RoundOutcome::RedundantInput
            }
        } else {
            self.abort_streak = 0;
            match self.config.infeasible_policy {
                InfeasiblePolicy::LastConditional => {
                    if let Some(last) = evaluation.trace.last() {
                        let blamed = last.untaken_branch();
                        self.tracker.mark_infeasible(blamed);
                        RoundOutcome::DeemedInfeasible(blamed)
                    } else {
                        RoundOutcome::NoProgress
                    }
                }
                InfeasiblePolicy::Generalized => {
                    // Two-stage escalation. A first failure on a path only
                    // indicts the classic anchor: the representing value is
                    // the distance of the *last* live conditional, so
                    // earlier siblings were never what the minimizer was
                    // stuck on. When a path fails again with its anchor
                    // already written off (covered or previously blamed),
                    // the blocker must sit upstream — blame every still
                    // uncovered untaken sibling along the path, each
                    // refutable by real coverage at the next merge.
                    if let Some(last) = evaluation.trace.last() {
                        let anchor = last.untaken_branch();
                        if self.tracker.covered().contains(anchor)
                            || self.tracker.infeasible().contains(anchor)
                        {
                            let blamed = self.tracker.blame_uncovered_path(&evaluation.trace);
                            RoundOutcome::DeemedInfeasiblePath(anchor, blamed.len())
                        } else {
                            self.tracker.mark_infeasible(anchor);
                            RoundOutcome::DeemedInfeasible(anchor)
                        }
                    } else {
                        RoundOutcome::NoProgress
                    }
                }
                InfeasiblePolicy::Disabled => RoundOutcome::NoProgress,
            }
        };

        self.rounds.push(RoundRecord {
            round,
            start: x0,
            minimum: minimum_point,
            value: evaluation.value,
            evaluations: result.stats.evaluations,
            saturated_before,
            outcome,
        });
    }

    /// Consumes the state into the shard's snapshot. Valid at any point —
    /// a state finalized mid-search (e.g. when a campaign deadline
    /// expired while it was parked at an epoch boundary) yields the
    /// partial outcome of everything completed so far.
    pub fn finish(self) -> ShardOutcome {
        let finished = self.finished_at.unwrap_or_else(Instant::now);
        ShardOutcome {
            shard_index: self.shard_index,
            shards: self.shards,
            tracker: self.tracker,
            coverage: self.coverage,
            accepted: self.accepted,
            rounds: self.rounds,
            evaluations: self.evaluations,
            cache_hits: self.engine.telemetry().cache_hits as usize,
            timeouts: self.engine.telemetry().timeouts as usize,
            traps: self.engine.telemetry().traps as usize,
            epochs: self.epochs,
            barriers_skipped: self.barriers_skipped,
            warm_replayed: self.warm_replayed,
            backend: self.engine.backend_name(),
            simd_isa: self.engine.simd_isa().label(),
            lane_width: self.engine.lane_width(),
            started: self.started,
            finished,
        }
    }

    /// The program this state searches.
    pub fn program(&self) -> &'a P {
        self.program
    }
}

/// Probes "rounded" variants of a near-miss minimum point, one coordinate at
/// a time, looking for an exact zero of the representing function.
///
/// Unconstrained minimizers converge to `x*` only up to a tolerance, which is
/// not enough when the target branch needs an *exact* floating-point equality
/// (e.g. `y == 4` is only reached at `x = 2`, not at `x = 2 + 1e-12`). The
/// candidates tried here are the natural "intended" values a numeric method
/// narrowly missed: integers, halves, tenths, and a few ULP neighbours.
///
/// Returns the polished point, its evaluation and the number of extra
/// representing-function evaluations, or `None` if no candidate reached the
/// threshold. Candidate probes run through the engine's scalar fast path —
/// the re-probe of the incumbent (and any repeated rounded candidate) is a
/// cache hit.
fn polish_minimum<P: Program>(
    engine: &mut ObjectiveEngine<P>,
    x: &[f64],
    threshold: f64,
) -> Option<(Vec<f64>, crate::representing::Evaluation, usize)> {
    let mut best = x.to_vec();
    let mut best_value = engine.eval_scalar(&best);
    let mut evaluations = 1usize;

    for coord in 0..best.len() {
        let original = best[coord];
        for candidate in candidate_values(original) {
            if candidate == best[coord] {
                continue;
            }
            let mut trial = best.clone();
            trial[coord] = candidate;
            let value = engine.eval_scalar(&trial);
            evaluations += 1;
            if value < best_value {
                best_value = value;
                best = trial;
                if best_value <= threshold {
                    let evaluation = engine.eval_full(&best);
                    evaluations += 1;
                    return Some((best, evaluation, evaluations));
                }
            }
        }
    }

    if best_value <= threshold {
        let evaluation = engine.eval_full(&best);
        evaluations += 1;
        Some((best, evaluation, evaluations))
    } else {
        None
    }
}

/// Candidate replacement values for one coordinate of a near-miss minimum.
fn candidate_values(x: f64) -> Vec<f64> {
    if !x.is_finite() {
        return vec![0.0];
    }
    let mut candidates = vec![
        x.round(),
        x.floor(),
        x.ceil(),
        (x * 2.0).round() / 2.0,
        (x * 10.0).round() / 10.0,
        (x * 100.0).round() / 100.0,
        0.0,
    ];
    // A few ULP neighbours in both directions.
    let mut up = x;
    let mut down = x;
    for _ in 0..3 {
        up = next_up(up);
        down = next_down(down);
        candidates.push(up);
        candidates.push(down);
    }
    candidates.dedup();
    candidates
}

fn next_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    let bits = if x == 0.0 {
        1
    } else if x > 0.0 {
        x.to_bits() + 1
    } else {
        x.to_bits() - 1
    };
    f64::from_bits(bits)
}

fn next_down(x: f64) -> f64 {
    if x.is_nan() || x == f64::NEG_INFINITY {
        return x;
    }
    if x == 0.0 {
        return -f64::from_bits(1);
    }
    let bits = if x > 0.0 {
        x.to_bits() - 1
    } else {
        x.to_bits() + 1
    };
    f64::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverme_runtime::{BranchId, Cmp, CoverageMap, ExecCtx, FnProgram};

    /// The paper's Fig. 3 example program.
    fn paper_example() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
        FnProgram::new("FOO", 1, 2, |input: &[f64], ctx: &mut ExecCtx| {
            let mut x = input[0];
            if ctx.branch(0, Cmp::Le, x, 1.0) {
                x += 2.5;
            }
            let y = x * x;
            if ctx.branch(1, Cmp::Eq, y, 4.0) {
                // target
            }
        })
    }

    /// The modified example of Sect. 5.3 with the infeasible branch
    /// `y == -1` (y is a square, so it can never be -1).
    fn infeasible_example() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
        FnProgram::new("FOO_INF", 1, 2, |input: &[f64], ctx: &mut ExecCtx| {
            let mut x = input[0];
            if ctx.branch(0, Cmp::Le, x, 1.0) {
                x += 1.0;
            }
            let y = x * x;
            if ctx.branch(1, Cmp::Eq, y, -1.0) {
                // unreachable
            }
        })
    }

    fn quick_config() -> CoverMeConfig {
        CoverMeConfig::default().n_start(60).n_iter(5).seed(42)
    }

    #[test]
    fn saturates_the_paper_example_fully() {
        let report = CoverMe::new(quick_config()).run(&paper_example());
        assert_eq!(report.branch_coverage_percent(), 100.0, "{report}");
        assert!(report.is_fully_covered());
        assert!(!report.inputs.is_empty());
        // The hard branch 1T (y == 4) requires x in {-4.5, -0.5, 2}.
        assert!(report.coverage.is_covered(BranchId::true_of(1)));
    }

    #[test]
    fn generated_inputs_reproduce_the_reported_coverage() {
        // Re-run the program on the generated inputs only, with a fresh
        // coverage map: it must reproduce the coverage the report claims,
        // because the report's coverage is defined over X.
        let program = paper_example();
        let report = CoverMe::new(quick_config()).run(&program);
        let mut check = CoverageMap::new(program.num_sites());
        for input in &report.inputs {
            let mut ctx = ExecCtx::observe();
            program.execute(input, &mut ctx);
            check.record(&ctx);
        }
        assert_eq!(check.covered_count(), report.coverage.covered_count());
    }

    #[test]
    fn detects_the_infeasible_branch_and_terminates() {
        let report = CoverMe::new(quick_config()).run(&infeasible_example());
        // 3 of 4 branches are feasible and should be covered.
        assert_eq!(report.coverage.covered_count(), 3, "{report}");
        // The infeasible branch is 1T (y == -1).
        assert!(report.infeasible.contains(&BranchId::true_of(1)));
        // Crucially the driver stopped long before exhausting n_start.
        assert!(report.rounds.len() < 60);
    }

    #[test]
    fn early_termination_when_everything_saturates() {
        let report = CoverMe::new(quick_config()).run(&paper_example());
        assert!(
            report.rounds.len() <= 10,
            "took {} rounds for a 2-conditional program",
            report.rounds.len()
        );
    }

    #[test]
    fn deterministic_given_a_seed() {
        let a = CoverMe::new(quick_config()).run(&paper_example());
        let b = CoverMe::new(quick_config()).run(&paper_example());
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.coverage.covered_count(), b.coverage.covered_count());
    }

    #[test]
    fn search_key_ignores_the_simd_isa() {
        // Every ISA computes bit-identical results, so a forced lane width
        // must not fragment the corpus: the schedule identity is the same
        // with and without the knob, and the same across ISAs.
        let base = quick_config();
        for isa in coverme_runtime::SimdIsa::supported() {
            assert_eq!(
                base.clone().with_simd(isa).search_key(),
                base.search_key(),
                "forcing {isa} changed the search key"
            );
        }
    }

    #[test]
    fn covered_only_policy_still_covers_the_example() {
        let config = quick_config().pen_policy(PenPolicy::CoveredOnly);
        let report = CoverMe::new(config).run(&paper_example());
        assert_eq!(report.branch_coverage_percent(), 100.0);
    }

    #[test]
    fn search_coverage_extension_never_reports_less() {
        let plain = CoverMe::new(quick_config()).run(&paper_example());
        let extended =
            CoverMe::new(quick_config().record_search_coverage(true)).run(&paper_example());
        assert!(extended.coverage.covered_count() >= plain.coverage.covered_count());
    }

    #[test]
    fn respects_time_budget() {
        let config = quick_config()
            .n_start(1_000_000)
            .infeasible_policy(InfeasiblePolicy::Disabled)
            .time_budget(Duration::from_millis(50));
        let report = CoverMe::new(config).run(&infeasible_example());
        // Generous bound: the run must stop well under a second.
        assert!(report.wall_time < Duration::from_secs(5));
        assert!(report.rounds.len() < 1_000_000);
    }

    #[test]
    fn nelder_mead_backend_also_works() {
        // A weaker local minimizer can fail a round and trigger the
        // infeasible-branch heuristic on a feasible branch (the paper's
        // Remark 6.1 situation 2), so disable the heuristic here and let the
        // extra rounds recover full coverage.
        let config = quick_config()
            .local_method(LocalMethod::NelderMead)
            .infeasible_policy(InfeasiblePolicy::Disabled);
        let report = CoverMe::new(config).run(&paper_example());
        assert_eq!(report.branch_coverage_percent(), 100.0);
    }

    #[test]
    fn round_records_are_consistent() {
        let report = CoverMe::new(quick_config()).run(&paper_example());
        for (i, round) in report.rounds.iter().enumerate() {
            assert_eq!(round.round, i);
            assert_eq!(round.start.len(), 1);
            assert_eq!(round.minimum.len(), 1);
            assert!(round.value >= 0.0, "C1 violated in round {i}");
        }
        let productive = report.productive_rounds();
        assert!(productive >= 2, "need at least two inputs for 4 branches");
    }

    #[test]
    fn sharded_run_covers_the_paper_example_and_is_deterministic() {
        let config = quick_config().shards(4);
        let a = CoverMe::new(config.clone()).run(&paper_example());
        let b = CoverMe::new(config).run(&paper_example());
        assert_eq!(a.branch_coverage_percent(), 100.0, "{a}");
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.rounds.len(), b.rounds.len());
    }

    #[test]
    fn parallel_run_matches_sequential_sharded_run() {
        let config = quick_config().shards(3);
        let sequential = CoverMe::new(config.clone()).run(&paper_example());
        let parallel = CoverMe::new(config).run_parallel(&paper_example());
        assert_eq!(sequential.inputs, parallel.inputs);
        assert_eq!(sequential.coverage, parallel.coverage);
        assert_eq!(sequential.evaluations, parallel.evaluations);
    }

    #[test]
    fn sharded_run_never_covers_less_than_unsharded() {
        for shards in [2usize, 3, 4] {
            let unsharded = CoverMe::new(quick_config()).run(&infeasible_example());
            let sharded = CoverMe::new(quick_config().shards(shards)).run(&infeasible_example());
            assert!(
                sharded.coverage.covered_count() >= unsharded.coverage.covered_count(),
                "{shards} shards covered {} < {}",
                sharded.coverage.covered_count(),
                unsharded.coverage.covered_count()
            );
        }
    }

    #[test]
    fn effective_shards_keeps_a_minimum_round_slice() {
        assert_eq!(
            CoverMeConfig::default()
                .n_start(40)
                .shards(4)
                .effective_shards(),
            2
        );
        assert_eq!(
            CoverMeConfig::default()
                .n_start(80)
                .shards(4)
                .effective_shards(),
            4
        );
        assert_eq!(
            CoverMeConfig::default()
                .n_start(8)
                .shards(4)
                .effective_shards(),
            1
        );
        assert_eq!(CoverMeConfig::default().shards(0).effective_shards(), 1);
        // The paper's full budget splits comfortably.
        assert_eq!(CoverMeConfig::default().shards(16).effective_shards(), 16);
    }

    #[test]
    fn shards_zero_and_one_mean_unsharded() {
        let baseline = CoverMe::new(quick_config()).run(&paper_example());
        let zero = CoverMe::new(quick_config().shards(0)).run(&paper_example());
        let one = CoverMe::new(quick_config().shards(1)).run(&paper_example());
        assert_eq!(baseline.inputs, zero.inputs);
        assert_eq!(baseline.inputs, one.inputs);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn rejects_zero_arity_programs() {
        let p = FnProgram::new("nullary", 0, 0, |_: &[f64], _: &mut ExecCtx| {});
        let _ = CoverMe::with_defaults().run(&p);
    }

    /// A program whose every execution runs out of fuel before completing —
    /// the interpreter analogue is an unconditionally infinite loop.
    fn always_aborting() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
        FnProgram::new("SPIN", 1, 1, |input: &[f64], ctx: &mut ExecCtx| {
            ctx.branch(0, Cmp::Gt, input[0].abs() + 1.0, 0.0);
            ctx.mark_timeout();
        })
    }

    #[test]
    fn always_aborting_program_degrades_instead_of_burning_the_budget() {
        let program = always_aborting();
        let mut state = SearchState::new(&quick_config().n_start(500), &program, 0);
        let outcome = state.run_to_exhaustion();
        assert_eq!(outcome, EpochOutcome::Degraded);
        assert_eq!(state.rounds_run(), ABORT_PATIENCE);
        let report = state.finish().into_report("SPIN");
        assert!(report.inputs.is_empty(), "aborted rounds accept nothing");
        assert!(report.infeasible.is_empty(), "no blame off garbage traces");
        assert!(report
            .rounds
            .iter()
            .all(|r| r.outcome == RoundOutcome::Aborted));
        assert!(report.timeouts > 0, "telemetry counts the timeouts");
        assert_eq!(report.traps, 0);
    }

    #[test]
    fn budget_pauses_the_search_and_extend_resumes_it() {
        let program = infeasible_example();
        let config = quick_config()
            .n_start(500)
            .infeasible_policy(InfeasiblePolicy::Disabled)
            .budget(1);
        let mut state = SearchState::new(&config, &program, 0);
        // The allowance admits exactly one (overshooting) round.
        assert_eq!(state.run_to_exhaustion(), EpochOutcome::BudgetExhausted);
        assert_eq!(state.rounds_run(), 1);
        let spent = state.evaluations();
        assert!(spent >= 1);
        // Re-running without a grant re-reports the outcome and does no work.
        assert_eq!(state.run_to_exhaustion(), EpochOutcome::BudgetExhausted);
        assert_eq!(state.evaluations(), spent);
        // A generous grant resumes the search from where it paused.
        state.extend_budget(1_000_000);
        assert!(!state.is_finished());
        let outcome = state.run_rounds(1);
        assert!(state.rounds_run() >= 2, "grant bought at least one round");
        assert_ne!(outcome, EpochOutcome::BudgetExhausted);
    }

    #[test]
    fn budget_slicing_is_bit_identical_to_one_shot_runs() {
        // Running under a trickle of grants must visit exactly the same
        // rounds as one unbudgeted run — the prefix-stability the bandit
        // scheduler relies on.
        let program = infeasible_example();
        let base = quick_config()
            .n_start(24)
            .infeasible_policy(InfeasiblePolicy::Disabled);
        let mut free = SearchState::new(&base, &program, 0);
        free.run_to_exhaustion();

        let mut dripped = SearchState::new(&base.clone().budget(1), &program, 0);
        while dripped.run_to_exhaustion() == EpochOutcome::BudgetExhausted {
            dripped.extend_budget(1);
        }
        assert_eq!(free.rounds(), dripped.rounds());
        assert_eq!(free.evaluations(), dripped.evaluations());
    }

    #[test]
    fn generalized_blame_saturates_where_last_conditional_cannot() {
        // Both untaken branches of the failed path are infeasible: the
        // classic heuristic blames only the last conditional per round,
        // the generalized policy blames the whole path at once.
        let doubly_infeasible = || {
            FnProgram::new("FOO_INF2", 1, 2, |input: &[f64], ctx: &mut ExecCtx| {
                let x = input[0];
                // 0F (x*x < 0) and 1T (x*x == -1) are both unreachable.
                ctx.branch(0, Cmp::Ge, x * x, 0.0);
                ctx.branch(1, Cmp::Eq, x * x, -1.0);
            })
        };
        let config = quick_config().infeasible_policy(InfeasiblePolicy::Generalized);
        let report = CoverMe::new(config).run(&doubly_infeasible());
        assert_eq!(report.coverage.covered_count(), 2, "{report}");
        assert!(report.infeasible.contains(&BranchId::false_of(0)));
        assert!(report.infeasible.contains(&BranchId::true_of(1)));
        assert!(report.infeasible_blamed() >= 2);
        // One failed round saturates everything the classic policy would
        // have needed two for.
        let classic = CoverMe::new(quick_config()).run(&doubly_infeasible());
        assert!(
            report.rounds.len() <= classic.rounds.len(),
            "generalized blame must not take longer ({} > {})",
            report.rounds.len(),
            classic.rounds.len()
        );
    }

    #[test]
    fn generalized_blame_matches_classic_on_the_paper_infeasible_example() {
        // A single infeasible site at the end of the path: the two policies
        // must find the same verdict and the same coverage.
        let classic = CoverMe::new(quick_config()).run(&infeasible_example());
        let config = quick_config().infeasible_policy(InfeasiblePolicy::Generalized);
        let general = CoverMe::new(config).run(&infeasible_example());
        assert_eq!(general.coverage.covered_count(), 3, "{general}");
        assert!(general.infeasible.contains(&BranchId::true_of(1)));
        assert!(general.rounds.len() <= classic.rounds.len());
    }

    #[test]
    fn abort_streak_resets_on_completed_rounds() {
        // Aborts only on negative inputs: the search keeps finding
        // completed rounds in between, so it must not degrade.
        let flaky = FnProgram::new("FLAKY", 1, 2, |input: &[f64], ctx: &mut ExecCtx| {
            let x = input[0];
            if x < 0.0 {
                ctx.mark_timeout();
                return;
            }
            if ctx.branch(0, Cmp::Le, x, 1.0) {
                // easy
            }
            ctx.branch(1, Cmp::Eq, x, 4.0);
        });
        let report = CoverMe::new(quick_config()).run(&flaky);
        assert!(
            report.coverage.covered_count() > 0,
            "completed rounds still make progress: {report}"
        );
    }
}
