//! Saturation tracking (Definition 3.2 of the paper).
//!
//! A branch `b` is *saturated* by a set of inputs `X` when `b` itself and
//! every *descendant* branch of `b` (every branch reachable from `b` by
//! control flow) is covered by `X`. Lemma 3.3 shows that saturating all
//! branches is equivalent to covering all branches, which is why CoverMe can
//! phrase its goal as "saturate everything".
//!
//! The descendant relation is a static property of the control-flow graph.
//! Two sources are supported:
//!
//! * **static** descendants, supplied by a front end that has a CFG (the
//!   `coverme-fpir` mini-language computes them exactly);
//! * **dynamic** descendants, learned from executed traces: whenever a trace
//!   takes branch `b` and later reaches conditional site `s`, both branches
//!   of `s` are recorded as descendants of `b` (reaching the site means both
//!   of its outgoing branches are control-flow successors). This
//!   under-approximates the static relation (it only contains sites that
//!   were actually observed after `b`), so the resulting saturation set is
//!   an over-approximation that tightens as more traces are seen. For the
//!   hand-ported benchmarks this matches how a tool without a CFG must
//!   behave.
//!
//! Branches the infeasible-branch heuristic (Sect. 5.3) deems unreachable
//! are treated as covered for saturation purposes, exactly as the paper
//! "regards the infeasible branches as already saturated".

use coverme_runtime::{BranchId, BranchSet, Trace};

/// Tracks covered, infeasible and (derived) saturated branches.
#[derive(Debug, Clone)]
pub struct SaturationTracker {
    num_sites: usize,
    covered: BranchSet,
    infeasible: BranchSet,
    /// `descendants[b.index()]` = branches known to be reachable after taking `b`.
    descendants: Vec<BranchSet>,
    /// Whether descendants keep being learned from traces (disabled when a
    /// static relation was supplied).
    learn_descendants: bool,
    /// Whether the descendant condition participates in saturation at all
    /// (the `PenPolicy::CoveredOnly` ablation turns it off).
    use_descendants: bool,
    /// Monotone mutation counter, bumped by every state-changing call. Lets
    /// the cross-shard sync layer ([`crate::sync`]) skip re-broadcasting a
    /// shard's state when nothing changed since its last published
    /// [`SaturationDelta`]. Excluded from equality: two trackers that
    /// reached the same state along different paths compare equal.
    version: u64,
}

/// Two trackers are equal when their *state* is equal — the mutation
/// counter (`version`) is bookkeeping for delta exchange, not state, so
/// trackers that converged along different merge orders still compare
/// equal (the commutativity property the sync layer relies on).
impl PartialEq for SaturationTracker {
    fn eq(&self, other: &Self) -> bool {
        self.num_sites == other.num_sites
            && self.covered == other.covered
            && self.infeasible == other.infeasible
            && self.descendants == other.descendants
            && self.learn_descendants == other.learn_descendants
            && self.use_descendants == other.use_descendants
    }
}

/// A publishable snapshot of one tracker's monotone saturation knowledge —
/// what a shard hands its siblings at a sync barrier (see [`crate::sync`]).
///
/// The payload is the full covered/infeasible/descendant state, not a diff:
/// every component merges by set union, so applying a delta is
/// **commutative** (any barrier may apply its peers' deltas in any order),
/// **idempotent** (re-applying a stale delta is a no-op), and monotone
/// (knowledge is never retracted — except infeasible verdicts refuted by
/// real coverage, which [`SaturationTracker::apply_delta`] drops against
/// the *post-union* covered set, an order-independent rule: the final
/// infeasible set is always `union(infeasible) \ union(covered)` over
/// whatever deltas were applied).
#[derive(Debug, Clone, PartialEq)]
pub struct SaturationDelta {
    /// The publishing tracker's [`SaturationTracker::version`] at
    /// extraction time. Consumers use it to recognize an unchanged
    /// re-broadcast; it does not participate in `apply_delta`.
    pub version: u64,
    num_sites: usize,
    covered: BranchSet,
    infeasible: BranchSet,
    descendants: Vec<BranchSet>,
}

impl SaturationDelta {
    /// Number of conditional sites of the program this delta describes.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// Branches the publishing shard has covered.
    pub fn covered(&self) -> &BranchSet {
        &self.covered
    }

    /// Branches the publishing shard has deemed infeasible.
    pub fn infeasible(&self) -> &BranchSet {
        &self.infeasible
    }
}

impl SaturationTracker {
    /// Creates a tracker for a program with `num_sites` conditionals, with
    /// dynamic descendant learning enabled.
    pub fn new(num_sites: usize) -> SaturationTracker {
        SaturationTracker {
            num_sites,
            covered: BranchSet::with_sites(num_sites),
            infeasible: BranchSet::with_sites(num_sites),
            descendants: vec![BranchSet::new(); num_sites * 2],
            learn_descendants: true,
            use_descendants: true,
            version: 0,
        }
    }

    /// Creates a tracker with a statically computed descendant relation
    /// (indexed by [`BranchId::index`]); dynamic learning is disabled.
    ///
    /// # Panics
    ///
    /// Panics if `descendants.len() != num_sites * 2`.
    pub fn with_static_descendants(
        num_sites: usize,
        descendants: Vec<BranchSet>,
    ) -> SaturationTracker {
        assert_eq!(
            descendants.len(),
            num_sites * 2,
            "descendant table must have one entry per branch"
        );
        SaturationTracker {
            num_sites,
            covered: BranchSet::with_sites(num_sites),
            infeasible: BranchSet::with_sites(num_sites),
            descendants,
            learn_descendants: false,
            use_descendants: true,
            version: 0,
        }
    }

    /// Disables the descendant condition entirely: saturation degenerates to
    /// plain coverage. Used by the `PenPolicy::CoveredOnly` ablation.
    pub fn covered_only(mut self) -> SaturationTracker {
        self.use_descendants = false;
        self
    }

    /// Number of conditional sites.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// Total number of branches.
    pub fn total_branches(&self) -> usize {
        self.num_sites * 2
    }

    /// Records the decisions of one execution: marks every taken branch as
    /// covered and (when enabled) learns descendant pairs from the order of
    /// the trace.
    pub fn record_trace(&mut self, trace: &Trace) {
        self.version += 1;
        let taken: Vec<BranchId> = trace.covered_branches().collect();
        for &branch in &taken {
            self.covered.insert(branch);
        }
        if self.learn_descendants && self.use_descendants {
            for (i, &from) in taken.iter().enumerate() {
                let from_idx = from.index();
                for &to in &taken[i + 1..] {
                    // Reaching conditional site `to.site` after taking `from`
                    // means *both* branches of that site are control-flow
                    // descendants of `from`, not just the one this execution
                    // happened to take.
                    for descendant in [to, to.sibling()] {
                        if descendant != from {
                            self.descendants[from_idx].insert(descendant);
                        }
                    }
                }
            }
        }
    }

    /// Records coverage without a trace (no descendant learning).
    pub fn record_covered(&mut self, covered: &BranchSet) {
        self.version += 1;
        self.covered.union_with(covered);
    }

    /// Marks a branch as deemed-infeasible. Such branches are treated as
    /// covered when deciding saturation, so the search stops pursuing them.
    pub fn mark_infeasible(&mut self, branch: BranchId) {
        self.version += 1;
        self.infeasible.insert(branch);
    }

    /// Generalized infeasibility blame (the broadened form of the Sect. 5.3
    /// heuristic used by [`crate::InfeasiblePolicy::Generalized`]): given
    /// the trace of a round whose minimizer converged to a *nonzero*
    /// objective, every conditional on that path whose untaken branch is
    /// still uncovered is blamed — the failed path dominates all of them,
    /// so none was reachable from any point the minimizer explored.
    ///
    /// Each blamed branch is marked infeasible exactly as
    /// [`mark_infeasible`](Self::mark_infeasible) would; branches already
    /// covered or already deemed infeasible are skipped, so re-blaming is
    /// idempotent. Soundness under merging is unchanged: verdicts still
    /// travel through [`delta`](Self::delta)/[`apply_delta`](Self::apply_delta)
    /// as plain infeasible bits and are refuted against the post-union
    /// covered set, keeping delta application commutative and idempotent.
    ///
    /// Returns the branches blamed this call, in trace order.
    pub fn blame_uncovered_path(&mut self, trace: &Trace) -> Vec<BranchId> {
        let mut blamed = Vec::new();
        for taken in trace.covered_branches() {
            let untaken = taken.sibling();
            if untaken.index() < self.total_branches()
                && !self.covered.contains(untaken)
                && !self.infeasible.contains(untaken)
            {
                self.infeasible.insert(untaken);
                blamed.push(untaken);
            }
        }
        if !blamed.is_empty() {
            self.version += 1;
        }
        blamed
    }

    /// The tracker's monotone mutation counter: bumped by every
    /// state-changing call ([`record_trace`](Self::record_trace),
    /// [`mark_infeasible`](Self::mark_infeasible), merges, delta applies).
    /// A shard whose version is unchanged since its last published delta
    /// has nothing new to broadcast.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Extracts the tracker's monotone knowledge as a [`SaturationDelta`]
    /// stamped with the current [`version`](Self::version) — what a shard
    /// publishes at a sync barrier. Extraction is a snapshot (clones the
    /// bitsets); it does not mutate the tracker.
    pub fn delta(&self) -> SaturationDelta {
        SaturationDelta {
            version: self.version,
            num_sites: self.num_sites,
            covered: self.covered.clone(),
            infeasible: self.infeasible.clone(),
            descendants: self.descendants.clone(),
        }
    }

    /// Merges a sibling shard's published delta into this tracker: covered,
    /// infeasible and learned-descendant sets union in, then any
    /// infeasible verdict the unioned coverage refutes is dropped. Returns
    /// whether the tracker's state changed.
    ///
    /// Applying a set of deltas is commutative and idempotent (see
    /// [`SaturationDelta`]), which is what lets the sync barrier apply
    /// peers' deltas in whatever order workers delivered them and still
    /// produce a deterministic result per `(seed, shards, sync_epochs)`.
    ///
    /// # Panics
    ///
    /// Panics if the delta describes a program with a different number of
    /// conditional sites.
    pub fn apply_delta(&mut self, delta: &SaturationDelta) -> bool {
        assert_eq!(
            self.num_sites, delta.num_sites,
            "cannot apply a saturation delta from a different program"
        );
        let before = (self.covered.clone(), self.infeasible.clone());
        self.covered.union_with(&delta.covered);
        self.infeasible.union_with(&delta.infeasible);
        let mut descendants_changed = false;
        for (mine, theirs) in self.descendants.iter_mut().zip(&delta.descendants) {
            let len_before = mine.len();
            mine.union_with(theirs);
            descendants_changed |= mine.len() != len_before;
        }
        // Order-independent refutation: against the *post-union* covered
        // set, so `union(infeasible) \ union(covered)` falls out no matter
        // how many deltas were applied first.
        let refuted: Vec<BranchId> = self
            .infeasible
            .iter()
            .filter(|b| self.covered.contains(*b))
            .collect();
        for branch in refuted {
            self.infeasible.remove(branch);
        }
        let changed =
            descendants_changed || before.0 != self.covered || before.1 != self.infeasible;
        if changed {
            self.version += 1;
        }
        changed
    }

    /// Merges another tracker of the same program into this one, as when the
    /// shards of a split search ([`crate::shard`]) are combined:
    ///
    /// * covered branches are unioned,
    /// * learned descendant sets are unioned per branch (the merged relation
    ///   is a tighter under-approximation of the static CFG than either
    ///   side's, so merged saturation can be *smaller* than a single shard's
    ///   optimistic view — never unsound),
    /// * infeasible-deemed branches are unioned, and then any branch some
    ///   shard actually covered is dropped from the infeasible set: real
    ///   coverage refutes the heuristic's verdict.
    ///
    /// The learning/ablation flags of `self` are kept; all shards of one
    /// search share a configuration, so they agree anyway.
    ///
    /// # Panics
    ///
    /// Panics if the trackers disagree on the number of conditional sites.
    pub fn merge_from(&mut self, other: &SaturationTracker) {
        assert_eq!(
            self.num_sites, other.num_sites,
            "cannot merge saturation trackers of different programs"
        );
        self.version += 1;
        self.covered.union_with(&other.covered);
        self.infeasible.union_with(&other.infeasible);
        for (mine, theirs) in self.descendants.iter_mut().zip(&other.descendants) {
            mine.union_with(theirs);
        }
        let refuted: Vec<BranchId> = self
            .infeasible
            .iter()
            .filter(|b| self.covered.contains(*b))
            .collect();
        for branch in refuted {
            self.infeasible.remove(branch);
        }
    }

    /// Branches covered so far (excluding infeasible-deemed ones).
    pub fn covered(&self) -> &BranchSet {
        &self.covered
    }

    /// Branches deemed infeasible so far.
    pub fn infeasible(&self) -> &BranchSet {
        &self.infeasible
    }

    /// Whether a branch counts as covered for saturation purposes (actually
    /// covered, or deemed infeasible).
    fn effectively_covered(&self, branch: BranchId) -> bool {
        self.covered.contains(branch) || self.infeasible.contains(branch)
    }

    /// Whether `branch` is saturated (Definition 3.2).
    pub fn is_saturated(&self, branch: BranchId) -> bool {
        if branch.index() >= self.total_branches() {
            return false;
        }
        if !self.effectively_covered(branch) {
            return false;
        }
        if !self.use_descendants {
            return true;
        }
        self.descendants[branch.index()]
            .iter()
            .all(|d| self.effectively_covered(d))
    }

    /// The current saturated set (`Saturate(X)` in the paper), the snapshot
    /// a [`crate::RepresentingFunction`] is built against.
    pub fn saturated_set(&self) -> BranchSet {
        let mut set = BranchSet::with_sites(self.num_sites);
        for site in 0..self.num_sites as u32 {
            for branch in [BranchId::true_of(site), BranchId::false_of(site)] {
                if self.is_saturated(branch) {
                    set.insert(branch);
                }
            }
        }
        set
    }

    /// Whether every branch of the program is saturated — the termination
    /// condition of the main loop.
    pub fn all_saturated(&self) -> bool {
        (0..self.num_sites as u32).all(|site| {
            self.is_saturated(BranchId::true_of(site))
                && self.is_saturated(BranchId::false_of(site))
        })
    }

    /// Whether every branch is actually covered (not counting infeasible).
    pub fn all_covered(&self) -> bool {
        self.covered.len() >= self.total_branches()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverme_runtime::{Cmp, Direction, TakenBranch};

    fn trace_of(decisions: &[(u32, bool)]) -> Trace {
        let mut t = Trace::new();
        for &(site, outcome) in decisions {
            t.push(TakenBranch {
                site,
                direction: Direction::from_outcome(outcome),
                op: Cmp::Le,
                lhs: 0.0,
                rhs: 0.0,
            });
        }
        t
    }

    #[test]
    fn covering_both_sides_of_a_leaf_site_saturates_it() {
        let mut tracker = SaturationTracker::new(1);
        tracker.record_trace(&trace_of(&[(0, true)]));
        assert!(tracker.is_saturated(BranchId::true_of(0)));
        assert!(!tracker.is_saturated(BranchId::false_of(0)));
        tracker.record_trace(&trace_of(&[(0, false)]));
        assert!(tracker.all_saturated());
    }

    #[test]
    fn paper_def32_example() {
        // The control-flow graph next to Definition 3.2: branch 0T leads to
        // conditional 1; X covers {0T, 0F, 1F}. Then Saturate(X) = {0F, 1F}:
        // 1T is not covered, and 0T has the uncovered descendant 1T.
        let mut tracker = SaturationTracker::new(2);
        // 0T followed by the inner conditional taking 1F.
        tracker.record_trace(&trace_of(&[(0, true), (1, false)]));
        // 0F (inner conditional not reached).
        tracker.record_trace(&trace_of(&[(0, false)]));

        assert!(tracker.is_saturated(BranchId::false_of(0)));
        assert!(tracker.is_saturated(BranchId::false_of(1)));
        assert!(
            !tracker.is_saturated(BranchId::true_of(1)),
            "1T not covered"
        );
        assert!(
            !tracker.is_saturated(BranchId::true_of(0)),
            "0T has uncovered descendant 1T"
        );

        let set = tracker.saturated_set();
        assert_eq!(set.len(), 2);
        assert!(set.contains(BranchId::false_of(0)));
        assert!(set.contains(BranchId::false_of(1)));
    }

    #[test]
    fn saturation_completes_once_descendants_are_covered() {
        let mut tracker = SaturationTracker::new(2);
        tracker.record_trace(&trace_of(&[(0, true), (1, false)]));
        tracker.record_trace(&trace_of(&[(0, false)]));
        tracker.record_trace(&trace_of(&[(0, true), (1, true)]));
        assert!(tracker.all_saturated());
        assert!(tracker.all_covered());
    }

    #[test]
    fn infeasible_branches_count_as_saturated() {
        let mut tracker = SaturationTracker::new(1);
        tracker.record_trace(&trace_of(&[(0, false)]));
        assert!(!tracker.all_saturated());
        tracker.mark_infeasible(BranchId::true_of(0));
        assert!(tracker.all_saturated());
        assert!(!tracker.all_covered(), "infeasible is not real coverage");
    }

    #[test]
    fn covered_only_mode_ignores_descendants() {
        let mut tracker = SaturationTracker::new(2).covered_only();
        tracker.record_trace(&trace_of(&[(0, true), (1, false)]));
        // In covered-only mode 0T is "saturated" even though descendant 1T
        // is not covered.
        assert!(tracker.is_saturated(BranchId::true_of(0)));
    }

    #[test]
    fn static_descendants_are_respected_and_not_overwritten() {
        // Static CFG: 0T's descendants are {1T, 1F}; everything else has none.
        let mut desc = vec![BranchSet::new(); 4];
        desc[BranchId::true_of(0).index()] = [BranchId::true_of(1), BranchId::false_of(1)]
            .into_iter()
            .collect();
        let mut tracker = SaturationTracker::with_static_descendants(2, desc);

        // Cover 0T and 1F only (no dynamic learning should add pairs).
        tracker.record_trace(&trace_of(&[(0, true), (1, false)]));
        assert!(!tracker.is_saturated(BranchId::true_of(0)));
        tracker.record_trace(&trace_of(&[(0, true), (1, true)]));
        assert!(tracker.is_saturated(BranchId::true_of(0)));
    }

    #[test]
    #[should_panic(expected = "one entry per branch")]
    fn static_descendants_must_match_site_count() {
        let _ = SaturationTracker::with_static_descendants(2, vec![BranchSet::new(); 3]);
    }

    #[test]
    fn record_covered_without_trace_adds_coverage_only() {
        let mut tracker = SaturationTracker::new(2);
        let covered: BranchSet = [BranchId::true_of(0), BranchId::true_of(1)]
            .into_iter()
            .collect();
        tracker.record_covered(&covered);
        assert!(tracker.covered().contains(BranchId::true_of(0)));
        // No descendant pair was learned, so 0T saturates as a leaf.
        assert!(tracker.is_saturated(BranchId::true_of(0)));
    }

    #[test]
    fn merge_from_unions_coverage_and_descendants() {
        // Shard A sees the nested path 0T -> 1F; shard B sees 0F only.
        let mut a = SaturationTracker::new(2);
        a.record_trace(&trace_of(&[(0, true), (1, false)]));
        let mut b = SaturationTracker::new(2);
        b.record_trace(&trace_of(&[(0, false)]));

        a.merge_from(&b);
        assert!(a.covered().contains(BranchId::true_of(0)));
        assert!(a.covered().contains(BranchId::false_of(0)));
        assert!(a.covered().contains(BranchId::false_of(1)));
        // The merged relation still knows 1T is an uncovered descendant of 0T.
        assert!(!a.is_saturated(BranchId::true_of(0)));
        assert!(a.is_saturated(BranchId::false_of(0)));
    }

    #[test]
    fn merge_from_drops_infeasible_verdicts_refuted_by_coverage() {
        // Shard A gave up on 0T; shard B actually covered it.
        let mut a = SaturationTracker::new(1);
        a.mark_infeasible(BranchId::true_of(0));
        let mut b = SaturationTracker::new(1);
        b.record_trace(&trace_of(&[(0, true)]));

        a.merge_from(&b);
        assert!(!a.infeasible().contains(BranchId::true_of(0)));
        assert!(a.covered().contains(BranchId::true_of(0)));
        // Unrefuted verdicts survive the merge.
        let mut c = SaturationTracker::new(1);
        c.mark_infeasible(BranchId::false_of(0));
        a.merge_from(&c);
        assert!(a.infeasible().contains(BranchId::false_of(0)));
        assert!(a.all_saturated());
    }

    #[test]
    #[should_panic(expected = "different programs")]
    fn merge_from_rejects_mismatched_site_counts() {
        let mut a = SaturationTracker::new(1);
        a.merge_from(&SaturationTracker::new(2));
    }

    #[test]
    fn out_of_range_branch_is_never_saturated() {
        let tracker = SaturationTracker::new(1);
        assert!(!tracker.is_saturated(BranchId::true_of(99)));
    }

    #[test]
    fn delta_apply_matches_merge_from() {
        let mut a = SaturationTracker::new(2);
        a.record_trace(&trace_of(&[(0, true), (1, false)]));
        a.mark_infeasible(BranchId::true_of(1));
        let mut b = SaturationTracker::new(2);
        b.record_trace(&trace_of(&[(0, false)]));

        let mut via_merge = b.clone();
        via_merge.merge_from(&a);
        let mut via_delta = b.clone();
        assert!(via_delta.apply_delta(&a.delta()));
        assert_eq!(via_merge, via_delta);
    }

    #[test]
    fn delta_apply_is_commutative_and_idempotent() {
        // Three shards with overlapping knowledge, including an infeasible
        // verdict one peer refutes by real coverage.
        let mut a = SaturationTracker::new(2);
        a.record_trace(&trace_of(&[(0, true), (1, false)]));
        a.mark_infeasible(BranchId::true_of(1));
        let mut b = SaturationTracker::new(2);
        b.record_trace(&trace_of(&[(0, false)]));
        b.mark_infeasible(BranchId::false_of(1));
        let mut c = SaturationTracker::new(2);
        c.record_trace(&trace_of(&[(0, true), (1, true)]));

        let deltas = [a.delta(), b.delta(), c.delta()];
        let base = SaturationTracker::new(2);
        let orders: [[usize; 3]; 3] = [[0, 1, 2], [2, 1, 0], [1, 2, 0]];
        let merged: Vec<SaturationTracker> = orders
            .iter()
            .map(|order| {
                let mut t = base.clone();
                for &i in order {
                    t.apply_delta(&deltas[i]);
                }
                t
            })
            .collect();
        assert_eq!(merged[0], merged[1]);
        assert_eq!(merged[0], merged[2]);
        // 1T was deemed infeasible by A but covered by C: refuted in every
        // order.
        assert!(!merged[0].infeasible().contains(BranchId::true_of(1)));

        // Idempotent: re-applying every delta changes nothing.
        let mut again = merged[0].clone();
        for delta in &deltas {
            assert!(!again.apply_delta(delta), "stale delta mutated state");
        }
        assert_eq!(again, merged[0]);
    }

    #[test]
    fn generalized_blame_marks_every_uncovered_untaken_branch() {
        // Failed path 0T -> 1T -> 2F with 1F already covered elsewhere:
        // blame falls on 0F and 2T only.
        let mut tracker = SaturationTracker::new(3);
        tracker.record_trace(&trace_of(&[(0, true), (1, false)]));
        let failed = trace_of(&[(0, true), (1, true), (2, false)]);
        tracker.record_trace(&failed);
        let blamed = tracker.blame_uncovered_path(&failed);
        assert_eq!(blamed, vec![BranchId::false_of(0), BranchId::true_of(2)]);
        assert!(tracker.infeasible().contains(BranchId::false_of(0)));
        assert!(tracker.infeasible().contains(BranchId::true_of(2)));
        assert!(!tracker.infeasible().contains(BranchId::false_of(1)));
        // Re-blaming the same path is a no-op (and bumps no version).
        let version = tracker.version();
        assert!(tracker.blame_uncovered_path(&failed).is_empty());
        assert_eq!(tracker.version(), version);
    }

    #[test]
    fn generalized_blame_stays_commutative_under_delta_exchange() {
        // Shard A blames a whole path; shard B covers one of the blamed
        // branches for real. Merging in either order refutes exactly that
        // verdict.
        let failed = trace_of(&[(0, true), (1, true)]);
        let mut a = SaturationTracker::new(2);
        a.record_trace(&failed);
        a.blame_uncovered_path(&failed); // blames 0F and 1F
        let mut b = SaturationTracker::new(2);
        b.record_trace(&trace_of(&[(0, false)]));

        let mut ab = SaturationTracker::new(2);
        ab.apply_delta(&a.delta());
        ab.apply_delta(&b.delta());
        let mut ba = SaturationTracker::new(2);
        ba.apply_delta(&b.delta());
        ba.apply_delta(&a.delta());
        assert_eq!(ab, ba);
        assert!(!ab.infeasible().contains(BranchId::false_of(0)), "refuted");
        assert!(ab.infeasible().contains(BranchId::false_of(1)));
    }

    #[test]
    fn version_tracks_mutations_but_not_equality() {
        let mut a = SaturationTracker::new(1);
        let v0 = a.version();
        a.record_trace(&trace_of(&[(0, true)]));
        assert!(a.version() > v0);
        let mut b = SaturationTracker::new(1);
        b.record_trace(&trace_of(&[(0, true)]));
        b.record_trace(&trace_of(&[(0, true)]));
        // Different mutation histories, same state: equal.
        assert_eq!(a, b);
        let delta = a.delta();
        assert_eq!(delta.version, a.version());
        assert!(delta.covered().contains(BranchId::true_of(0)));
    }

    #[test]
    #[should_panic(expected = "different program")]
    fn apply_delta_rejects_mismatched_site_counts() {
        let mut a = SaturationTracker::new(1);
        a.apply_delta(&SaturationTracker::new(2).delta());
    }
}
