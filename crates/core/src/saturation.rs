//! Saturation tracking (Definition 3.2 of the paper).
//!
//! A branch `b` is *saturated* by a set of inputs `X` when `b` itself and
//! every *descendant* branch of `b` (every branch reachable from `b` by
//! control flow) is covered by `X`. Lemma 3.3 shows that saturating all
//! branches is equivalent to covering all branches, which is why CoverMe can
//! phrase its goal as "saturate everything".
//!
//! The descendant relation is a static property of the control-flow graph.
//! Two sources are supported:
//!
//! * **static** descendants, supplied by a front end that has a CFG (the
//!   `coverme-fpir` mini-language computes them exactly);
//! * **dynamic** descendants, learned from executed traces: whenever a trace
//!   takes branch `b` and later reaches conditional site `s`, both branches
//!   of `s` are recorded as descendants of `b` (reaching the site means both
//!   of its outgoing branches are control-flow successors). This
//!   under-approximates the static relation (it only contains sites that
//!   were actually observed after `b`), so the resulting saturation set is
//!   an over-approximation that tightens as more traces are seen. For the
//!   hand-ported benchmarks this matches how a tool without a CFG must
//!   behave.
//!
//! Branches the infeasible-branch heuristic (Sect. 5.3) deems unreachable
//! are treated as covered for saturation purposes, exactly as the paper
//! "regards the infeasible branches as already saturated".

use coverme_runtime::{BranchId, BranchSet, Trace};

/// Tracks covered, infeasible and (derived) saturated branches.
#[derive(Debug, Clone, PartialEq)]
pub struct SaturationTracker {
    num_sites: usize,
    covered: BranchSet,
    infeasible: BranchSet,
    /// `descendants[b.index()]` = branches known to be reachable after taking `b`.
    descendants: Vec<BranchSet>,
    /// Whether descendants keep being learned from traces (disabled when a
    /// static relation was supplied).
    learn_descendants: bool,
    /// Whether the descendant condition participates in saturation at all
    /// (the `PenPolicy::CoveredOnly` ablation turns it off).
    use_descendants: bool,
}

impl SaturationTracker {
    /// Creates a tracker for a program with `num_sites` conditionals, with
    /// dynamic descendant learning enabled.
    pub fn new(num_sites: usize) -> SaturationTracker {
        SaturationTracker {
            num_sites,
            covered: BranchSet::with_sites(num_sites),
            infeasible: BranchSet::with_sites(num_sites),
            descendants: vec![BranchSet::new(); num_sites * 2],
            learn_descendants: true,
            use_descendants: true,
        }
    }

    /// Creates a tracker with a statically computed descendant relation
    /// (indexed by [`BranchId::index`]); dynamic learning is disabled.
    ///
    /// # Panics
    ///
    /// Panics if `descendants.len() != num_sites * 2`.
    pub fn with_static_descendants(
        num_sites: usize,
        descendants: Vec<BranchSet>,
    ) -> SaturationTracker {
        assert_eq!(
            descendants.len(),
            num_sites * 2,
            "descendant table must have one entry per branch"
        );
        SaturationTracker {
            num_sites,
            covered: BranchSet::with_sites(num_sites),
            infeasible: BranchSet::with_sites(num_sites),
            descendants,
            learn_descendants: false,
            use_descendants: true,
        }
    }

    /// Disables the descendant condition entirely: saturation degenerates to
    /// plain coverage. Used by the `PenPolicy::CoveredOnly` ablation.
    pub fn covered_only(mut self) -> SaturationTracker {
        self.use_descendants = false;
        self
    }

    /// Number of conditional sites.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// Total number of branches.
    pub fn total_branches(&self) -> usize {
        self.num_sites * 2
    }

    /// Records the decisions of one execution: marks every taken branch as
    /// covered and (when enabled) learns descendant pairs from the order of
    /// the trace.
    pub fn record_trace(&mut self, trace: &Trace) {
        let taken: Vec<BranchId> = trace.covered_branches().collect();
        for &branch in &taken {
            self.covered.insert(branch);
        }
        if self.learn_descendants && self.use_descendants {
            for (i, &from) in taken.iter().enumerate() {
                let from_idx = from.index();
                for &to in &taken[i + 1..] {
                    // Reaching conditional site `to.site` after taking `from`
                    // means *both* branches of that site are control-flow
                    // descendants of `from`, not just the one this execution
                    // happened to take.
                    for descendant in [to, to.sibling()] {
                        if descendant != from {
                            self.descendants[from_idx].insert(descendant);
                        }
                    }
                }
            }
        }
    }

    /// Records coverage without a trace (no descendant learning).
    pub fn record_covered(&mut self, covered: &BranchSet) {
        self.covered.union_with(covered);
    }

    /// Marks a branch as deemed-infeasible. Such branches are treated as
    /// covered when deciding saturation, so the search stops pursuing them.
    pub fn mark_infeasible(&mut self, branch: BranchId) {
        self.infeasible.insert(branch);
    }

    /// Merges another tracker of the same program into this one, as when the
    /// shards of a split search ([`crate::shard`]) are combined:
    ///
    /// * covered branches are unioned,
    /// * learned descendant sets are unioned per branch (the merged relation
    ///   is a tighter under-approximation of the static CFG than either
    ///   side's, so merged saturation can be *smaller* than a single shard's
    ///   optimistic view — never unsound),
    /// * infeasible-deemed branches are unioned, and then any branch some
    ///   shard actually covered is dropped from the infeasible set: real
    ///   coverage refutes the heuristic's verdict.
    ///
    /// The learning/ablation flags of `self` are kept; all shards of one
    /// search share a configuration, so they agree anyway.
    ///
    /// # Panics
    ///
    /// Panics if the trackers disagree on the number of conditional sites.
    pub fn merge_from(&mut self, other: &SaturationTracker) {
        assert_eq!(
            self.num_sites, other.num_sites,
            "cannot merge saturation trackers of different programs"
        );
        self.covered.union_with(&other.covered);
        self.infeasible.union_with(&other.infeasible);
        for (mine, theirs) in self.descendants.iter_mut().zip(&other.descendants) {
            mine.union_with(theirs);
        }
        let refuted: Vec<BranchId> = self
            .infeasible
            .iter()
            .filter(|b| self.covered.contains(*b))
            .collect();
        for branch in refuted {
            self.infeasible.remove(branch);
        }
    }

    /// Branches covered so far (excluding infeasible-deemed ones).
    pub fn covered(&self) -> &BranchSet {
        &self.covered
    }

    /// Branches deemed infeasible so far.
    pub fn infeasible(&self) -> &BranchSet {
        &self.infeasible
    }

    /// Whether a branch counts as covered for saturation purposes (actually
    /// covered, or deemed infeasible).
    fn effectively_covered(&self, branch: BranchId) -> bool {
        self.covered.contains(branch) || self.infeasible.contains(branch)
    }

    /// Whether `branch` is saturated (Definition 3.2).
    pub fn is_saturated(&self, branch: BranchId) -> bool {
        if branch.index() >= self.total_branches() {
            return false;
        }
        if !self.effectively_covered(branch) {
            return false;
        }
        if !self.use_descendants {
            return true;
        }
        self.descendants[branch.index()]
            .iter()
            .all(|d| self.effectively_covered(d))
    }

    /// The current saturated set (`Saturate(X)` in the paper), the snapshot
    /// a [`crate::RepresentingFunction`] is built against.
    pub fn saturated_set(&self) -> BranchSet {
        let mut set = BranchSet::with_sites(self.num_sites);
        for site in 0..self.num_sites as u32 {
            for branch in [BranchId::true_of(site), BranchId::false_of(site)] {
                if self.is_saturated(branch) {
                    set.insert(branch);
                }
            }
        }
        set
    }

    /// Whether every branch of the program is saturated — the termination
    /// condition of the main loop.
    pub fn all_saturated(&self) -> bool {
        (0..self.num_sites as u32).all(|site| {
            self.is_saturated(BranchId::true_of(site))
                && self.is_saturated(BranchId::false_of(site))
        })
    }

    /// Whether every branch is actually covered (not counting infeasible).
    pub fn all_covered(&self) -> bool {
        self.covered.len() >= self.total_branches()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverme_runtime::{Cmp, Direction, TakenBranch};

    fn trace_of(decisions: &[(u32, bool)]) -> Trace {
        let mut t = Trace::new();
        for &(site, outcome) in decisions {
            t.push(TakenBranch {
                site,
                direction: Direction::from_outcome(outcome),
                op: Cmp::Le,
                lhs: 0.0,
                rhs: 0.0,
            });
        }
        t
    }

    #[test]
    fn covering_both_sides_of_a_leaf_site_saturates_it() {
        let mut tracker = SaturationTracker::new(1);
        tracker.record_trace(&trace_of(&[(0, true)]));
        assert!(tracker.is_saturated(BranchId::true_of(0)));
        assert!(!tracker.is_saturated(BranchId::false_of(0)));
        tracker.record_trace(&trace_of(&[(0, false)]));
        assert!(tracker.all_saturated());
    }

    #[test]
    fn paper_def32_example() {
        // The control-flow graph next to Definition 3.2: branch 0T leads to
        // conditional 1; X covers {0T, 0F, 1F}. Then Saturate(X) = {0F, 1F}:
        // 1T is not covered, and 0T has the uncovered descendant 1T.
        let mut tracker = SaturationTracker::new(2);
        // 0T followed by the inner conditional taking 1F.
        tracker.record_trace(&trace_of(&[(0, true), (1, false)]));
        // 0F (inner conditional not reached).
        tracker.record_trace(&trace_of(&[(0, false)]));

        assert!(tracker.is_saturated(BranchId::false_of(0)));
        assert!(tracker.is_saturated(BranchId::false_of(1)));
        assert!(
            !tracker.is_saturated(BranchId::true_of(1)),
            "1T not covered"
        );
        assert!(
            !tracker.is_saturated(BranchId::true_of(0)),
            "0T has uncovered descendant 1T"
        );

        let set = tracker.saturated_set();
        assert_eq!(set.len(), 2);
        assert!(set.contains(BranchId::false_of(0)));
        assert!(set.contains(BranchId::false_of(1)));
    }

    #[test]
    fn saturation_completes_once_descendants_are_covered() {
        let mut tracker = SaturationTracker::new(2);
        tracker.record_trace(&trace_of(&[(0, true), (1, false)]));
        tracker.record_trace(&trace_of(&[(0, false)]));
        tracker.record_trace(&trace_of(&[(0, true), (1, true)]));
        assert!(tracker.all_saturated());
        assert!(tracker.all_covered());
    }

    #[test]
    fn infeasible_branches_count_as_saturated() {
        let mut tracker = SaturationTracker::new(1);
        tracker.record_trace(&trace_of(&[(0, false)]));
        assert!(!tracker.all_saturated());
        tracker.mark_infeasible(BranchId::true_of(0));
        assert!(tracker.all_saturated());
        assert!(!tracker.all_covered(), "infeasible is not real coverage");
    }

    #[test]
    fn covered_only_mode_ignores_descendants() {
        let mut tracker = SaturationTracker::new(2).covered_only();
        tracker.record_trace(&trace_of(&[(0, true), (1, false)]));
        // In covered-only mode 0T is "saturated" even though descendant 1T
        // is not covered.
        assert!(tracker.is_saturated(BranchId::true_of(0)));
    }

    #[test]
    fn static_descendants_are_respected_and_not_overwritten() {
        // Static CFG: 0T's descendants are {1T, 1F}; everything else has none.
        let mut desc = vec![BranchSet::new(); 4];
        desc[BranchId::true_of(0).index()] = [BranchId::true_of(1), BranchId::false_of(1)]
            .into_iter()
            .collect();
        let mut tracker = SaturationTracker::with_static_descendants(2, desc);

        // Cover 0T and 1F only (no dynamic learning should add pairs).
        tracker.record_trace(&trace_of(&[(0, true), (1, false)]));
        assert!(!tracker.is_saturated(BranchId::true_of(0)));
        tracker.record_trace(&trace_of(&[(0, true), (1, true)]));
        assert!(tracker.is_saturated(BranchId::true_of(0)));
    }

    #[test]
    #[should_panic(expected = "one entry per branch")]
    fn static_descendants_must_match_site_count() {
        let _ = SaturationTracker::with_static_descendants(2, vec![BranchSet::new(); 3]);
    }

    #[test]
    fn record_covered_without_trace_adds_coverage_only() {
        let mut tracker = SaturationTracker::new(2);
        let covered: BranchSet = [BranchId::true_of(0), BranchId::true_of(1)]
            .into_iter()
            .collect();
        tracker.record_covered(&covered);
        assert!(tracker.covered().contains(BranchId::true_of(0)));
        // No descendant pair was learned, so 0T saturates as a leaf.
        assert!(tracker.is_saturated(BranchId::true_of(0)));
    }

    #[test]
    fn merge_from_unions_coverage_and_descendants() {
        // Shard A sees the nested path 0T -> 1F; shard B sees 0F only.
        let mut a = SaturationTracker::new(2);
        a.record_trace(&trace_of(&[(0, true), (1, false)]));
        let mut b = SaturationTracker::new(2);
        b.record_trace(&trace_of(&[(0, false)]));

        a.merge_from(&b);
        assert!(a.covered().contains(BranchId::true_of(0)));
        assert!(a.covered().contains(BranchId::false_of(0)));
        assert!(a.covered().contains(BranchId::false_of(1)));
        // The merged relation still knows 1T is an uncovered descendant of 0T.
        assert!(!a.is_saturated(BranchId::true_of(0)));
        assert!(a.is_saturated(BranchId::false_of(0)));
    }

    #[test]
    fn merge_from_drops_infeasible_verdicts_refuted_by_coverage() {
        // Shard A gave up on 0T; shard B actually covered it.
        let mut a = SaturationTracker::new(1);
        a.mark_infeasible(BranchId::true_of(0));
        let mut b = SaturationTracker::new(1);
        b.record_trace(&trace_of(&[(0, true)]));

        a.merge_from(&b);
        assert!(!a.infeasible().contains(BranchId::true_of(0)));
        assert!(a.covered().contains(BranchId::true_of(0)));
        // Unrefuted verdicts survive the merge.
        let mut c = SaturationTracker::new(1);
        c.mark_infeasible(BranchId::false_of(0));
        a.merge_from(&c);
        assert!(a.infeasible().contains(BranchId::false_of(0)));
        assert!(a.all_saturated());
    }

    #[test]
    #[should_panic(expected = "different programs")]
    fn merge_from_rejects_mismatched_site_counts() {
        let mut a = SaturationTracker::new(1);
        a.merge_from(&SaturationTracker::new(2));
    }

    #[test]
    fn out_of_range_branch_is_never_saturated() {
        let tracker = SaturationTracker::new(1);
        assert!(!tracker.is_saturated(BranchId::true_of(99)));
    }
}
