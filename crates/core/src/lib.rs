//! CoverMe: branch coverage-based testing for floating-point code via
//! unconstrained programming.
//!
//! This crate implements the primary contribution of Fu & Su, *"Achieving
//! High Coverage for Floating-point Code via Unconstrained Programming"*
//! (PLDI 2017):
//!
//! 1. derive a **representing function** `FOO_R` from the instrumented
//!    program under test ([`RepresentingFunction`]), designed so that
//!    `FOO_R(x) ≥ 0` for all `x` (condition C1) and `FOO_R(x) = 0` exactly
//!    when `x` saturates a branch that is not yet saturated (condition C2,
//!    Theorem 4.3);
//! 2. track which branches are **saturated** — covered together with all
//!    their descendant branches ([`SaturationTracker`], Definition 3.2);
//! 3. repeatedly **minimize** `FOO_R` with an off-the-shelf unconstrained
//!    programming backend (Basinhopping over Powell, from `coverme-optim`),
//!    collecting every minimum point with `FOO_R(x*) = 0` as a test input
//!    ([`CoverMe`], Algorithm 1);
//! 4. fan independent searches over a whole benchmark suite in parallel
//!    ([`Campaign`]), with deterministic per-function seeds and an
//!    aggregated per-function + suite-level [`CampaignReport`] — the layer
//!    the evaluation harnesses in `coverme-bench` drive;
//! 5. shard a *single* function's search across workers ([`shard`]): the
//!    `n_start` budget is split into strided slices with deterministic
//!    per-round seeds, and the per-shard saturation/coverage snapshots are
//!    merged. Campaigns schedule functions × shards as one work queue, so a
//!    trailing heavy function fans out over otherwise idle workers;
//! 6. run every evaluation through the **objective engine**
//!    ([`ObjectiveEngine`]): an allocation-free scalar fast path (one
//!    reusable `ExecCtx`, no trace, no covered-set inserts), a batch entry
//!    point minimizers feed whole candidate sets through, and a bit-exact
//!    memoization cache keyed on input bit patterns, with per-function
//!    evals / cache-hit / evals-per-second telemetry surfaced in
//!    [`TestReport`] and [`CampaignReport`];
//! 7. drive all of the above through an **epoch-resumable state machine**
//!    ([`SearchState`]): one shard's loop pauses at any round boundary
//!    with no behavior change, shards exchange commutative
//!    [`SaturationDelta`]s at deterministic barriers ([`sync`]) so later
//!    rounds stop chasing branches a sibling already saturated, and the
//!    campaign scheduler streams each function's merged row the moment it
//!    finishes ([`CampaignEvent`], `Campaign::run_with`).
//!
//! # Quick start
//!
//! ```
//! use coverme::{CoverMe, CoverMeConfig};
//! use coverme_runtime::{Cmp, ExecCtx, FnProgram};
//!
//! // The running example of the paper (Fig. 3):
//! //   l0: if (x <= 1) { x += 2.5; }
//! //       y = x * x;
//! //   l1: if (y == 4) { ... }
//! let foo = FnProgram::new("FOO", 1, 2, |input: &[f64], ctx: &mut ExecCtx| {
//!     let mut x = input[0];
//!     if ctx.branch(0, Cmp::Le, x, 1.0) {
//!         x += 2.5;
//!     }
//!     let y = x * x;
//!     if ctx.branch(1, Cmp::Eq, y, 4.0) {
//!         // hard-to-hit branch
//!     }
//! });
//!
//! let report = CoverMe::new(CoverMeConfig::default().seed(7)).run(&foo);
//! assert_eq!(report.coverage.branch_coverage_percent(), 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod corpus;
pub mod driver;
pub mod objective;
pub mod report;
pub mod representing;
pub mod saturation;
pub mod shard;
pub mod sync;

pub use campaign::{
    BudgetLedger, Campaign, CampaignConfig, CampaignEvent, CampaignReport, FunctionResult,
    FunctionStatus,
};
pub use corpus::{CorpusEntry, CorpusStats, CorpusStore};
pub use driver::{
    CancelToken, CoverMe, CoverMeConfig, EpochOutcome, InfeasiblePolicy, PenPolicy,
    SchedulerPolicy, SearchState, WarmStart, ABORT_PATIENCE,
};
pub use objective::{CacheMode, EngineTelemetry, ObjectiveEngine, ABORTED_VALUE};
pub use report::{EpochTelemetry, RoundOutcome, RoundRecord, TestReport};
pub use representing::{Evaluation, RepresentingFunction};
pub use saturation::{SaturationDelta, SaturationTracker};
pub use shard::{merge_shards, run_shard, AcceptedInput, MergedSearch, ShardOutcome};
pub use sync::{run_shards_synced, run_shards_synced_parallel, SyncPlan};

// Re-export the pieces users need to define programs without adding an
// explicit dependency on the runtime crate.
pub use coverme_optim::{FnObjective, LocalMethod, Objective};
pub use coverme_runtime::{
    BackendMode, BranchId, BranchSet, Cmp, CoverageMap, ExecCtx, FnProgram, Program, RunOutcome,
    SimdIsa, SIMD_ENV_VAR,
};
