//! Cross-shard saturation sync: deterministic epoch barriers that give a
//! sharded search back the sequential run's directed-search feedback.
//!
//! The sharded search of [`crate::shard`] trades feedback for parallelism:
//! every shard refines only its *own* saturation snapshot, so at high shard
//! counts each shard burns rounds minimizing distances to branches a
//! sibling already covered (Definition 4.2's retargeting never sees the
//! siblings' progress). This module restores that feedback at a chosen
//! granularity without giving the parallelism back.
//!
//! # The epoch plan
//!
//! A [`SyncPlan`] cuts the global round schedule `[0, n_start)` into
//! `sync_epochs` contiguous windows (as even as integer division allows).
//! Within one epoch every shard runs the rounds of its strided slice that
//! fall in the window — independent, embarrassingly parallel work, exactly
//! as before. At the boundary between epochs the shards rendezvous and
//! exchange [`SaturationDelta`]s: each still-active shard absorbs every
//! sibling's covered/descendant/infeasible knowledge, so its next rounds
//! minimize against the *union* snapshot — and a shard whose union
//! saturates everything exits immediately, spending no further
//! evaluations.
//!
//! The plan is a pure function of `(n_start, shards, sync_epochs)` and the
//! exchange is a union of commutative, idempotent deltas
//! ([`SaturationTracker::apply_delta`](crate::saturation::SaturationTracker::apply_delta)),
//! so the result is **deterministic per `(seed, shards, sync_epochs)`** —
//! independent of worker count, scheduling, or delta arrival order. The
//! sequential driver ([`run_shards_synced`]) and the thread-per-shard
//! barrier driver ([`run_shards_synced_parallel`]) produce bit-identical
//! outcomes, and the campaign's event-driven epoch scheduler
//! ([`crate::campaign`]) reuses [`exchange_deltas_gated`] so it agrees too.
//!
//! With `sync_epochs <= 1` there are no barriers and the search is
//! bit-identical to the pre-sync path (pinned by
//! `tests/sync_properties.rs`).
//!
//! # Warm starts
//!
//! A corpus warm start ([`CoverMeConfig::warm_start`]) composes with the
//! plan without touching it: each shard replays the corpus inputs and
//! verdicts inside its *first* `run_rounds` slice, before any scheduled
//! round, so replayed evaluations are charged to that epoch's ledger and
//! the exchange protocol sees replay-covered branches exactly like
//! round-covered ones. Determinism per `(seed, shards, sync_epochs)` is
//! preserved — the replay is itself a deterministic prefix — which is
//! what lets the corpus grant a schedule credit
//! ([`crate::driver::WarmStart::prior_coverage`]) even to sharded, synced
//! searches (pinned by `warm_started_synced_runs_stay_deterministic` in
//! `tests/sync_properties.rs`).

use std::sync::{Barrier, Mutex};

use coverme_runtime::Program;

use crate::driver::{CoverMeConfig, SearchState};
use crate::saturation::SaturationDelta;
use crate::shard::ShardOutcome;

/// The deterministic epoch schedule of one synced search — a pure function
/// of `(n_start, shards, sync_epochs)`, never of scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncPlan {
    n_start: usize,
    shards: usize,
    epochs: usize,
}

impl SyncPlan {
    /// Builds the plan a run of `config` follows (shard count and epoch
    /// count resolved through
    /// [`effective_shards`](CoverMeConfig::effective_shards) /
    /// [`effective_sync_epochs`](CoverMeConfig::effective_sync_epochs)).
    pub fn new(config: &CoverMeConfig) -> SyncPlan {
        SyncPlan {
            n_start: config.n_start,
            shards: config.effective_shards(),
            epochs: config.effective_sync_epochs(),
        }
    }

    /// Number of epochs (1 = no barriers, the pre-sync behavior).
    pub fn epochs(&self) -> usize {
        self.epochs
    }

    /// Number of shards the plan schedules.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Exclusive end of epoch `epoch`'s global-round window. Windows
    /// partition `[0, n_start)`; the last window absorbs the remainder.
    fn window_end(&self, epoch: usize) -> usize {
        if epoch + 1 >= self.epochs {
            self.n_start
        } else {
            (epoch + 1) * self.n_start / self.epochs
        }
    }

    /// How many rounds shard `shard`'s strided slice owns within epoch
    /// `epoch`'s window — the quota handed to
    /// [`SearchState::run_rounds`] for that epoch.
    pub fn rounds_in_epoch(&self, shard: usize, epoch: usize) -> usize {
        let lo = if epoch == 0 {
            0
        } else {
            self.window_end(epoch - 1)
        };
        let hi = self.window_end(epoch);
        strided_count(lo, hi, shard, self.shards)
    }
}

/// Number of integers `r` in `[lo, hi)` with `r ≡ shard (mod shards)`.
fn strided_count(lo: usize, hi: usize, shard: usize, shards: usize) -> usize {
    let below = |x: usize| {
        if x <= shard {
            0
        } else {
            (x - shard - 1) / shards + 1
        }
    };
    below(hi) - below(lo)
}

/// The barrier rendezvous. `states` and `published` are parallel arrays
/// indexed by shard: each present state whose tracker `version` moved
/// since its last publication refreshes its slot with a fresh
/// [`SaturationDelta`] (an idle or finished shard skips the re-broadcast
/// — the cached delta describes the same state), then every still-active
/// state absorbs the deltas *refreshed at this barrier*. Skipping the
/// unrefreshed slots is sound because every state present here has been
/// present (and absorbing) since the first barrier, so a slot last
/// refreshed at an earlier barrier was already absorbed then — re-applying
/// it would be an idempotent no-op; the fast path just skips building and
/// applying it (the delta fast-path satellite micro-opt). Finished
/// states absorb nothing — their search is over, and mutating their
/// snapshot would change the merged report depending on *when* they
/// finished, breaking worker-count determinism. Apply order is irrelevant
/// (deltas are commutative and idempotent), which is exactly why the
/// sequential, barrier-parallel and campaign schedulers can all share
/// this function and still agree bit for bit.
///
/// The adaptive gate ([`CoverMeConfig::adaptive_sync`]): when `adaptive` is set and *no*
/// shard's tracker `version()` moved since its last publication, the
/// exchange is skipped entirely — no delta is built or applied, and every
/// still-active state records a skipped barrier
/// ([`SearchState::note_barrier_skipped`]). Returns whether an exchange
/// happened. The gate decision is a pure function of the tracker versions
/// at the barrier, so it is deterministic per `(seed, shards,
/// sync_epochs)` regardless of worker count.
pub(crate) fn exchange_deltas_gated<'inv, P: Program>(
    states: &mut [Option<SearchState<'inv, P>>],
    published: &mut [Option<SaturationDelta>],
    adaptive: bool,
) -> bool {
    debug_assert_eq!(states.len(), published.len());
    // A slot is stale when its shard's tracker moved past the published
    // version (a `None` slot at the first barrier is always stale).
    let stale: Vec<bool> = states
        .iter()
        .zip(published.iter())
        .map(|(state, slot)| {
            state.as_ref().is_some_and(|state| {
                slot.as_ref().map(|delta| delta.version) != Some(state.tracker().version())
            })
        })
        .collect();
    if adaptive && !stale.contains(&true) {
        for state in states.iter_mut().flatten() {
            if !state.is_finished() {
                state.note_barrier_skipped();
            }
        }
        return false;
    }
    for ((slot, state), refresh) in published.iter_mut().zip(states.iter()).zip(&stale) {
        if *refresh {
            *slot = Some(
                state
                    .as_ref()
                    .expect("stale implies present")
                    .extract_delta(),
            );
        }
    }
    for (index, state) in states.iter_mut().enumerate() {
        let Some(state) = state else { continue };
        if state.is_finished() {
            continue;
        }
        for (peer, delta) in published.iter().enumerate() {
            if peer == index || !stale[peer] {
                continue;
            }
            if let Some(delta) = delta {
                state.absorb_delta(delta);
            }
        }
    }
    true
}

/// Covered-branch count of the union of every published delta — the
/// signal the adaptive densify decision keys on (coverage grew at this
/// barrier ⇒ split the next epoch window around an extra gated barrier).
/// A pure function of the published slots, so every driver computes the
/// same value.
fn published_union_covered(published: &[Option<SaturationDelta>]) -> usize {
    let mut slots = published.iter().flatten();
    let Some(first) = slots.next() else { return 0 };
    let mut union = first.covered().clone();
    for delta in slots {
        union.union_with(delta.covered());
    }
    union.len()
}

/// Splits an epoch quota of `quota` rounds into `halves` contiguous
/// sub-slices and returns the length of sub-slice `half` (the first half
/// takes the odd round). The sub-slices partition the quota, so adaptive
/// densification never changes *which* rounds run — only where the extra
/// gated barrier falls.
fn split_quota(quota: usize, halves: usize, half: usize) -> usize {
    debug_assert!(half < halves);
    if halves <= 1 {
        return quota;
    }
    let first = quota.div_ceil(2);
    if half == 0 {
        first
    } else {
        quota - first
    }
}

/// Runs every shard of a synced search sequentially on the calling thread:
/// epoch by epoch, all shards advance through the current window, then the
/// rendezvous exchanges deltas. Returns the shard outcomes in shard order
/// — bit-identical to [`run_shards_synced_parallel`] with the same
/// configuration. The shard and epoch counts are normalized through
/// [`effective_shards`](CoverMeConfig::effective_shards) /
/// [`effective_sync_epochs`](CoverMeConfig::effective_sync_epochs), so a
/// raw configuration behaves exactly as it would inside
/// [`CoverMe`](crate::CoverMe) or a campaign.
///
/// With `sync_epochs <= 1` this degenerates to running each shard to
/// exhaustion with no exchange — the pre-sync sharded search.
pub fn run_shards_synced<P: Program>(config: &CoverMeConfig, program: &P) -> Vec<ShardOutcome> {
    let plan = SyncPlan::new(config);
    // The states' stride must agree with the plan's (possibly clamped)
    // shard count, or part of the schedule would silently never run.
    let config = CoverMeConfig {
        shards: plan.shards(),
        ..config.clone()
    };
    let adaptive = config.adaptive_sync;
    let mut states: Vec<Option<SearchState<'_, P>>> = (0..plan.shards())
        .map(|index| Some(SearchState::new(&config, program, index)))
        .collect();
    let mut published: Vec<Option<SaturationDelta>> = vec![None; plan.shards()];
    // Adaptive state: whether the previous boundary's exchange carried new
    // coverage (split the next window in two), and the union covered count
    // at the previous exchange (to detect growth). Both are pure functions
    // of the published slots, so the parallel driver reproduces them.
    let mut densify_next = false;
    let mut prev_union_covered = 0usize;
    for epoch in 0..plan.epochs() {
        let halves = if adaptive && densify_next { 2 } else { 1 };
        for half in 0..halves {
            for (index, state) in states.iter_mut().enumerate() {
                let state = state.as_mut().expect("state present");
                if !state.is_finished() {
                    let quota = split_quota(plan.rounds_in_epoch(index, epoch), halves, half);
                    state.run_rounds(quota);
                }
            }
            let mid_window = half + 1 < halves;
            if !mid_window && epoch + 1 >= plan.epochs() {
                break;
            }
            let any_active = states
                .iter()
                .any(|s| s.as_ref().is_some_and(|s| !s.is_finished()));
            if !any_active {
                densify_next = false;
                continue;
            }
            let exchanged = exchange_deltas_gated(&mut states, &mut published, adaptive);
            if adaptive && !mid_window {
                let union_covered = published_union_covered(&published);
                densify_next = exchanged && union_covered > prev_union_covered;
                prev_union_covered = union_covered;
            }
        }
    }
    states
        .into_iter()
        .map(|state| state.expect("state present").finish())
        .collect()
}

/// Runs every shard of a synced search on its own scoped worker thread,
/// rendezvousing at a [`Barrier`] between epochs: publish the delta (only
/// when the tracker's `version` moved — an idle shard's slot keeps its
/// cached, still-accurate delta), wait, absorb the deltas refreshed at
/// this barrier (the same fast path as [`exchange_deltas_gated`], recognized by
/// a barrier-sequence stamp on each slot), wait again (so nobody's next
/// publish overwrites a slot a slow sibling is still reading). Under
/// [`CoverMeConfig::adaptive_sync`] every thread additionally computes the
/// same gate and densify decisions as the sequential driver — both are
/// pure functions of the stamped slots all threads see between the two
/// waits. Outcomes are bit-identical to [`run_shards_synced`] — the
/// barrier only buys the wall-clock of the slowest shard per epoch
/// instead of the sum.
pub fn run_shards_synced_parallel<P: Program + Sync>(
    config: &CoverMeConfig,
    program: &P,
) -> Vec<ShardOutcome> {
    let plan = SyncPlan::new(config);
    let shards = plan.shards();
    if shards <= 1 || plan.epochs() <= 1 {
        return run_shards_synced(config, program);
    }
    // Same stride normalization as the sequential driver.
    let config = CoverMeConfig {
        shards,
        ..config.clone()
    };
    let adaptive = config.adaptive_sync;
    let barrier = Barrier::new(shards);
    // Each slot carries the publishing shard's delta plus the rendezvous
    // sequence number at which it was last refreshed, so absorbers can
    // tell "refreshed now" from "cached from an earlier barrier".
    let published: Vec<Mutex<Option<(usize, SaturationDelta)>>> =
        (0..shards).map(|_| Mutex::new(None)).collect();
    let (config, barrier, published) = (&config, &barrier, &published);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|index| {
                scope.spawn(move || {
                    let mut state = SearchState::new(config, program, index);
                    let mut last_published: Option<u64> = None;
                    // Every thread keeps these in lockstep: the inputs to
                    // the decisions are the shared slots, which all
                    // threads read between the same two barrier waits.
                    let mut rendezvous = 0usize;
                    let mut densify_next = false;
                    let mut prev_union_covered = 0usize;
                    for epoch in 0..plan.epochs() {
                        let halves = if adaptive && densify_next { 2 } else { 1 };
                        for half in 0..halves {
                            if !state.is_finished() {
                                let quota =
                                    split_quota(plan.rounds_in_epoch(index, epoch), halves, half);
                                state.run_rounds(quota);
                            }
                            let mid_window = half + 1 < halves;
                            if !mid_window && epoch + 1 == plan.epochs() {
                                break;
                            }
                            let version = state.tracker().version();
                            if last_published != Some(version) {
                                *published[index].lock().expect("delta slot poisoned") =
                                    Some((rendezvous, state.extract_delta()));
                                last_published = Some(version);
                            }
                            barrier.wait();
                            // Between the waits the slots are frozen:
                            // every thread sees the same refresh stamps
                            // and computes the same gate/densify verdicts.
                            let mut any_refreshed = false;
                            let mut union = coverme_runtime::BranchSet::new();
                            for slot in published.iter() {
                                let slot = slot.lock().expect("delta slot poisoned");
                                if let Some((stamp, delta)) = slot.as_ref() {
                                    any_refreshed |= *stamp == rendezvous;
                                    if adaptive && !mid_window {
                                        union.union_with(delta.covered());
                                    }
                                }
                            }
                            let exchange = !adaptive || any_refreshed;
                            if exchange {
                                if !state.is_finished() {
                                    for (peer, slot) in published.iter().enumerate() {
                                        if peer == index {
                                            continue;
                                        }
                                        let slot = slot.lock().expect("delta slot poisoned");
                                        if let Some((stamp, delta)) = slot.as_ref() {
                                            if *stamp == rendezvous {
                                                state.absorb_delta(delta);
                                            }
                                        }
                                    }
                                }
                            } else if !state.is_finished() {
                                state.note_barrier_skipped();
                            }
                            if adaptive && !mid_window {
                                let union_covered = union.len();
                                densify_next = exchange && union_covered > prev_union_covered;
                                prev_union_covered = union_covered;
                            }
                            barrier.wait();
                            rendezvous += 1;
                        }
                    }
                    state.finish()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("sync shard worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::InfeasiblePolicy;
    use crate::shard::merge_shards;
    use crate::{CoverMe, CoverMeConfig};
    use coverme_runtime::{Cmp, ExecCtx, FnProgram};

    /// The paper's Fig. 3 example program.
    fn paper_example() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
        FnProgram::new("FOO", 1, 2, |input: &[f64], ctx: &mut ExecCtx| {
            let mut x = input[0];
            if ctx.branch(0, Cmp::Le, x, 1.0) {
                x += 2.5;
            }
            let y = x * x;
            if ctx.branch(1, Cmp::Eq, y, 4.0) {
                // target
            }
        })
    }

    fn config(shards: usize, sync_epochs: usize) -> CoverMeConfig {
        CoverMeConfig::default()
            .n_start(64)
            .n_iter(5)
            .seed(11)
            .shards(shards)
            .sync_epochs(sync_epochs)
    }

    #[test]
    fn plan_windows_partition_the_budget() {
        for n_start in [1usize, 7, 48, 80, 500] {
            for shards in 1..=5usize {
                for epochs in 1..=6usize {
                    let plan = SyncPlan {
                        n_start,
                        shards,
                        epochs,
                    };
                    let mut total = 0usize;
                    for shard in 0..shards {
                        let per_shard: usize =
                            (0..epochs).map(|e| plan.rounds_in_epoch(shard, e)).sum();
                        let expected = strided_count(0, n_start, shard, shards);
                        assert_eq!(per_shard, expected, "{n_start}/{shards}/{epochs}/{shard}");
                        total += per_shard;
                    }
                    assert_eq!(total, n_start, "{n_start}/{shards}/{epochs}");
                }
            }
        }
    }

    #[test]
    fn strided_count_matches_enumeration() {
        for lo in 0..12usize {
            for hi in lo..14usize {
                for shards in 1..=4usize {
                    for shard in 0..shards {
                        let expected = (lo..hi).filter(|r| r % shards == shard).count();
                        assert_eq!(strided_count(lo, hi, shard, shards), expected);
                    }
                }
            }
        }
    }

    #[test]
    fn sequential_and_parallel_synced_runs_agree() {
        let program = paper_example();
        let cfg = config(4, 4);
        let sequential = merge_shards(
            program.name(),
            run_shards_synced(&cfg.clone().shards(4), &program),
        );
        let parallel = merge_shards(
            program.name(),
            run_shards_synced_parallel(&cfg.shards(4), &program),
        );
        assert_eq!(sequential.report.inputs, parallel.report.inputs);
        assert_eq!(sequential.report.coverage, parallel.report.coverage);
        assert_eq!(sequential.report.evaluations, parallel.report.evaluations);
        assert_eq!(sequential.report.rounds, parallel.report.rounds);
    }

    #[test]
    fn coverme_run_routes_sync_and_stays_deterministic() {
        let program = paper_example();
        let a = CoverMe::new(config(3, 4)).run(&program);
        let b = CoverMe::new(config(3, 4)).run(&program);
        let c = CoverMe::new(config(3, 4)).run_parallel(&program);
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.inputs, c.inputs);
        assert_eq!(a.coverage, c.coverage);
        assert_eq!(a.evaluations, c.evaluations);
        assert_eq!(a.branch_coverage_percent(), 100.0, "{a}");
    }

    #[test]
    fn sync_epochs_one_matches_the_presync_path() {
        let program = paper_example();
        let synced = CoverMe::new(config(3, 1)).run(&program);
        let presync = CoverMe::new(config(3, 0)).run(&program);
        assert_eq!(synced.inputs, presync.inputs);
        assert_eq!(synced.coverage, presync.coverage);
        assert_eq!(synced.evaluations, presync.evaluations);
    }

    #[test]
    fn absorbed_saturation_short_circuits_a_shard() {
        // The eval-savings mechanism of the sync layer, in isolation: a
        // shard whose absorbed union saturates everything exits without
        // spending a single evaluation on its own slice.
        let program = paper_example();
        let cfg = config(2, 4);
        let mut a = crate::SearchState::new(&cfg, &program, 0);
        a.run_to_exhaustion();
        assert!(a.tracker().all_saturated(), "shard 0 saturates the example");
        let mut b = crate::SearchState::new(&cfg, &program, 1);
        b.absorb_delta(&a.extract_delta());
        assert_eq!(b.run_rounds(usize::MAX), crate::EpochOutcome::Saturated);
        assert_eq!(b.evaluations(), 0, "no evals after absorbed saturation");
        assert_eq!(b.rounds_run(), 0);
        // Without the delta the same shard burns real rounds on branches
        // its sibling already saturated.
        let blind = crate::shard::run_shard(&cfg, &program, 1);
        assert!(blind.evaluations > 0);
    }

    /// A program no shard can saturate (the `y == -1` branch is infeasible
    /// and the heuristic is disabled), so every shard runs every epoch —
    /// exercising all barriers.
    fn unsaturable_example() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
        FnProgram::new("FOO_INF", 1, 2, |input: &[f64], ctx: &mut ExecCtx| {
            let mut x = input[0];
            if ctx.branch(0, Cmp::Le, x, 1.0) {
                x += 1.0;
            }
            let y = x * x;
            if ctx.branch(1, Cmp::Eq, y, -1.0) {
                // unreachable
            }
        })
    }

    #[test]
    fn raw_shard_counts_are_normalized_like_everywhere_else() {
        // shards = 4 with n_start = 32 clamps to 2 effective shards; a raw
        // configuration handed straight to the sync drivers must still run
        // the whole schedule (regression: the states used to stride by the
        // raw count, silently dropping half the rounds).
        let program = unsaturable_example();
        let cfg = CoverMeConfig::default()
            .n_start(32)
            .n_iter(3)
            .seed(5)
            .shards(4)
            .sync_epochs(2)
            .infeasible_policy(InfeasiblePolicy::Disabled);
        let outcomes = run_shards_synced(&cfg, &program);
        assert_eq!(outcomes.len(), 2, "clamped to 2 shards");
        let rounds: usize = outcomes.iter().map(|o| o.rounds.len()).sum();
        assert_eq!(rounds, 32, "every scheduled round ran");
        let parallel = run_shards_synced_parallel(&cfg, &program);
        let parallel_rounds: usize = parallel.iter().map(|o| o.rounds.len()).sum();
        assert_eq!(parallel_rounds, 32);
    }

    #[test]
    fn adaptive_sync_agrees_between_sequential_and_parallel_drivers() {
        // The gate and densify decisions are pure functions of the
        // published slots, so both drivers must make the same calls and
        // produce bit-identical outcomes.
        let program = unsaturable_example();
        let cfg = CoverMeConfig::default()
            .n_start(64)
            .n_iter(4)
            .seed(17)
            .shards(4)
            .sync_epochs(4)
            .adaptive_sync(true)
            .infeasible_policy(InfeasiblePolicy::Disabled);
        let sequential = merge_shards(program.name(), run_shards_synced(&cfg, &program));
        let parallel = merge_shards(program.name(), run_shards_synced_parallel(&cfg, &program));
        assert_eq!(sequential.report.inputs, parallel.report.inputs);
        assert_eq!(sequential.report.coverage, parallel.report.coverage);
        assert_eq!(sequential.report.evaluations, parallel.report.evaluations);
        assert_eq!(sequential.report.rounds, parallel.report.rounds);
        assert_eq!(
            sequential.report.barriers_skipped,
            parallel.report.barriers_skipped
        );
    }

    #[test]
    fn adaptive_gate_counts_skipped_barriers() {
        // A saturated-early search stops moving its trackers, so later
        // barriers carry no new versions and the adaptive gate skips them.
        let program = paper_example();
        let cfg = config(4, 4).adaptive_sync(true);
        let adaptive = merge_shards(program.name(), run_shards_synced(&cfg, &program));
        let plain = merge_shards(
            program.name(),
            run_shards_synced(&cfg.clone().adaptive_sync(false), &program),
        );
        // The gate and densify never change which rounds run or what the
        // trackers learn — only barrier bookkeeping.
        assert_eq!(adaptive.report.inputs, plain.report.inputs);
        assert_eq!(adaptive.report.coverage, plain.report.coverage);
        assert_eq!(plain.report.barriers_skipped, 0, "gate off: no skips");
    }

    #[test]
    fn delta_fast_path_is_invisible_in_outcomes() {
        // The stale-slot fast path (skip rebuilding/reapplying unchanged
        // deltas) must not change any reported outcome relative to what
        // the search learns — pin the full report fingerprint across both
        // drivers on a program that exercises idle barriers.
        let program = unsaturable_example();
        let cfg = CoverMeConfig::default()
            .n_start(48)
            .n_iter(3)
            .seed(23)
            .shards(3)
            .sync_epochs(6)
            .infeasible_policy(InfeasiblePolicy::Disabled);
        let sequential = merge_shards(program.name(), run_shards_synced(&cfg, &program));
        let parallel = merge_shards(program.name(), run_shards_synced_parallel(&cfg, &program));
        assert_eq!(sequential.report.inputs, parallel.report.inputs);
        assert_eq!(sequential.report.evaluations, parallel.report.evaluations);
        assert_eq!(sequential.report.rounds, parallel.report.rounds);
        assert_eq!(sequential.report.barriers_skipped, 0);
        assert_eq!(parallel.report.barriers_skipped, 0);
    }

    #[test]
    fn synced_report_carries_per_epoch_telemetry() {
        let program = unsaturable_example();
        let cfg = config(4, 4).infeasible_policy(InfeasiblePolicy::Disabled);
        let report = CoverMe::new(cfg).run(&program);
        assert!(report.epochs.len() > 1, "sync run has multiple epochs");
        let total_rounds: usize = report.epochs.iter().map(|e| e.rounds).sum();
        assert_eq!(total_rounds, report.rounds.len());
        let total_evals: usize = report.epochs.iter().map(|e| e.evaluations).sum();
        assert_eq!(total_evals, report.evaluations);
        // Epoch indices are dense and ordered.
        for (index, epoch) in report.epochs.iter().enumerate() {
            assert_eq!(epoch.epoch, index);
        }
        // Every barrier exchanged deltas among the 4 still-active shards.
        assert!(report.epochs.iter().skip(1).any(|e| e.deltas_absorbed > 0));
    }
}
