//! Cross-shard saturation sync: deterministic epoch barriers that give a
//! sharded search back the sequential run's directed-search feedback.
//!
//! The sharded search of [`crate::shard`] trades feedback for parallelism:
//! every shard refines only its *own* saturation snapshot, so at high shard
//! counts each shard burns rounds minimizing distances to branches a
//! sibling already covered (Definition 4.2's retargeting never sees the
//! siblings' progress). This module restores that feedback at a chosen
//! granularity without giving the parallelism back.
//!
//! # The epoch plan
//!
//! A [`SyncPlan`] cuts the global round schedule `[0, n_start)` into
//! `sync_epochs` contiguous windows (as even as integer division allows).
//! Within one epoch every shard runs the rounds of its strided slice that
//! fall in the window — independent, embarrassingly parallel work, exactly
//! as before. At the boundary between epochs the shards rendezvous and
//! exchange [`SaturationDelta`]s: each still-active shard absorbs every
//! sibling's covered/descendant/infeasible knowledge, so its next rounds
//! minimize against the *union* snapshot — and a shard whose union
//! saturates everything exits immediately, spending no further
//! evaluations.
//!
//! The plan is a pure function of `(n_start, shards, sync_epochs)` and the
//! exchange is a union of commutative, idempotent deltas
//! ([`SaturationTracker::apply_delta`](crate::saturation::SaturationTracker::apply_delta)),
//! so the result is **deterministic per `(seed, shards, sync_epochs)`** —
//! independent of worker count, scheduling, or delta arrival order. The
//! sequential driver ([`run_shards_synced`]) and the thread-per-shard
//! barrier driver ([`run_shards_synced_parallel`]) produce bit-identical
//! outcomes, and the campaign's event-driven epoch scheduler
//! ([`crate::campaign`]) reuses [`exchange_deltas`] so it agrees too.
//!
//! With `sync_epochs <= 1` there are no barriers and the search is
//! bit-identical to the pre-sync path (pinned by
//! `tests/sync_properties.rs`).

use std::sync::{Barrier, Mutex};

use coverme_runtime::Program;

use crate::driver::{CoverMeConfig, SearchState};
use crate::saturation::SaturationDelta;
use crate::shard::ShardOutcome;

/// The deterministic epoch schedule of one synced search — a pure function
/// of `(n_start, shards, sync_epochs)`, never of scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncPlan {
    n_start: usize,
    shards: usize,
    epochs: usize,
}

impl SyncPlan {
    /// Builds the plan a run of `config` follows (shard count and epoch
    /// count resolved through
    /// [`effective_shards`](CoverMeConfig::effective_shards) /
    /// [`effective_sync_epochs`](CoverMeConfig::effective_sync_epochs)).
    pub fn new(config: &CoverMeConfig) -> SyncPlan {
        SyncPlan {
            n_start: config.n_start,
            shards: config.effective_shards(),
            epochs: config.effective_sync_epochs(),
        }
    }

    /// Number of epochs (1 = no barriers, the pre-sync behavior).
    pub fn epochs(&self) -> usize {
        self.epochs
    }

    /// Number of shards the plan schedules.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Exclusive end of epoch `epoch`'s global-round window. Windows
    /// partition `[0, n_start)`; the last window absorbs the remainder.
    fn window_end(&self, epoch: usize) -> usize {
        if epoch + 1 >= self.epochs {
            self.n_start
        } else {
            (epoch + 1) * self.n_start / self.epochs
        }
    }

    /// How many rounds shard `shard`'s strided slice owns within epoch
    /// `epoch`'s window — the quota handed to
    /// [`SearchState::run_rounds`] for that epoch.
    pub fn rounds_in_epoch(&self, shard: usize, epoch: usize) -> usize {
        let lo = if epoch == 0 {
            0
        } else {
            self.window_end(epoch - 1)
        };
        let hi = self.window_end(epoch);
        strided_count(lo, hi, shard, self.shards)
    }
}

/// Number of integers `r` in `[lo, hi)` with `r ≡ shard (mod shards)`.
fn strided_count(lo: usize, hi: usize, shard: usize, shards: usize) -> usize {
    let below = |x: usize| {
        if x <= shard {
            0
        } else {
            (x - shard - 1) / shards + 1
        }
    };
    below(hi) - below(lo)
}

/// The barrier rendezvous. `states` and `published` are parallel arrays
/// indexed by shard: each present state whose tracker `version` moved
/// since its last publication refreshes its slot with a fresh
/// [`SaturationDelta`] (an idle or finished shard skips the re-broadcast
/// — the cached delta describes the same state), then every still-active
/// state absorbs every sibling's published delta. Finished states absorb
/// nothing — their search is over, and mutating their snapshot would
/// change the merged report depending on *when* they finished, breaking
/// worker-count determinism. Apply order is irrelevant (deltas are
/// commutative and idempotent), which is exactly why the sequential,
/// barrier-parallel and campaign schedulers can all share this function
/// and still agree bit for bit.
pub(crate) fn exchange_deltas<'inv, P: Program>(
    states: &mut [Option<SearchState<'inv, P>>],
    published: &mut [Option<SaturationDelta>],
) {
    debug_assert_eq!(states.len(), published.len());
    for (slot, state) in published.iter_mut().zip(states.iter()) {
        if let Some(state) = state {
            let version = state.tracker().version();
            if slot.as_ref().map(|delta| delta.version) != Some(version) {
                *slot = Some(state.extract_delta());
            }
        }
    }
    for (index, state) in states.iter_mut().enumerate() {
        let Some(state) = state else { continue };
        if state.is_finished() {
            continue;
        }
        for (peer, delta) in published.iter().enumerate() {
            if peer == index {
                continue;
            }
            if let Some(delta) = delta {
                state.absorb_delta(delta);
            }
        }
    }
}

/// Runs every shard of a synced search sequentially on the calling thread:
/// epoch by epoch, all shards advance through the current window, then the
/// rendezvous exchanges deltas. Returns the shard outcomes in shard order
/// — bit-identical to [`run_shards_synced_parallel`] with the same
/// configuration. The shard and epoch counts are normalized through
/// [`effective_shards`](CoverMeConfig::effective_shards) /
/// [`effective_sync_epochs`](CoverMeConfig::effective_sync_epochs), so a
/// raw configuration behaves exactly as it would inside
/// [`CoverMe`](crate::CoverMe) or a campaign.
///
/// With `sync_epochs <= 1` this degenerates to running each shard to
/// exhaustion with no exchange — the pre-sync sharded search.
pub fn run_shards_synced<P: Program>(config: &CoverMeConfig, program: &P) -> Vec<ShardOutcome> {
    let plan = SyncPlan::new(config);
    // The states' stride must agree with the plan's (possibly clamped)
    // shard count, or part of the schedule would silently never run.
    let config = CoverMeConfig {
        shards: plan.shards(),
        ..config.clone()
    };
    let mut states: Vec<Option<SearchState<'_, P>>> = (0..plan.shards())
        .map(|index| Some(SearchState::new(&config, program, index)))
        .collect();
    let mut published: Vec<Option<SaturationDelta>> = vec![None; plan.shards()];
    for epoch in 0..plan.epochs() {
        for (index, state) in states.iter_mut().enumerate() {
            let state = state.as_mut().expect("state present");
            if !state.is_finished() {
                state.run_rounds(plan.rounds_in_epoch(index, epoch));
            }
        }
        let any_active = states
            .iter()
            .any(|s| s.as_ref().is_some_and(|s| !s.is_finished()));
        if epoch + 1 < plan.epochs() && any_active {
            exchange_deltas(&mut states, &mut published);
        }
    }
    states
        .into_iter()
        .map(|state| state.expect("state present").finish())
        .collect()
}

/// Runs every shard of a synced search on its own scoped worker thread,
/// rendezvousing at a [`Barrier`] between epochs: publish the delta (only
/// when the tracker's `version` moved — an idle shard's slot keeps its
/// cached, still-accurate delta), wait, absorb every sibling's published
/// delta, wait again (so nobody's next publish overwrites a slot a slow
/// sibling is still reading). Outcomes are bit-identical to
/// [`run_shards_synced`] — the barrier only buys the wall-clock of the
/// slowest shard per epoch instead of the sum.
pub fn run_shards_synced_parallel<P: Program + Sync>(
    config: &CoverMeConfig,
    program: &P,
) -> Vec<ShardOutcome> {
    let plan = SyncPlan::new(config);
    let shards = plan.shards();
    if shards <= 1 || plan.epochs() <= 1 {
        return run_shards_synced(config, program);
    }
    // Same stride normalization as the sequential driver.
    let config = CoverMeConfig {
        shards,
        ..config.clone()
    };
    let barrier = Barrier::new(shards);
    let published: Vec<Mutex<Option<SaturationDelta>>> =
        (0..shards).map(|_| Mutex::new(None)).collect();
    let (config, barrier, published) = (&config, &barrier, &published);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|index| {
                scope.spawn(move || {
                    let mut state = SearchState::new(config, program, index);
                    let mut last_published: Option<u64> = None;
                    for epoch in 0..plan.epochs() {
                        if !state.is_finished() {
                            state.run_rounds(plan.rounds_in_epoch(index, epoch));
                        }
                        if epoch + 1 == plan.epochs() {
                            break;
                        }
                        let version = state.tracker().version();
                        if last_published != Some(version) {
                            *published[index].lock().expect("delta slot poisoned") =
                                Some(state.extract_delta());
                            last_published = Some(version);
                        }
                        barrier.wait();
                        if !state.is_finished() {
                            for (peer, slot) in published.iter().enumerate() {
                                if peer == index {
                                    continue;
                                }
                                let delta = slot.lock().expect("delta slot poisoned");
                                state.absorb_delta(delta.as_ref().expect("peer published"));
                            }
                        }
                        barrier.wait();
                    }
                    state.finish()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("sync shard worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::InfeasiblePolicy;
    use crate::shard::merge_shards;
    use crate::{CoverMe, CoverMeConfig};
    use coverme_runtime::{Cmp, ExecCtx, FnProgram};

    /// The paper's Fig. 3 example program.
    fn paper_example() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
        FnProgram::new("FOO", 1, 2, |input: &[f64], ctx: &mut ExecCtx| {
            let mut x = input[0];
            if ctx.branch(0, Cmp::Le, x, 1.0) {
                x += 2.5;
            }
            let y = x * x;
            if ctx.branch(1, Cmp::Eq, y, 4.0) {
                // target
            }
        })
    }

    fn config(shards: usize, sync_epochs: usize) -> CoverMeConfig {
        CoverMeConfig::default()
            .n_start(64)
            .n_iter(5)
            .seed(11)
            .shards(shards)
            .sync_epochs(sync_epochs)
    }

    #[test]
    fn plan_windows_partition_the_budget() {
        for n_start in [1usize, 7, 48, 80, 500] {
            for shards in 1..=5usize {
                for epochs in 1..=6usize {
                    let plan = SyncPlan {
                        n_start,
                        shards,
                        epochs,
                    };
                    let mut total = 0usize;
                    for shard in 0..shards {
                        let per_shard: usize =
                            (0..epochs).map(|e| plan.rounds_in_epoch(shard, e)).sum();
                        let expected = strided_count(0, n_start, shard, shards);
                        assert_eq!(per_shard, expected, "{n_start}/{shards}/{epochs}/{shard}");
                        total += per_shard;
                    }
                    assert_eq!(total, n_start, "{n_start}/{shards}/{epochs}");
                }
            }
        }
    }

    #[test]
    fn strided_count_matches_enumeration() {
        for lo in 0..12usize {
            for hi in lo..14usize {
                for shards in 1..=4usize {
                    for shard in 0..shards {
                        let expected = (lo..hi).filter(|r| r % shards == shard).count();
                        assert_eq!(strided_count(lo, hi, shard, shards), expected);
                    }
                }
            }
        }
    }

    #[test]
    fn sequential_and_parallel_synced_runs_agree() {
        let program = paper_example();
        let cfg = config(4, 4);
        let sequential = merge_shards(
            program.name(),
            run_shards_synced(&cfg.clone().shards(4), &program),
        );
        let parallel = merge_shards(
            program.name(),
            run_shards_synced_parallel(&cfg.shards(4), &program),
        );
        assert_eq!(sequential.report.inputs, parallel.report.inputs);
        assert_eq!(sequential.report.coverage, parallel.report.coverage);
        assert_eq!(sequential.report.evaluations, parallel.report.evaluations);
        assert_eq!(sequential.report.rounds, parallel.report.rounds);
    }

    #[test]
    fn coverme_run_routes_sync_and_stays_deterministic() {
        let program = paper_example();
        let a = CoverMe::new(config(3, 4)).run(&program);
        let b = CoverMe::new(config(3, 4)).run(&program);
        let c = CoverMe::new(config(3, 4)).run_parallel(&program);
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.inputs, c.inputs);
        assert_eq!(a.coverage, c.coverage);
        assert_eq!(a.evaluations, c.evaluations);
        assert_eq!(a.branch_coverage_percent(), 100.0, "{a}");
    }

    #[test]
    fn sync_epochs_one_matches_the_presync_path() {
        let program = paper_example();
        let synced = CoverMe::new(config(3, 1)).run(&program);
        let presync = CoverMe::new(config(3, 0)).run(&program);
        assert_eq!(synced.inputs, presync.inputs);
        assert_eq!(synced.coverage, presync.coverage);
        assert_eq!(synced.evaluations, presync.evaluations);
    }

    #[test]
    fn absorbed_saturation_short_circuits_a_shard() {
        // The eval-savings mechanism of the sync layer, in isolation: a
        // shard whose absorbed union saturates everything exits without
        // spending a single evaluation on its own slice.
        let program = paper_example();
        let cfg = config(2, 4);
        let mut a = crate::SearchState::new(&cfg, &program, 0);
        a.run_to_exhaustion();
        assert!(a.tracker().all_saturated(), "shard 0 saturates the example");
        let mut b = crate::SearchState::new(&cfg, &program, 1);
        b.absorb_delta(&a.extract_delta());
        assert_eq!(b.run_rounds(usize::MAX), crate::EpochOutcome::Saturated);
        assert_eq!(b.evaluations(), 0, "no evals after absorbed saturation");
        assert_eq!(b.rounds_run(), 0);
        // Without the delta the same shard burns real rounds on branches
        // its sibling already saturated.
        let blind = crate::shard::run_shard(&cfg, &program, 1);
        assert!(blind.evaluations > 0);
    }

    /// A program no shard can saturate (the `y == -1` branch is infeasible
    /// and the heuristic is disabled), so every shard runs every epoch —
    /// exercising all barriers.
    fn unsaturable_example() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
        FnProgram::new("FOO_INF", 1, 2, |input: &[f64], ctx: &mut ExecCtx| {
            let mut x = input[0];
            if ctx.branch(0, Cmp::Le, x, 1.0) {
                x += 1.0;
            }
            let y = x * x;
            if ctx.branch(1, Cmp::Eq, y, -1.0) {
                // unreachable
            }
        })
    }

    #[test]
    fn raw_shard_counts_are_normalized_like_everywhere_else() {
        // shards = 4 with n_start = 32 clamps to 2 effective shards; a raw
        // configuration handed straight to the sync drivers must still run
        // the whole schedule (regression: the states used to stride by the
        // raw count, silently dropping half the rounds).
        let program = unsaturable_example();
        let cfg = CoverMeConfig::default()
            .n_start(32)
            .n_iter(3)
            .seed(5)
            .shards(4)
            .sync_epochs(2)
            .infeasible_policy(InfeasiblePolicy::Disabled);
        let outcomes = run_shards_synced(&cfg, &program);
        assert_eq!(outcomes.len(), 2, "clamped to 2 shards");
        let rounds: usize = outcomes.iter().map(|o| o.rounds.len()).sum();
        assert_eq!(rounds, 32, "every scheduled round ran");
        let parallel = run_shards_synced_parallel(&cfg, &program);
        let parallel_rounds: usize = parallel.iter().map(|o| o.rounds.len()).sum();
        assert_eq!(parallel_rounds, 32);
    }

    #[test]
    fn synced_report_carries_per_epoch_telemetry() {
        let program = unsaturable_example();
        let cfg = config(4, 4).infeasible_policy(InfeasiblePolicy::Disabled);
        let report = CoverMe::new(cfg).run(&program);
        assert!(report.epochs.len() > 1, "sync run has multiple epochs");
        let total_rounds: usize = report.epochs.iter().map(|e| e.rounds).sum();
        assert_eq!(total_rounds, report.rounds.len());
        let total_evals: usize = report.epochs.iter().map(|e| e.evaluations).sum();
        assert_eq!(total_evals, report.evaluations);
        // Epoch indices are dense and ordered.
        for (index, epoch) in report.epochs.iter().enumerate() {
            assert_eq!(epoch.epoch, index);
        }
        // Every barrier exchanged deltas among the 4 still-active shards.
        assert!(report.epochs.iter().skip(1).any(|e| e.deltas_absorbed > 0));
    }
}
